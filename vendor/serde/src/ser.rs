//! Serialization half: the [`Serializer`] trait and the in-memory
//! [`ValueSerializer`] used by `#[serde(with = "...")]` modules.

use crate::Value;
use std::fmt;

/// Error trait mirroring `serde::ser::Error`.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a display-able message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// The concrete serialization error (a message).
#[derive(Debug, Clone)]
pub struct SerError(String);

impl fmt::Display for SerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SerError {}

impl Error for SerError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SerError(msg.to_string())
    }
}

/// A sink that accepts the data-model form of a value.
///
/// Unlike real serde's 30-method trait, the whole value arrives at once —
/// the [`crate::Serialize`] default method converts first, then hands over.
pub trait Serializer: Sized {
    /// What a successful serialization yields.
    type Ok;
    /// The error type.
    type Error: Error;

    /// Consumes the data-model form of a value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A serializer whose output *is* the [`Value`]; used by derive-generated
/// code to invoke `with`-module serialize functions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = SerError;

    fn serialize_value(self, value: Value) -> Result<Value, SerError> {
        Ok(value)
    }
}
