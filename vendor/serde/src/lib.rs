//! Offline drop-in subset of `serde`.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of serde it uses. Instead of serde's
//! visitor-based zero-copy architecture, this implementation routes every
//! (de)serialization through a JSON-shaped [`Value`] tree:
//!
//! * [`Serialize::to_value`] converts a value into a [`Value`];
//! * [`Deserialize::from_value`] converts a [`Value`] back;
//! * [`ser::Serializer`] / [`de::Deserializer`] are thin traits that move a
//!   [`Value`] across the boundary, which is exactly the shape the
//!   workspace's `#[serde(with = "...")]` modules rely on
//!   (`entries.serialize(serializer)` / `Vec::deserialize(deserializer)`).
//!
//! JSON conventions match real serde: structs are objects in declaration
//! order, unit enum variants are strings, data variants are single-key
//! objects (externally tagged), `Option` is `null`-or-value, tuples are
//! arrays, and non-string map keys are stringified.

pub mod de;
pub mod ser;
mod value;

pub use de::Deserializer;
pub use ser::Serializer;
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};

/// A value that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value;

    /// Serde-compatible entry point: hands the data-model form to `serializer`.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: ser::Serializer,
    {
        serializer.serialize_value(self.to_value())
    }
}

/// A value that can be reconstructed from the [`Value`] data model.
///
/// The `'de` lifetime exists for signature compatibility with real serde
/// bounds (`K: Deserialize<'de>`); this implementation is not zero-copy.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the data model.
    fn from_value(value: &Value) -> Result<Self, de::DeError>;

    /// Serde-compatible entry point: pulls the data-model form out of
    /// `deserializer` and rebuilds `Self`.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: de::Deserializer<'de>,
    {
        let value = deserializer.take_value()?;
        Self::from_value(&value).map_err(<D::Error as de::Error>::custom)
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                let ($($name,)+) = self;
                Value::Array(vec![$($name.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

/// Stringifies a map key the way serde_json does (strings pass through,
/// integers and unit enum variants become their string forms).
fn key_string(key: Value) -> String {
    match key {
        Value::Str(s) => s,
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string-like value, got {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, de::DeError> {
                let wide: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| de::DeError::custom(format!("integer {u} out of range")))?,
                    // Map keys arrive as strings; accept the parsed form.
                    Value::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| de::DeError::invalid_type("integer", stringify!($t)))?,
                    other => return Err(de::DeError::invalid_value(other, stringify!($t))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| de::DeError::custom(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, de::DeError> {
                let wide: u64 = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| de::DeError::custom(format!("integer {i} out of range")))?,
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| de::DeError::invalid_type("unsigned integer", stringify!($t)))?,
                    other => return Err(de::DeError::invalid_value(other, stringify!($t))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| de::DeError::custom(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(de::DeError::invalid_value(other, "f64")),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(de::DeError::invalid_value(other, "bool")),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::DeError::invalid_value(other, "char")),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::DeError::invalid_value(other, "string")),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::DeError::invalid_value(other, "array")),
        }
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::DeError::invalid_value(other, "array")),
        }
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key = K::from_value(&Value::Str(k.clone()))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => Err(de::DeError::invalid_value(other, "object")),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal, $($name:ident : $idx:tt),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, de::DeError> {
                let items = de::tuple_items(value, $len, "tuple")?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_de_tuple! {
    (1, A: 0)
    (2, A: 0, B: 1)
    (3, A: 0, B: 1, C: 2)
    (4, A: 0, B: 1, C: 2, D: 3)
    (5, A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(i32::from_value(&5i32.to_value()).unwrap(), 5);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn integer_keys_stringify_and_parse_back() {
        let mut m = BTreeMap::new();
        m.insert(3usize, 9u64);
        let v = m.to_value();
        assert_eq!(v, Value::Object(vec![("3".into(), Value::UInt(9))]));
        let back: BTreeMap<usize, u64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1u8, "x".to_string()).to_value();
        let back: (u8, String) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1, "x".to_string()));
    }
}
