//! The JSON-shaped data model every (de)serialization routes through.

/// A self-describing value: the intermediate form between Rust values and
/// any concrete format (see `serde_json` in this vendor tree).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// Unsigned integer too large for `i64`, or a natural unsigned source.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered to match streaming serializers.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages ("object", "array", ...).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
