//! Deserialization half: the [`Deserializer`] trait, the in-memory
//! [`ValueDeserializer`], the concrete [`DeError`], and the small helpers
//! the derive macro generates calls to.

use crate::{Deserialize, Value};
use std::fmt;

/// Error trait mirroring `serde::de::Error`.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a display-able message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// The concrete deserialization error (a message).
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Builds an error from a display-able message (also available through
    /// the [`Error`] trait; inherent so callers need no import).
    #[must_use]
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }

    /// "invalid type: expected X for Y".
    #[must_use]
    pub fn invalid_type(expected: &str, ty: &str) -> Self {
        DeError(format!("invalid type: expected {expected} for {ty}"))
    }

    /// "invalid value: expected X, found <kind>".
    #[must_use]
    pub fn invalid_value(found: &Value, expected: &str) -> Self {
        DeError(format!(
            "invalid value: expected {expected}, found {}",
            found.kind()
        ))
    }

    /// "missing field `f` in T".
    #[must_use]
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` in {ty}"))
    }

    /// "unknown variant `v` of T".
    #[must_use]
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{variant}` of {ty}"))
    }

    /// "invalid length: expected N elements for T".
    #[must_use]
    pub fn invalid_length(expected: usize, ty: &str) -> Self {
        DeError(format!(
            "invalid length: expected {expected} elements for {ty}"
        ))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A source that yields the data-model form of a value.
pub trait Deserializer<'de>: Sized {
    /// The error type.
    type Error: Error;

    /// Pulls the complete data-model value out of the source.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A deserializer over an owned [`Value`]; used by derive-generated code to
/// invoke `with`-module deserialize functions.
#[derive(Debug, Clone)]
pub struct ValueDeserializer(Value);

impl ValueDeserializer {
    /// Wraps an owned value.
    #[must_use]
    pub fn new(value: Value) -> Self {
        ValueDeserializer(value)
    }

    /// Extracts field `field` of object `value` (cloned), for feeding a
    /// `with`-module deserialize function.
    pub fn for_field(value: &Value, field: &str, ty: &str) -> Result<Self, DeError> {
        field_value(value, field, ty).map(|v| ValueDeserializer(v.clone()))
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}

/// Looks up field `field` in the object `value`.
pub fn field_value<'a>(value: &'a Value, field: &str, ty: &str) -> Result<&'a Value, DeError> {
    let entries = value
        .as_object()
        .ok_or_else(|| DeError::invalid_value(value, &format!("object for {ty}")))?;
    entries
        .iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field(field, ty))
}

/// Looks up and deserializes field `field` of struct `ty`.
pub fn get_field<'de, T: Deserialize<'de>>(
    value: &Value,
    field: &str,
    ty: &str,
) -> Result<T, DeError> {
    T::from_value(field_value(value, field, ty)?)
}

/// Looks up and deserializes field `field` of struct `ty`, falling back
/// to `Default::default()` when the field is absent — the behavior of
/// `#[serde(default)]`, used for schema evolution (old serialized data
/// read by new code).
pub fn get_field_or_default<'de, T: Deserialize<'de> + Default>(
    value: &Value,
    field: &str,
    ty: &str,
) -> Result<T, DeError> {
    let entries = value
        .as_object()
        .ok_or_else(|| DeError::invalid_value(value, &format!("object for {ty}")))?;
    match entries.iter().find(|(k, _)| k == field) {
        Some((_, v)) => T::from_value(v),
        None => Ok(T::default()),
    }
}

/// Checks that `value` is an array of exactly `expected` items.
pub fn tuple_items<'a>(
    value: &'a Value,
    expected: usize,
    ctx: &str,
) -> Result<&'a [Value], DeError> {
    let items = value
        .as_array()
        .ok_or_else(|| DeError::invalid_value(value, &format!("array for {ctx}")))?;
    if items.len() != expected {
        return Err(DeError::invalid_length(expected, ctx));
    }
    Ok(items)
}
