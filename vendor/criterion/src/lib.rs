//! Offline drop-in subset of `criterion`.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the benchmarking surface it uses: `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is honest wall-clock timing — warm-up, then `sample_size`
//! timed batches sized to fill the measurement window — reporting median,
//! min, and max per-iteration time plus derived throughput. There is no
//! statistical regression machinery or HTML report.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, as real criterion renders it.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Just a parameter (matches real criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    /// Median/min/max nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `f`, storing per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses, and estimate the
        // per-iteration cost from it.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size each timed batch so `samples` batches fill the window.
        let batch =
            ((self.measure.as_secs_f64() / self.samples as f64 / per_iter).ceil() as u64).max(1);
        let mut nanos: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            nanos.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        nanos.sort_by(|a, b| a.total_cmp(b));
        let median = nanos[nanos.len() / 2];
        self.result = Some((median, nanos[0], nanos[nanos.len() - 1]));
    }
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn format_rate(per_second: f64, unit: &str) -> String {
    if per_second >= 1e9 {
        format!("{:.3} G{unit}/s", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.3} M{unit}/s", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.3} K{unit}/s", per_second / 1e3)
    } else {
        format!("{per_second:.1} {unit}/s")
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // A positional CLI argument (as passed by `cargo bench -- substr`)
        // filters benchmark ids; harness flags are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "benches");
        Criterion {
            filter,
            sample_size: 20,
            measurement_time: Duration::from_millis(1500),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        let warm_up_time = self.warm_up_time;
        run_one(
            &id,
            None,
            sample_size,
            measurement_time,
            warm_up_time,
            self,
            f,
        );
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one<F>(
    id: &str,
    throughput: Option<Throughput>,
    samples: usize,
    measure: Duration,
    warm_up: Duration,
    criterion: &Criterion,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if !criterion.matches(id) {
        return;
    }
    let mut bencher = Bencher {
        warm_up,
        measure,
        samples,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((median, min, max)) => {
            let mut line = format!(
                "{id:<40} time: [{} {} {}]",
                format_time(min),
                format_time(median),
                format_time(max)
            );
            if let Some(tp) = throughput {
                let (count, unit) = match tp {
                    Throughput::Elements(n) => (n, "elem"),
                    Throughput::Bytes(n) => (n, "B"),
                };
                let per_second = count as f64 / (median / 1e9);
                line.push_str(&format!("  thrpt: {}", format_rate(per_second, unit)));
            }
            println!("{line}");
        }
        None => println!("{id:<40} (no measurement: closure never called iter)"),
    }
}

/// A group of related benchmarks sharing throughput/sizing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Overrides the measurement window per bench.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(
            &full,
            self.throughput,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            self.criterion.warm_up_time,
            self.criterion,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(
            BenchmarkId::new("filtered", 1000).into_id(),
            "filtered/1000"
        );
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }
}
