//! The `option::of` strategy.

use crate::strategy::Strategy;
use crate::TestRunner;
use rand::RngExt;

/// `Option<T>` values: `None` about a quarter of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
        if runner.rng().random_bool(0.25) {
            None
        } else {
            Some(self.inner.generate(runner))
        }
    }
}
