//! Character-class string patterns: the `"[a-z]{1,6}"` subset of regex
//! that doubles as a generation recipe (proptest's string strategies).
//!
//! Supported syntax: literal characters, `[...]` classes with ranges and
//! literals (a trailing `-` is literal), and `{n}` / `{m,n}` repetition
//! suffixes. Anything else panics with a clear message — this is a
//! vendored subset, not a regex engine.

use crate::TestRunner;
use rand::RngExt;

enum Atom {
    Literal(char),
    /// Flattened class alphabet.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    /// Inclusive.
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i
                    + 1;
                let class = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                Atom::Class(class)
            }
            ']' | '{' | '}' | '(' | ')' | '|' | '\\' | '+' | '^' | '$' => {
                panic!(
                    "unsupported pattern construct `{}` in `{pattern}`",
                    chars[i]
                )
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                + i
                + 1;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in `{pattern}`")),
                    hi.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in `{pattern}`")),
                ),
                None => {
                    let n = spec
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in `{pattern}`"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in pattern `{pattern}`");
    let mut alphabet = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        // `a-z` range (a `-` that is first, last, or unfollowed is literal).
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(
                lo <= hi,
                "inverted range `{lo}-{hi}` in pattern `{pattern}`"
            );
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(body[i]);
            i += 1;
        }
    }
    alphabet
}

/// Generates one string matching `pattern`.
pub(crate) fn generate_from_pattern(pattern: &str, runner: &mut TestRunner) -> String {
    let pieces = parse_pattern(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            runner.rng().random_range(piece.min..=piece.max)
        };
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(alphabet) => {
                    let idx = runner.rng().random_range(0..alphabet.len());
                    out.push(alphabet[idx]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> TestRunner {
        TestRunner::from_seed(1)
    }

    #[test]
    fn class_with_trailing_dash_and_ranges() {
        let mut r = runner();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-zA-Z0-9/_.-]{0,24}", &mut r);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "/_.-".contains(c)));
        }
    }

    #[test]
    fn printable_ascii_space_to_tilde() {
        let mut r = runner();
        for _ in 0..200 {
            let s = generate_from_pattern("[ -~]{0,16}", &mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literal_prefix_then_class() {
        let mut r = runner();
        for _ in 0..50 {
            let s = generate_from_pattern("[a-z][a-z0-9_]{1,12}", &mut r);
            assert!(s.len() >= 2 && s.len() <= 13);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn metacharacters_in_class_are_literal() {
        let mut r = runner();
        for _ in 0..100 {
            let s = generate_from_pattern("[ab/?*]{0,8}", &mut r);
            assert!(s.chars().all(|c| "ab/?*".contains(c)));
        }
    }
}
