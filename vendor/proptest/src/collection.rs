//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::TestRunner;
use rand::RngExt;
use std::collections::BTreeSet;

/// A size specification: `usize`, `a..b`, or `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl SizeRange {
    fn sample(&self, runner: &mut TestRunner) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            runner.rng().random_range(self.min..self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: r.end().saturating_add(1),
        }
    }
}

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let n = self.size.sample(runner);
        (0..n).map(|_| self.element.generate(runner)).collect()
    }
}

/// Ordered sets of `size` distinct elements drawn from `element`.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, runner: &mut TestRunner) -> BTreeSet<S::Value> {
        let target = self.size.sample(runner);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set; retry a bounded number of times so a
        // small element domain cannot loop forever.
        let mut attempts = 0usize;
        let max_attempts = target.saturating_mul(20) + 20;
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.generate(runner));
            attempts += 1;
        }
        set
    }
}
