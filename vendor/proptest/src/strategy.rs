//! The [`Strategy`] trait and combinators.

use crate::TestRunner;
use rand::RngExt;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.strategy.generate(runner))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Wraps the candidate strategies. Panics if empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let idx = runner.rng().random_range(0..self.options.len());
        self.options[idx].generate(runner)
    }
}

/// Boxes a strategy for storage in a [`Union`] (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Integer and float ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

/// String patterns ("[a-z]{1,6}") are strategies.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, runner: &mut TestRunner) -> String {
        crate::string::generate_from_pattern(self, runner)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    )*};
}
impl_tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }
