//! Offline drop-in subset of `proptest`.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of proptest it uses: the [`proptest!`] test
//! macro, [`Strategy`] with `prop_map`, [`prop_oneof!`], `any::<T>()`,
//! `collection::vec` / `collection::btree_set`, `option::of`, and
//! character-class string strategies like `"[a-z]{1,6}"`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name and case index, overridable
//! count via `PROPTEST_CASES`), and there is **no shrinking** — a failing
//! case reports its seed for replay instead of a minimized input.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;

pub use strategy::{Just, Strategy, Union};

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };
}

/// Per-case source of randomness handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner seeded for one specific case.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying generator (used by `Strategy` implementations).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A test-case failure raised by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Number of cases to run (default 256, like upstream; `PROPTEST_CASES`
/// overrides).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// Deterministic per-case seed: FNV-1a over the test name, mixed with the
/// case index. Stable across runs, so failures replay.
fn derive_seed(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h
}

/// Drives one property over `case_count()` generated cases. Used by the
/// expansion of [`proptest!`]; not part of the public upstream API.
pub fn run_cases<F>(name: &str, mut property: F)
where
    F: FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    for case in 0..cases {
        let seed = derive_seed(name, case);
        let mut runner = TestRunner::from_seed(seed);
        if let Err(e) = property(&mut runner) {
            panic!("proptest `{name}` failed at case {case}/{cases} (seed {seed:#x}): {e}");
        }
    }
}

/// Strategy producing any value of `T` (full range / all values).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive (unit struct, per-type sampling).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, runner: &mut TestRunner) -> bool {
        runner.rng().random_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn generate(&self, runner: &mut TestRunner) -> f64 {
        // Finite values across a wide magnitude span.
        let mag = runner.rng().random_range(-300.0..300.0f64);
        let sign = if runner.rng().random_bool(0.5) {
            1.0
        } else {
            -1.0
        };
        sign * 10f64.powf(mag / 10.0)
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Defines property tests: each `fn` runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__runner| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __runner);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __result
                });
            }
        )*
    };
}

/// Picks one of several strategies (uniformly) per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut __options = ::std::vec::Vec::new();
        $(__options.push($crate::strategy::boxed($strat));)+
        $crate::Union::new(__options)
    }};
}
