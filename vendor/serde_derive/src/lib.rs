//! Offline drop-in subset of `serde_derive`.
//!
//! No network registry is reachable in this build environment, so `syn`
//! and `quote` are unavailable; this macro parses the derive input by
//! walking `proc_macro::TokenStream` directly and emits generated impls as
//! source strings. It supports exactly what the workspace uses:
//!
//! * named-field structs;
//! * enums with unit / newtype / tuple / named-field variants;
//! * the field attributes `#[serde(with = "module")]` and
//!   `#[serde(default)]`;
//! * the container attributes `#[serde(from = "T", into = "T")]`.
//!
//! Generated code targets the vendored `serde` crate's `Value`-based data
//! model: `Serialize::to_value` / `Deserialize::from_value`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed shape of the derive input
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    data: Data,
    /// `#[serde(from = "T")]` — deserialize via `T` then `From<T>`.
    from_ty: Option<String>,
    /// `#[serde(into = "T")]` — serialize by `Clone` + `Into<T>`.
    into_ty: Option<String>,
}

enum Data {
    /// Named fields.
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(with = "module")]` on the field.
    with: Option<String>,
    /// `#[serde(default)]` on the field: a missing key deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Parenthesized payload with this many elements.
    Tuple(usize),
    /// Named-field payload.
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }

    fn expect_punct(&mut self, ch: char) {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ch => {}
            other => panic!("serde_derive: expected `{ch}`, found {other:?}"),
        }
    }

    /// Consumes one `#[...]` attribute if present; returns the serde
    /// key/value pairs when it is a `#[serde(...)]` attribute.
    fn take_attr(&mut self) -> Option<Vec<(String, String)>> {
        if !self.is_punct('#') {
            return None;
        }
        self.pos += 1;
        let group = match self.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde_derive: expected `[...]` after `#`, found {other:?}"),
        };
        let mut inner = Cursor::new(group.stream());
        if !inner.is_ident("serde") {
            return Some(Vec::new());
        }
        inner.pos += 1;
        let args = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => panic!("serde_derive: expected `(...)` in serde attribute, found {other:?}"),
        };
        let mut kv = Vec::new();
        let mut c = Cursor::new(args.stream());
        while !c.at_end() {
            let key = c.expect_ident("serde attribute key");
            // Bare keys (`#[serde(default)]`) carry an empty value.
            let value = if c.is_punct('=') {
                c.pos += 1;
                match c.next() {
                    Some(TokenTree::Literal(l)) => unquote(&l.to_string()),
                    other => {
                        panic!("serde_derive: expected string value for `{key}`, found {other:?}")
                    }
                }
            } else {
                String::new()
            };
            kv.push((key, value));
            if c.is_punct(',') {
                c.pos += 1;
            }
        }
        Some(kv)
    }

    /// Skips all attributes, collecting serde key/value pairs.
    fn take_attrs(&mut self) -> Vec<(String, String)> {
        let mut all = Vec::new();
        while let Some(mut kv) = self.take_attr() {
            all.append(&mut kv);
        }
        all
    }

    /// Skips `pub`, `pub(...)`.
    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips tokens until a comma at angle-bracket depth 0, consuming the
    /// comma. Used to skip field types and enum discriminants.
    fn skip_past_toplevel_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

/// Strips the quotes from a string-literal token ("module" → module).
fn unquote(lit: &str) -> String {
    let s = lit.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        s[1..s.len() - 1].to_owned()
    } else {
        panic!("serde_derive: expected string literal, found `{lit}`");
    }
}

fn parse_input(stream: TokenStream) -> Input {
    let mut c = Cursor::new(stream);
    let container_attrs = c.take_attrs();
    let mut from_ty = None;
    let mut into_ty = None;
    for (key, value) in container_attrs {
        match key.as_str() {
            "from" => from_ty = Some(value),
            "into" => into_ty = Some(value),
            other => panic!("serde_derive: unsupported container attribute `{other}`"),
        }
    }
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if c.is_punct('<') {
        panic!("serde_derive: generic types are not supported by the vendored derive");
    }
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!(
            "serde_derive: only brace-bodied types are supported (deriving {name}), found {other:?}"
        ),
    };
    let data = match kw.as_str() {
        "struct" => Data::Struct(parse_fields(body.stream())),
        "enum" => Data::Enum(parse_variants(body.stream())),
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    Input {
        name,
        data,
        from_ty,
        into_ty,
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut c = Cursor::new(stream);
    while !c.at_end() {
        let attrs = c.take_attrs();
        let mut with = None;
        let mut default = false;
        for (key, value) in attrs {
            match key.as_str() {
                "with" => with = Some(value),
                "default" if value.is_empty() => default = true,
                other => panic!("serde_derive: unsupported field attribute `{other}`"),
            }
        }
        c.skip_visibility();
        let name = c.expect_ident("field name");
        c.expect_punct(':');
        c.skip_past_toplevel_comma();
        fields.push(Field {
            name,
            with,
            default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut c = Cursor::new(stream);
    while !c.at_end() {
        let attrs = c.take_attrs();
        if !attrs.is_empty() {
            panic!("serde_derive: variant-level serde attributes are not supported");
        }
        let name = c.expect_ident("variant name");
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_toplevel_items(g.stream());
                c.pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                c.pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant and/or the trailing comma.
        if c.is_punct('=') {
            c.pos += 1;
            c.skip_past_toplevel_comma();
        } else if c.is_punct(',') {
            c.pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Counts comma-separated items at angle-depth 0 (tuple-variant arity).
fn count_toplevel_items(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut items = 0usize;
    let mut saw_token = false;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    items += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    if saw_token {
        items += 1;
    }
    items
}

// ---------------------------------------------------------------------------
// Code generation (source-string based; relies on type inference, so field
// and payload types never need to be parsed)
// ---------------------------------------------------------------------------

const ALLOWS: &str = "#[automatically_derived]\n\
     #[allow(unused_variables, unreachable_patterns, clippy::all, clippy::pedantic)]\n";

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = if let Some(into_ty) = &input.into_ty {
        format!(
            "let __converted: {into_ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__converted)"
        )
    } else {
        match &input.data {
            Data::Struct(fields) => ser_struct_body(fields, "self.", ""),
            Data::Enum(variants) => ser_enum_body(name, variants),
        }
    };
    let out = format!(
        "{ALLOWS}impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Object-building body for named fields. `prefix` is `self.` for structs
/// and empty for destructured struct-variant bindings.
fn ser_struct_body(fields: &[Field], prefix: &str, indent: &str) -> String {
    let mut s = String::new();
    s.push_str(indent);
    s.push_str("::serde::Value::Object(::std::vec![\n");
    for f in fields {
        let fname = &f.name;
        let access = format!("{prefix}{fname}");
        let expr = match &f.with {
            Some(with) => format!(
                "{with}::serialize(&{access}, ::serde::ser::ValueSerializer)\
                 .expect(\"with-module serialize\")"
            ),
            None => format!("::serde::Serialize::to_value(&{access})"),
        };
        s.push_str(&format!(
            "{indent}    (::std::string::String::from(\"{fname}\"), {expr}),\n"
        ));
    }
    s.push_str(indent);
    s.push_str("])");
    s
}

fn ser_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                arms.push_str(&format!(
                    "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                ));
            }
            VariantKind::Tuple(1) => {
                arms.push_str(&format!(
                    "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Value::Array(::std::vec![{items}]))]),\n",
                    binds = binders.join(", "),
                    items = items.join(", "),
                ));
            }
            VariantKind::Struct(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let inner = ser_struct_body(fields, "", "        ");
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"),\n{inner})]),\n",
                    binds = binds.join(", "),
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = if let Some(from_ty) = &input.from_ty {
        format!(
            "let __inner: {from_ty} = ::serde::Deserialize::from_value(__value)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(__inner))"
        )
    } else {
        match &input.data {
            Data::Struct(fields) => format!(
                "::std::result::Result::Ok({})",
                de_struct_expr(name, name, fields, "__value")
            ),
            Data::Enum(variants) => de_enum_body(name, variants),
        }
    };
    let out = format!(
        "{ALLOWS}impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::de::DeError> {{\n{body}\n}}\n\
         }}\n"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

/// A struct-literal expression reading named fields out of `source`.
/// `path` is the constructor path, `ctx` the name used in errors.
fn de_struct_expr(path: &str, ctx: &str, fields: &[Field], source: &str) -> String {
    let mut s = format!("{path} {{\n");
    for f in fields {
        let fname = &f.name;
        let expr = match &f.with {
            Some(with) => format!(
                "{with}::deserialize(::serde::de::ValueDeserializer::for_field({source}, \"{fname}\", \"{ctx}\")?)?"
            ),
            None if f.default => {
                format!("::serde::de::get_field_or_default({source}, \"{fname}\", \"{ctx}\")?")
            }
            None => format!("::serde::de::get_field({source}, \"{fname}\", \"{ctx}\")?"),
        };
        s.push_str(&format!("    {fname}: {expr},\n"));
    }
    s.push('}');
    s
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantKind::Tuple(1) => {
                data_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                         let __items = ::serde::de::tuple_items(__payload, {n}, \"{name}::{vname}\")?;\n\
                         ::std::result::Result::Ok({name}::{vname}({items}))\n\
                     }}\n",
                    items = items.join(", "),
                ));
            }
            VariantKind::Struct(fields) => {
                let expr = de_struct_expr(
                    &format!("{name}::{vname}"),
                    &format!("{name}::{vname}"),
                    fields,
                    "__payload",
                );
                data_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({expr}),\n"
                ));
            }
        }
    }
    format!(
        "match __value {{\n\
             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                     ::serde::de::DeError::unknown_variant(__other, \"{name}\")),\n\
             }},\n\
             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {data_arms}\
                     __other => ::std::result::Result::Err(\
                         ::serde::de::DeError::unknown_variant(__other, \"{name}\")),\n\
                 }}\n\
             }}\n\
             __other => ::std::result::Result::Err(\
                 ::serde::de::DeError::invalid_value(__other, \"variant of {name}\")),\n\
         }}"
    )
}
