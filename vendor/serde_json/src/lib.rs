//! Offline drop-in subset of `serde_json`.
//!
//! Implements `to_string` / `to_string_pretty` / `from_str` / `from_slice`
//! over the vendored `serde` crate's [`Value`] data model, with standard
//! JSON conventions (string escapes including `\uXXXX` surrogate pairs,
//! 2-space pretty indentation, strict whole-input parsing).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string (the whole input must be consumed).
pub fn from_str<'de, T: Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parses a value from JSON bytes (must be UTF-8).
pub fn from_slice<'de, T: Deserialize<'de>>(input: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(input).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Keep a fraction so the value reparses as a float ("1.0", not "1").
        if f == f.trunc() && f.abs() < 1e15 {
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        // Real serde_json refuses non-finite floats; emitting null keeps
        // the writer infallible, which is all this workspace needs.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(&format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs wholesale.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => return Err(self.error("control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("invalid number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_shapes() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2,\n  3\n]");
        let empty: Vec<u64> = vec![];
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{08}\u{0c}\u{1}é😀".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        let surrogate: String = from_str(r#""😀""#).unwrap();
        assert_eq!(surrogate, "😀");
    }

    #[test]
    fn numbers_roundtrip() {
        let back: i64 = from_str(&to_string(&-42i64).unwrap()).unwrap();
        assert_eq!(back, -42);
        let big: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(big, u64::MAX);
        let f: f64 = from_str("1.5e3").unwrap();
        assert!((f - 1500.0).abs() < 1e-9);
        let whole: f64 = from_str(&to_string(&2.0f64).unwrap()).unwrap();
        assert!((whole - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("nul").is_err());
    }

    #[test]
    fn maps_parse_as_objects() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1u64);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"k\":1}");
        let back: BTreeMap<String, u64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
