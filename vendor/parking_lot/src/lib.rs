//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of `parking_lot` it actually uses:
//! [`Mutex`] and [`RwLock`] with non-poisoning `lock()`/`read()`/`write()`
//! that return guards directly instead of `Result`s. Poisoning is absorbed
//! by recovering the inner guard, which matches `parking_lot` semantics
//! (a panicking critical section does not wedge every later locker).

use std::sync;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
