//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of `rand` 0.10 it actually uses:
//!
//! * [`Rng`] — the core source trait (`next_u64`), used as a generic bound;
//! * [`RngExt`] — `random_range` over half-open and inclusive ranges of the
//!   integer types and `f64`, plus `random_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a deterministic, seedable generator.
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — *not* the ChaCha12
//! generator real `rand` uses — so seeded streams differ from upstream.
//! Everything in this workspace that depends on exact streams (the
//! calibration suite, EXPERIMENTS.md numbers) was re-measured against this
//! generator; the statistical profiles driving the workloads are unchanged.

/// A source of randomness: 64 uniformly random bits per call.
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`hi` exclusive). `lo < hi` holds.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]` (inclusive). `lo <= hi` holds.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Maps a raw 64-bit value into `[0, span)` (multiply-shift; the ~2^-64
/// bias is irrelevant for workload simulation).
#[inline]
fn bounded(raw: u64, span: u64) -> u64 {
    ((u128::from(raw) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        #[allow(clippy::unnecessary_cast, clippy::cast_lossless)]
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // 53 random mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
    #[inline]
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * unit
    }
}

/// Ranges that [`RngExt::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample; panics on an empty range like real `rand`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample from `range`. Panics if the range is empty.
    #[inline]
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. Fast, full 64-bit output, passes BigCrush;
    /// streams differ from upstream `rand`'s ChaCha12-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into four nonzero words.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random_range(0..u64::MAX), c.random_range(0..u64::MAX));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-64i64..1 << 16);
            assert!((-64..1 << 16).contains(&v));
            let u = rng.random_range(3..26u32);
            assert!((3..26).contains(&u));
            let f = rng.random_range(0.0..10.0);
            assert!((0.0..10.0).contains(&f));
            let i = rng.random_range(0..=5u64);
            assert!(i <= 5);
        }
    }

    #[test]
    fn bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn full_range_inclusive_works() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(u64::MIN..=u64::MAX);
        let _ = rng.random_range(i64::MIN..=i64::MAX);
    }
}
