//! Hunt injected bugs three ways: a regression suite's own checks, a
//! crash-consistency oracle, and coverage-guided differential testing.
//!
//! ```text
//! cargo run --release --example bug_hunt
//! ```

use std::sync::Arc;

use iocov_difftest::{mismatch_summary, DiffTester};
use iocov_faults::{BugSet, BugTrigger, InjectedBug};
use iocov_vfs::{Errno, FaultAction, SharedHook};
use iocov_workloads::{CrashMonkeySim, TestEnv, XfstestsSim};

fn main() {
    // Three synthetic bugs in the style of the paper's bug study:
    // input-boundary triggered, output-corrupting, durability-eating.
    let make_bugs = || {
        BugSet::new(vec![
            InjectedBug::new(
                "short-pwrite",
                "pwrite of >= 64 KiB reports a bogus short count",
                BugTrigger::SizeAtLeast {
                    op: "pwrite64",
                    size: 64 * 1024,
                },
                FaultAction::OverrideReturn(1),
            ),
            InjectedBug::new(
                "fsync-subC",
                "fsync of sub/C silently persists nothing",
                BugTrigger::PathContains {
                    op: "fsync",
                    fragment: "sub/C",
                },
                FaultAction::SkipDurability,
            ),
            InjectedBug::new(
                "truncate-eio",
                "truncate past 8 KiB fails EIO",
                BugTrigger::SizeAtLeast {
                    op: "truncate",
                    size: 8192,
                },
                FaultAction::FailWith(Errno::EIO),
            ),
        ])
    };

    // 1. xfstests-style regression testing: catches the wrong-return bug
    //    through its own read-back verification.
    let bugs = make_bugs().into_hook();
    let env = TestEnv::new().with_hook(Arc::clone(&bugs) as SharedHook);
    let sim = XfstestsSim::new(1, 0.02);
    let mut kernel = env.fresh_kernel();
    let result = sim.run_range(&mut kernel, 0..60);
    println!(
        "xfstests-style run: {} tests, {} failures",
        result.tests_run,
        result.failures.len()
    );
    for failure in result.failures.iter().take(3) {
        println!("  {failure}");
    }

    // 2. CrashMonkey-style crash testing: catches the durability bug.
    let bugs = make_bugs().into_hook();
    let env = TestEnv::new().with_hook(Arc::clone(&bugs) as SharedHook);
    let result = CrashMonkeySim::new(1, 0.02).run(&env);
    println!(
        "\nCrashMonkey-style run: {} workloads, {} crash violations",
        result.tests_run,
        result.crash_violations.len()
    );
    for violation in result.crash_violations.iter().take(3) {
        println!("  {violation}");
    }

    // 3. Coverage-guided differential testing against the executable
    //    specification: catches errno corruption wherever it hides.
    let report = DiffTester::new(1)
        .rounds(5)
        .ops_per_round(600)
        .with_vfs_hook(make_bugs().into_hook())
        .run();
    println!(
        "\ndifferential run: {} ops, mismatches by kind: {:?}",
        report.ops_executed,
        mismatch_summary(&report)
    );
    for mismatch in report.mismatches.iter().take(3) {
        println!(
            "  {} → vfs {} vs spec {}",
            mismatch.op, mismatch.vfs_ret, mismatch.model_ret
        );
    }
}
