//! Compare the input/output coverage of two file-system test suites —
//! the paper's core evaluation, at adjustable scale.
//!
//! ```text
//! cargo run --release --example compare_suites [scale]
//! ```

use iocov::tcd::{crossover, tcd_uniform};
use iocov::{ArgName, BaseSyscall, InputPartition, Iocov};
use iocov_bench::{open_flag_frequencies, run_suites};
use iocov_workloads::{LtpSim, TestEnv, MOUNT};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    eprintln!("running both suites at scale {scale} …");
    let reports = run_suites(42, scale);

    println!("== per-flag open coverage (Figure 2) ==");
    println!("{:<14} {:>12} {:>12}", "flag", "CrashMonkey", "xfstests");
    let cm = open_flag_frequencies(&reports.crashmonkey);
    let xfs = open_flag_frequencies(&reports.xfstests);
    for ((flag, c), (_, x)) in cm.iter().zip(&xfs) {
        println!("{flag:<14} {c:>12} {x:>12}");
    }

    println!("\n== write-size coverage breadth (Figure 3) ==");
    for (name, report) in [
        ("CrashMonkey", &reports.crashmonkey),
        ("xfstests", &reports.xfstests),
    ] {
        let cov = report.input_coverage(ArgName::WriteCount);
        let covered = cov
            .counts
            .iter()
            .filter(|(p, c)| matches!(p, InputPartition::Numeric(_)) && **c > 0)
            .count();
        println!("{name:<12}: {covered} write-size buckets exercised");
    }

    // A third suite (extension): LTP-style systematic per-syscall tests.
    let ltp_env = TestEnv::new();
    let _ = LtpSim::new(42, scale.max(0.05)).run(&ltp_env);
    let ltp_report = Iocov::with_mount_point(MOUNT)
        .expect("valid mount pattern")
        .analyze(&ltp_env.take_trace());

    println!("\n== open error-code coverage (Figure 4, + LTP extension) ==");
    for (name, report) in [
        ("CrashMonkey", &reports.crashmonkey),
        ("xfstests", &reports.xfstests),
        ("LTP", &ltp_report),
    ] {
        let cov = report.output_coverage(BaseSyscall::Open);
        let covered = iocov::output_errnos(BaseSyscall::Open)
            .iter()
            .filter(|e| cov.errno_count(e) > 0)
            .count();
        println!(
            "{name:<12}: {covered}/27 error codes, {} successes, {} failures",
            cov.successes(),
            cov.errors()
        );
    }

    println!("\n== TCD comparison (Figure 5) ==");
    let cm_freqs: Vec<u64> = cm.iter().map(|(_, c)| *c).collect();
    let xfs_freqs: Vec<u64> = xfs.iter().map(|(_, c)| *c).collect();
    for target in [1u64, 10, 100, 1_000, 10_000, 100_000] {
        println!(
            "target {:>7}: CrashMonkey {:.3}  xfstests {:.3}",
            target,
            tcd_uniform(&cm_freqs, target),
            tcd_uniform(&xfs_freqs, target)
        );
    }
    if let Some(t) = crossover(&cm_freqs, &xfs_freqs, 1, 10_000_000) {
        println!("TCD crossover at uniform target ≈ {t}");
        println!("(the paper reports ≈ 5,237 at full scale; scale shifts it proportionally)");
    }
}
