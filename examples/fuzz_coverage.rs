//! Evaluate a fuzzer with IOCov via the Syzkaller-log adapter (the
//! paper's §6 future-work workflow), and compare its coverage profile
//! against a hand-written-style suite.
//!
//! ```text
//! cargo run --release --example fuzz_coverage
//! ```

use iocov::syzlang::parse_to_trace;
use iocov::{ArgName, BaseSyscall, InputPartition, Iocov, NumericPartition};
use iocov_workloads::{SyzFuzzerSim, TestEnv, XfstestsSim};

fn bucket_breadth(report: &iocov::AnalysisReport, arg: ArgName) -> usize {
    let cov = report.input_coverage(arg);
    (0..=32u32)
        .filter(|&k| cov.count(&InputPartition::Numeric(NumericPartition::Log2(k))) > 0)
        .count()
}

fn main() {
    // 1. The fuzzer: generates syz programs, executes them, and logs
    //    them in Syzkaller syntax with executor-reported results.
    let env = TestEnv::new();
    let fuzzer = SyzFuzzerSim::new(99, 400, 14);
    eprintln!("fuzzing …");
    let log = fuzzer.run(&env);
    println!("fuzzer log: {} lines", log.lines().count());
    println!("first program:");
    for line in log.lines().skip(1).take(6) {
        println!("  {line}");
    }

    // 2. IOCov parses the log (no tracer involved!) and analyzes it.
    let trace = parse_to_trace(&log).expect("syz logs parse");
    let fuzz_report = Iocov::new().analyze(&trace);

    // 3. A scaled-down hand-written suite for comparison.
    let env = TestEnv::new();
    let sim = XfstestsSim::new(99, 0.01);
    let mut kernel = env.fresh_kernel();
    let _ = sim.run_range(&mut kernel, 0..130);
    let suite_report = Iocov::with_mount_point(iocov_workloads::MOUNT)
        .expect("valid mount pattern")
        .analyze(&env.take_trace());

    println!("\n== coverage comparison ==");
    println!(
        "write-size buckets:   fuzzer {:>3}   hand-written {:>3}",
        bucket_breadth(&fuzz_report, ArgName::WriteCount),
        bucket_breadth(&suite_report, ArgName::WriteCount),
    );
    let fuzz_whence = fuzz_report.input_coverage(ArgName::LseekWhence);
    let suite_whence = suite_report.input_coverage(ArgName::LseekWhence);
    println!(
        "invalid lseek whence: fuzzer {:>3}   hand-written {:>3}",
        fuzz_whence.count(&InputPartition::Categorical("<invalid>".into())),
        suite_whence.count(&InputPartition::Categorical("<invalid>".into())),
    );
    let fuzz_open = fuzz_report.output_coverage(BaseSyscall::Open);
    let suite_open = suite_report.output_coverage(BaseSyscall::Open);
    let count_codes = |cov: &iocov::OutputCoverage| {
        iocov::output_errnos(BaseSyscall::Open)
            .iter()
            .filter(|e| cov.errno_count(e) > 0)
            .count()
    };
    println!(
        "open error codes:     fuzzer {:>3}   hand-written {:>3}",
        count_codes(&fuzz_open),
        count_codes(&suite_open),
    );
    println!(
        "\nThe fuzzer's boundary-loving mutation covers numeric partitions\n\
         broadly (including '=0' and invalid categorical values) but elicits\n\
         a narrower, shallower error surface than the hand-written suite —\n\
         the complementary profile the paper expects input/output coverage\n\
         to make visible."
    );
}
