//! Quickstart: trace a small workload and measure its input/output
//! coverage.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use iocov::{ArgName, BaseSyscall, Iocov};
use iocov_syscalls::Kernel;
use iocov_trace::Recorder;

fn main() {
    // 1. A simulated kernel with an in-memory file system, traced by the
    //    LTTng-substitute recorder.
    let recorder = Arc::new(Recorder::new());
    let mut kernel = Kernel::new();
    kernel.attach_recorder(Arc::clone(&recorder));

    // 2. The "test suite": a handful of syscalls, some succeeding and
    //    some failing.
    kernel.mkdir("/mnt", 0o755);
    kernel.mkdir("/mnt/test", 0o755);
    let fd = kernel.open("/mnt/test/hello", 0o102 | 0o100, 0o644) as i32;
    kernel.write(fd, b"hello, coverage!");
    kernel.lseek(fd, 0, 0);
    kernel.read_discard(fd, 64);
    kernel.setxattr("/mnt/test/hello", "user.lang", b"rust", 0);
    kernel.close(fd);
    kernel.open("/mnt/test/missing", 0, 0); // ENOENT on purpose
    kernel.open("/etc/hosts", 0, 0); // tester noise, outside the mount

    // 3. Analyze the trace with the mount-point filter.
    let trace = recorder.take();
    println!("traced {} syscalls", trace.len());
    let report = Iocov::with_mount_point("/mnt/test")
        .expect("valid mount pattern")
        .analyze(&trace);
    println!(
        "analyzed {} calls ({} filtered out as noise)\n",
        report.total_calls(),
        report.filter_stats.dropped
    );

    // 4. Input coverage of the open flags, Figure 2-style.
    print!(
        "{}",
        iocov::report::render_input(&report, ArgName::OpenFlags)
    );
    println!();

    // 5. Output coverage of open, Figure 4-style.
    print!(
        "{}",
        iocov::report::render_output(&report, BaseSyscall::Open)
    );
    println!();

    // 6. The actionable summary: what this suite never tested.
    print!("{}", iocov::report::untested_summary(&report));
}
