//! Tune a Test Coverage Deviation target array — the paper's §4
//! suggestion that crash-consistency developers weight persistence-
//! related partitions more heavily.
//!
//! ```text
//! cargo run --release --example tcd_tuning
//! ```

use iocov::tcd::tcd;
use iocov::{ArgName, InputPartition, Iocov};
use iocov_workloads::{CrashMonkeySim, TestEnv, MOUNT};

fn main() {
    // Trace a CrashMonkey run.
    eprintln!("running CrashMonkey …");
    let env = TestEnv::new();
    let _ = CrashMonkeySim::new(7, 0.05).run(&env);
    let report = Iocov::with_mount_point(MOUNT)
        .expect("valid mount pattern")
        .analyze(&env.take_trace());
    let cov = report.input_coverage(ArgName::OpenFlags);
    let flags = iocov::open_flag_names();
    let freqs: Vec<u64> = flags
        .iter()
        .map(|f| cov.count(&InputPartition::Flag((*f).to_string())))
        .collect();

    println!("open-flag frequencies:");
    for (flag, freq) in flags.iter().zip(&freqs) {
        println!("  {flag:<14} {freq}");
    }

    // A uniform target treats O_SYNC like O_NOCTTY.
    let uniform = vec![1_000u64; flags.len()];
    println!(
        "\nTCD against a uniform target of 1,000: {:.3}",
        tcd(&freqs, &uniform)
    );

    // A persistence-weighted target: crash-consistency testing "heavily
    // exploits persistence operations", so demand far more coverage of
    // O_SYNC/O_DSYNC and de-emphasize terminal-control flags.
    let weighted: Vec<u64> = flags
        .iter()
        .map(|flag| match *flag {
            "O_SYNC" | "O_DSYNC" => 100_000,
            "O_CREAT" | "O_TRUNC" | "O_APPEND" => 10_000,
            _ => 1_000,
        })
        .collect();
    let uniform_tcd = tcd(&freqs, &uniform);
    let weighted_tcd = tcd(&freqs, &weighted);
    println!("TCD against the persistence-weighted target: {weighted_tcd:.3}");
    if weighted_tcd > uniform_tcd {
        println!(
            "\nThe weighted TCD is higher: CrashMonkey under-tests O_SYNC/O_DSYNC\n\
             relative to what a crash-consistency developer would demand —\n\
             exactly the kind of gap a non-uniform target array exposes."
        );
    } else {
        println!(
            "\nThe weighted TCD is not higher here: at this scale CrashMonkey's\n\
             persistence-flag frequencies already sit near the raised targets."
        );
    }
}
