//! Property-based tests for the pattern engine.

use iocov_pattern::{Glob, Pattern, Regex};
use proptest::prelude::*;

/// Reference glob matcher: naive recursive implementation over the raw
/// pattern string, supporting only `*`, `?`, `**` and literals (no classes
/// or escapes). Used to cross-check the compiled engine.
fn reference_glob(pattern: &[char], text: &[char]) -> bool {
    match pattern.first() {
        None => text.is_empty(),
        Some('*') => {
            if pattern.get(1) == Some(&'*') {
                (0..=text.len()).any(|i| reference_glob(&pattern[2..], &text[i..]))
            } else {
                for i in 0..=text.len() {
                    if reference_glob(&pattern[1..], &text[i..]) {
                        return true;
                    }
                    if text.get(i) == Some(&'/') {
                        return false;
                    }
                }
                false
            }
        }
        Some('?') => {
            matches!(text.first(), Some(&c) if c != '/')
                && reference_glob(&pattern[1..], &text[1..])
        }
        Some(c) => text.first() == Some(c) && reference_glob(&pattern[1..], &text[1..]),
    }
}

/// Escapes every regex metacharacter in `s`.
fn regex_escape(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        if "\\^$.|?*+()[]{}".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

proptest! {
    #[test]
    fn glob_agrees_with_reference(
        pattern in "[ab/?*]{0,8}",
        text in "[ab/]{0,10}",
    ) {
        let compiled = Glob::new(&pattern).unwrap();
        let pat: Vec<char> = pattern.chars().collect();
        let txt: Vec<char> = text.chars().collect();
        prop_assert_eq!(compiled.is_match(&text), reference_glob(&pat, &txt));
    }

    #[test]
    fn literal_glob_matches_itself(text in "[a-zA-Z0-9/_.-]{0,24}") {
        // Free of metacharacters, so the glob must match exactly itself.
        let g = Glob::new(&text).unwrap();
        prop_assert!(g.is_match(&text));
        let extended = format!("{text}!");
        prop_assert!(!g.is_match(&extended));
    }

    #[test]
    fn escaped_literal_regex_matches_itself(text in "[ -~]{0,16}") {
        let re = Regex::new(&format!("^{}$", regex_escape(&text))).unwrap();
        prop_assert!(re.is_match(&text));
    }

    #[test]
    fn regex_substring_search_agrees_with_str_contains(
        needle in "[abc]{1,4}",
        hay in "[abcd]{0,16}",
    ) {
        let re = Regex::new(&needle).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    #[test]
    fn regex_find_offsets_are_within_bounds(
        needle in "[ab]{1,3}",
        hay in "[abc]{0,12}",
    ) {
        let re = Regex::new(&needle).unwrap();
        if let Some(m) = re.find(&hay) {
            prop_assert!(m.start() <= m.end());
            prop_assert!(m.end() <= hay.chars().count());
            let found: String = hay.chars().skip(m.start()).take(m.len()).collect();
            prop_assert_eq!(found, needle);
        } else {
            prop_assert!(!hay.contains(&needle));
        }
    }

    #[test]
    fn pattern_enum_is_consistent_with_inner(text in "[a-z/]{0,12}") {
        let g = Pattern::glob("/mnt/**").unwrap();
        let inner = Glob::new("/mnt/**").unwrap();
        prop_assert_eq!(g.is_match(&text), inner.is_match(&text));
    }
}
