//! Self-contained pattern-matching engine for IOCov trace filtering.
//!
//! The IOCov paper filters LTTng syscall traces with regular expressions so
//! that only events aimed at the tester's mount point (e.g. `/mnt/test`) are
//! analyzed. This crate is the offline substitute for a full regex library:
//! it provides
//!
//! * [`Glob`] — shell-style path globs (`*`, `?`, `[a-z]`, `**`), the most
//!   convenient form for mount-point filters, and
//! * [`Regex`] — a small regular-expression engine (literals, `.`, classes,
//!   groups, alternation, `*`/`+`/`?`/`{m,n}` repetition, anchors) executed
//!   by a Pike-style NFA virtual machine, so matching is linear in the input
//!   and immune to pathological backtracking.
//!
//! # Examples
//!
//! ```
//! use iocov_pattern::{Glob, Regex};
//!
//! # fn main() -> Result<(), iocov_pattern::PatternError> {
//! let glob = Glob::new("/mnt/test/**/*.img")?;
//! assert!(glob.is_match("/mnt/test/a/b/disk.img"));
//!
//! let re = Regex::new(r"^/mnt/(test|scratch)(/.*)?$")?;
//! assert!(re.is_match("/mnt/scratch/dir/file"));
//! assert!(!re.is_match("/mnt/other"));
//! # Ok(())
//! # }
//! ```

mod error;
mod glob;
mod regex;

pub use error::PatternError;
pub use glob::Glob;
pub use regex::{Match, Regex};

/// A compiled pattern of either flavor, so callers can accept both syntaxes.
///
/// ```
/// use iocov_pattern::Pattern;
///
/// # fn main() -> Result<(), iocov_pattern::PatternError> {
/// let p = Pattern::glob("/mnt/test/**")?;
/// assert!(p.is_match("/mnt/test/x"));
/// let r = Pattern::regex("^/mnt/test(/|$)")?;
/// assert!(r.is_match("/mnt/test/x"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum Pattern {
    /// A shell-style glob.
    Glob(Glob),
    /// A regular expression.
    Regex(Regex),
}

impl Pattern {
    /// Compiles a glob pattern.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError`] if the glob syntax is invalid.
    pub fn glob(pattern: &str) -> Result<Self, PatternError> {
        Ok(Pattern::Glob(Glob::new(pattern)?))
    }

    /// Compiles a regular expression.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError`] if the regex syntax is invalid.
    pub fn regex(pattern: &str) -> Result<Self, PatternError> {
        Ok(Pattern::Regex(Regex::new(pattern)?))
    }

    /// Tests whether `text` matches this pattern.
    ///
    /// Globs must match the whole text; regexes match anywhere unless
    /// anchored.
    #[must_use]
    pub fn is_match(&self, text: &str) -> bool {
        match self {
            Pattern::Glob(g) => g.is_match(text),
            Pattern::Regex(r) => r.is_match(text),
        }
    }

    /// Returns the original pattern source.
    #[must_use]
    pub fn source(&self) -> &str {
        match self {
            Pattern::Glob(g) => g.source(),
            Pattern::Regex(r) => r.source(),
        }
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_dispatches_to_glob() {
        let p = Pattern::glob("/mnt/*").unwrap();
        assert!(p.is_match("/mnt/test"));
        assert!(!p.is_match("/mnt/test/sub"));
        assert_eq!(p.source(), "/mnt/*");
    }

    #[test]
    fn pattern_dispatches_to_regex() {
        let p = Pattern::regex("^/mnt/.*$").unwrap();
        assert!(p.is_match("/mnt/test/sub"));
        assert_eq!(p.to_string(), "^/mnt/.*$");
    }

    #[test]
    fn invalid_patterns_report_errors() {
        assert!(Pattern::glob("[unclosed").is_err());
        assert!(Pattern::regex("(unclosed").is_err());
    }
}
