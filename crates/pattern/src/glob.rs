//! Shell-style glob matching for filesystem paths.

use crate::PatternError;

/// One compiled glob token.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    /// A literal character.
    Literal(char),
    /// `?` — any single character except `/`.
    AnyChar,
    /// `*` — any run of characters (possibly empty) not containing `/`.
    Star,
    /// `**` — any run of characters (possibly empty), including `/`.
    GlobStar,
    /// `[...]` — a character class; never matches `/`.
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
}

/// A compiled shell-style glob.
///
/// Supported syntax:
///
/// * `?` matches any single character except `/`
/// * `*` matches any (possibly empty) run of characters except `/`
/// * `**` matches any (possibly empty) run of characters *including* `/`
/// * `[a-z]`, `[abc]`, `[!0-9]` / `[^0-9]` character classes (never match `/`)
/// * `\x` escapes the metacharacter `x`
///
/// A glob always matches the **entire** input.
///
/// ```
/// use iocov_pattern::Glob;
///
/// # fn main() -> Result<(), iocov_pattern::PatternError> {
/// let g = Glob::new("/mnt/test/**/file-[0-9]")?;
/// assert!(g.is_match("/mnt/test/a/b/file-3"));
/// assert!(!g.is_match("/mnt/test/a/b/file-x"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Glob {
    source: String,
    tokens: Vec<Token>,
}

impl Glob {
    /// Compiles a glob pattern.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError`] for unclosed character classes, reversed
    /// ranges (`[z-a]`), or a trailing escape character.
    pub fn new(pattern: &str) -> Result<Self, PatternError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut tokens = Vec::with_capacity(chars.len());
        let mut i = 0;
        while i < chars.len() {
            match chars[i] {
                '\\' => {
                    let Some(&c) = chars.get(i + 1) else {
                        return Err(PatternError::new(pattern, i, "trailing escape character"));
                    };
                    tokens.push(Token::Literal(c));
                    i += 2;
                }
                '?' => {
                    tokens.push(Token::AnyChar);
                    i += 1;
                }
                '*' => {
                    if chars.get(i + 1) == Some(&'*') {
                        tokens.push(Token::GlobStar);
                        i += 2;
                    } else {
                        tokens.push(Token::Star);
                        i += 1;
                    }
                }
                '[' => {
                    let (token, next) = parse_class(pattern, &chars, i)?;
                    tokens.push(token);
                    i = next;
                }
                c => {
                    tokens.push(Token::Literal(c));
                    i += 1;
                }
            }
        }
        Ok(Glob {
            source: pattern.to_owned(),
            tokens,
        })
    }

    /// Returns the original glob source text.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Tests whether `text` matches the entire glob.
    #[must_use]
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        match_tokens(&self.tokens, &chars)
    }
}

impl std::fmt::Display for Glob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.source)
    }
}

/// Parses a `[...]` class starting at `chars[start] == '['`.
///
/// Returns the parsed token and the index just past the closing `]`.
fn parse_class(
    pattern: &str,
    chars: &[char],
    start: usize,
) -> Result<(Token, usize), PatternError> {
    let mut i = start + 1;
    let negated = matches!(chars.get(i), Some('!') | Some('^'));
    if negated {
        i += 1;
    }
    let mut ranges = Vec::new();
    let mut first = true;
    loop {
        match chars.get(i) {
            None => {
                return Err(PatternError::new(
                    pattern,
                    start,
                    "unclosed character class",
                ));
            }
            Some(']') if !first => {
                return Ok((Token::Class { negated, ranges }, i + 1));
            }
            Some(&lo) => {
                first = false;
                let lo = if lo == '\\' {
                    i += 1;
                    *chars.get(i).ok_or_else(|| {
                        PatternError::new(pattern, start, "unclosed character class")
                    })?
                } else {
                    lo
                };
                // Range `lo-hi` (a trailing `-` is a literal).
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                    let mut hi_idx = i + 2;
                    let hi = if chars[hi_idx] == '\\' {
                        hi_idx += 1;
                        *chars.get(hi_idx).ok_or_else(|| {
                            PatternError::new(pattern, start, "unclosed character class")
                        })?
                    } else {
                        chars[hi_idx]
                    };
                    if hi < lo {
                        return Err(PatternError::new(
                            pattern,
                            i,
                            format!("reversed character range `{lo}-{hi}`"),
                        ));
                    }
                    ranges.push((lo, hi));
                    i = hi_idx + 1;
                } else {
                    ranges.push((lo, lo));
                    i += 1;
                }
            }
        }
    }
}

/// Whether character class membership holds.
fn class_matches(negated: bool, ranges: &[(char, char)], c: char) -> bool {
    if c == '/' {
        return false;
    }
    let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
    inside != negated
}

/// Recursive glob matcher with star backtracking.
fn match_tokens(tokens: &[Token], text: &[char]) -> bool {
    match tokens.first() {
        None => text.is_empty(),
        Some(Token::Literal(c)) => {
            text.first() == Some(c) && match_tokens(&tokens[1..], &text[1..])
        }
        Some(Token::AnyChar) => {
            matches!(text.first(), Some(&c) if c != '/') && match_tokens(&tokens[1..], &text[1..])
        }
        Some(Token::Class { negated, ranges }) => {
            matches!(text.first(), Some(&c) if class_matches(*negated, ranges, c))
                && match_tokens(&tokens[1..], &text[1..])
        }
        Some(Token::Star) => {
            // Try consuming 0..n non-'/' characters.
            for take in 0..=text.len() {
                if match_tokens(&tokens[1..], &text[take..]) {
                    return true;
                }
                if text.get(take) == Some(&'/') {
                    // `*` cannot cross a separator; stop extending.
                    return false;
                }
            }
            false
        }
        Some(Token::GlobStar) => {
            for take in 0..=text.len() {
                if match_tokens(&tokens[1..], &text[take..]) {
                    return true;
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, text: &str) -> bool {
        Glob::new(pattern).unwrap().is_match(text)
    }

    #[test]
    fn literal_match_is_exact() {
        assert!(m("/mnt/test", "/mnt/test"));
        assert!(!m("/mnt/test", "/mnt/test2"));
        assert!(!m("/mnt/test", "/mnt/tes"));
    }

    #[test]
    fn question_mark_matches_single_non_separator() {
        assert!(m("file-?", "file-a"));
        assert!(!m("file-?", "file-"));
        assert!(!m("file-?", "file-ab"));
        assert!(!m("a?b", "a/b"));
    }

    #[test]
    fn star_stays_within_a_segment() {
        assert!(m("/mnt/*", "/mnt/test"));
        assert!(m("/mnt/*", "/mnt/"));
        assert!(!m("/mnt/*", "/mnt/test/sub"));
        assert!(m("/mnt/*/file", "/mnt/dir/file"));
    }

    #[test]
    fn globstar_crosses_segments() {
        assert!(m("/mnt/test/**", "/mnt/test/a/b/c"));
        assert!(m("/mnt/**/c", "/mnt/a/b/c"));
        assert!(m("/mnt/test/**", "/mnt/test/"));
        assert!(!m("/mnt/test/**", "/mnt/other/a"));
    }

    #[test]
    fn classes_match_ranges_and_negation() {
        assert!(m("f[0-9]", "f7"));
        assert!(!m("f[0-9]", "fa"));
        assert!(m("f[!0-9]", "fa"));
        assert!(!m("f[!0-9]", "f7"));
        assert!(m("f[^0-9]", "fa"));
        assert!(m("f[abc]", "fb"));
        assert!(!m("f[abc]", "fd"));
    }

    #[test]
    fn class_never_matches_separator() {
        // Even a negated class must not match '/'.
        assert!(!m("a[!x]b", "a/b"));
    }

    #[test]
    fn leading_close_bracket_is_literal_member() {
        assert!(m("f[]]", "f]"));
        assert!(!m("f[]]", "fx"));
    }

    #[test]
    fn trailing_dash_is_literal_member() {
        assert!(m("f[a-]", "f-"));
        assert!(m("f[a-]", "fa"));
        assert!(!m("f[a-]", "fb"));
    }

    #[test]
    fn escapes_make_metacharacters_literal() {
        assert!(m(r"a\*b", "a*b"));
        assert!(!m(r"a\*b", "axb"));
        assert!(m(r"a\?b", "a?b"));
        assert!(m(r"a\[b", "a[b"));
    }

    #[test]
    fn escaped_chars_inside_class() {
        assert!(m(r"f[\]x]", "f]"));
        assert!(m(r"f[\]x]", "fx"));
    }

    #[test]
    fn errors_on_malformed_patterns() {
        assert!(Glob::new("[abc").is_err());
        assert!(Glob::new(r"abc\").is_err());
        assert!(Glob::new("[z-a]").is_err());
    }

    #[test]
    fn empty_pattern_matches_only_empty_text() {
        assert!(m("", ""));
        assert!(!m("", "x"));
    }

    #[test]
    fn star_at_end_matches_empty_tail() {
        assert!(m("/mnt/test*", "/mnt/test"));
        assert!(m("/mnt/test*", "/mnt/test42"));
    }

    #[test]
    fn multiple_stars_backtrack_correctly() {
        assert!(m("*a*b*", "xxaxxbxx"));
        assert!(!m("*a*b*", "xxcxxaxxcc"));
        assert!(m("**/a/**", "x/y/a/z"));
    }

    #[test]
    fn unicode_literals_match() {
        assert!(m("caf\u{e9}-*", "caf\u{e9}-1"));
    }

    #[test]
    fn display_roundtrips_source() {
        let g = Glob::new("/mnt/*/x").unwrap();
        assert_eq!(g.to_string(), "/mnt/*/x");
        assert_eq!(g.source(), "/mnt/*/x");
    }
}
