//! A small regular-expression engine executed by a Pike-style NFA VM.
//!
//! Supported syntax: literals, escapes (`\d \D \w \W \s \S` and escaped
//! metacharacters), `.`, character classes `[a-z0-9_]` / `[^...]`, groups
//! `(...)`, alternation `|`, repetition `* + ? {m} {m,} {m,n}`, and the
//! anchors `^` / `$`. Matching is unanchored unless anchors are present.

use crate::PatternError;

/// A matched region of the searched text (byte offsets are not exposed;
/// offsets are in characters for simplicity of the path-filter use case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    start: usize,
    end: usize,
}

impl Match {
    /// Character offset of the first matched character.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Character offset one past the last matched character.
    #[must_use]
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of characters matched.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the match is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Single-character predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CharPred {
    Any,
    Lit(char),
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
}

impl CharPred {
    fn matches(&self, c: char) -> bool {
        match self {
            CharPred::Any => true,
            CharPred::Lit(l) => *l == c,
            CharPred::Class { negated, ranges } => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                inside != *negated
            }
        }
    }
}

/// Parsed regex AST.
#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Char(CharPred),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
    AnchorStart,
    AnchorEnd,
}

/// Compiled NFA instruction.
#[derive(Debug, Clone)]
enum Inst {
    Char(CharPred),
    Split(usize, usize),
    Jmp(usize),
    AnchorStart,
    AnchorEnd,
    Match,
}

/// A compiled regular expression.
///
/// ```
/// use iocov_pattern::Regex;
///
/// # fn main() -> Result<(), iocov_pattern::PatternError> {
/// let re = Regex::new(r"^sys_(open|openat2?|creat)$")?;
/// assert!(re.is_match("sys_openat2"));
/// assert!(!re.is_match("sys_read"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    source: String,
    prog: Vec<Inst>,
}

impl Regex {
    /// Compiles a regular expression.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError`] on syntax errors: unbalanced parentheses,
    /// unclosed classes, dangling repetition operators, reversed `{m,n}`
    /// bounds, or trailing escapes.
    pub fn new(pattern: &str) -> Result<Self, PatternError> {
        let mut parser = Parser {
            pattern,
            chars: pattern.chars().collect(),
            pos: 0,
        };
        let ast = parser.parse_alt()?;
        if parser.pos != parser.chars.len() {
            return Err(PatternError::new(
                pattern,
                parser.pos,
                "unbalanced closing parenthesis",
            ));
        }
        let mut prog = Vec::new();
        compile(&ast, &mut prog);
        prog.push(Inst::Match);
        Ok(Regex {
            source: pattern.to_owned(),
            prog,
        })
    }

    /// Returns the original regex source text.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Tests whether the regex matches anywhere in `text`.
    #[must_use]
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Finds the leftmost match, preferring the longest match at that
    /// position, and returns its character offsets.
    #[must_use]
    pub fn find(&self, text: &str) -> Option<Match> {
        let chars: Vec<char> = text.chars().collect();
        for start in 0..=chars.len() {
            if let Some(end) = self.run_from(&chars, start) {
                return Some(Match { start, end });
            }
        }
        None
    }

    /// Runs the NFA anchored at `start`; returns the longest match end.
    fn run_from(&self, chars: &[char], start: usize) -> Option<usize> {
        let n = self.prog.len();
        let mut current: Vec<usize> = Vec::with_capacity(n);
        let mut next: Vec<usize> = Vec::with_capacity(n);
        let mut on_current = vec![false; n];
        let mut on_next = vec![false; n];
        let mut best: Option<usize> = None;

        add_thread(
            &self.prog,
            0,
            start,
            chars.len(),
            &mut current,
            &mut on_current,
        );
        let mut pos = start;
        loop {
            // Record any accepting thread at the current position.
            if current
                .iter()
                .any(|&pc| matches!(self.prog[pc], Inst::Match))
            {
                best = Some(pos);
            }
            if pos >= chars.len() || current.is_empty() {
                break;
            }
            let c = chars[pos];
            next.clear();
            on_next.iter_mut().for_each(|b| *b = false);
            for &pc in &current {
                if let Inst::Char(pred) = &self.prog[pc] {
                    if pred.matches(c) {
                        add_thread(
                            &self.prog,
                            pc + 1,
                            pos + 1,
                            chars.len(),
                            &mut next,
                            &mut on_next,
                        );
                    }
                }
            }
            std::mem::swap(&mut current, &mut next);
            std::mem::swap(&mut on_current, &mut on_next);
            pos += 1;
        }
        best
    }
}

impl std::fmt::Display for Regex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.source)
    }
}

/// Adds `pc` and its epsilon closure to the thread list.
fn add_thread(
    prog: &[Inst],
    pc: usize,
    pos: usize,
    len: usize,
    list: &mut Vec<usize>,
    on_list: &mut [bool],
) {
    if on_list[pc] {
        return;
    }
    on_list[pc] = true;
    match &prog[pc] {
        Inst::Jmp(t) => add_thread(prog, *t, pos, len, list, on_list),
        Inst::Split(a, b) => {
            add_thread(prog, *a, pos, len, list, on_list);
            add_thread(prog, *b, pos, len, list, on_list);
        }
        Inst::AnchorStart => {
            if pos == 0 {
                add_thread(prog, pc + 1, pos, len, list, on_list);
            }
        }
        Inst::AnchorEnd => {
            if pos == len {
                add_thread(prog, pc + 1, pos, len, list, on_list);
            }
        }
        Inst::Char(_) | Inst::Match => list.push(pc),
    }
}

/// Emits NFA code for `ast` into `prog`.
fn compile(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(p) => prog.push(Inst::Char(p.clone())),
        Ast::AnchorStart => prog.push(Inst::AnchorStart),
        Ast::AnchorEnd => prog.push(Inst::AnchorEnd),
        Ast::Concat(parts) => {
            for p in parts {
                compile(p, prog);
            }
        }
        Ast::Alt(alts) => {
            // Chain of Splits; each branch Jmps to the common exit.
            let mut jmp_fixups = Vec::new();
            for (i, alt) in alts.iter().enumerate() {
                if i + 1 < alts.len() {
                    let split_at = prog.len();
                    prog.push(Inst::Split(0, 0)); // fixed up below
                    compile(alt, prog);
                    jmp_fixups.push(prog.len());
                    prog.push(Inst::Jmp(0)); // fixed up below
                    let after = prog.len();
                    prog[split_at] = Inst::Split(split_at + 1, after);
                } else {
                    compile(alt, prog);
                }
            }
            let end = prog.len();
            for f in jmp_fixups {
                prog[f] = Inst::Jmp(end);
            }
        }
        Ast::Repeat { node, min, max } => {
            for _ in 0..*min {
                compile(node, prog);
            }
            match max {
                None => {
                    // Greedy star loop.
                    let split_at = prog.len();
                    prog.push(Inst::Split(0, 0));
                    compile(node, prog);
                    prog.push(Inst::Jmp(split_at));
                    let after = prog.len();
                    prog[split_at] = Inst::Split(split_at + 1, after);
                }
                Some(max) => {
                    // (max - min) optional copies.
                    let mut fixups = Vec::new();
                    for _ in *min..*max {
                        let split_at = prog.len();
                        prog.push(Inst::Split(0, 0));
                        fixups.push(split_at);
                        compile(node, prog);
                    }
                    let end = prog.len();
                    for f in fixups {
                        prog[f] = Inst::Split(f + 1, end);
                    }
                }
            }
        }
    }
}

/// Recursive-descent regex parser.
struct Parser<'a> {
    pattern: &'a str,
    chars: Vec<char>,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn err(&self, msg: impl Into<String>) -> PatternError {
        PatternError::new(self.pattern, self.pos, msg)
    }

    fn parse_alt(&mut self) -> Result<Ast, PatternError> {
        let mut alts = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.parse_concat()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("one alternative")
        } else {
            Ast::Alt(alts)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, PatternError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, PatternError> {
        let atom = self.parse_atom()?;
        let Some(op) = self.peek() else {
            return Ok(atom);
        };
        let (min, max) = match op {
            '*' => {
                self.bump();
                (0, None)
            }
            '+' => {
                self.bump();
                (1, None)
            }
            '?' => {
                self.bump();
                (0, Some(1))
            }
            '{' => {
                self.bump();
                let (min, max) = self.parse_bounds()?;
                (min, max)
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd | Ast::Empty) {
            return Err(self.err("repetition operator applied to nothing"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    /// Parses the interior of `{m}`, `{m,}` or `{m,n}` (after the `{`).
    fn parse_bounds(&mut self) -> Result<(u32, Option<u32>), PatternError> {
        let min = self.parse_number()?;
        match self.bump() {
            Some('}') => Ok((min, Some(min))),
            Some(',') => {
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok((min, None));
                }
                let max = self.parse_number()?;
                if self.bump() != Some('}') {
                    return Err(self.err("expected `}` in repetition"));
                }
                if max < min {
                    return Err(self.err("reversed repetition bounds"));
                }
                Ok((min, Some(max)))
            }
            _ => Err(self.err("malformed repetition bounds")),
        }
    }

    fn parse_number(&mut self) -> Result<u32, PatternError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a number in repetition"));
        }
        let digits: String = self.chars[start..self.pos].iter().collect();
        digits
            .parse::<u32>()
            .map_err(|_| self.err("repetition bound too large"))
    }

    fn parse_atom(&mut self) -> Result<Ast, PatternError> {
        match self.peek() {
            None => Ok(Ast::Empty),
            Some('^') => {
                self.bump();
                Ok(Ast::AnchorStart)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::AnchorEnd)
            }
            Some('.') => {
                self.bump();
                Ok(Ast::Char(CharPred::Any))
            }
            Some('(') => {
                self.bump();
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unbalanced opening parenthesis"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('\\') => {
                self.bump();
                let c = self.bump().ok_or_else(|| self.err("trailing escape"))?;
                Ok(Ast::Char(escape_pred(c)))
            }
            Some('*') | Some('+') | Some('?') => {
                Err(self.err("repetition operator applied to nothing"))
            }
            Some(c) => {
                self.bump();
                Ok(Ast::Char(CharPred::Lit(c)))
            }
        }
    }

    fn parse_class(&mut self) -> Result<Ast, PatternError> {
        let open = self.pos;
        self.bump(); // consume '['
        let negated = self.peek() == Some('^');
        if negated {
            self.bump();
        }
        let mut ranges = Vec::new();
        let mut first = true;
        loop {
            match self.peek() {
                None => {
                    return Err(PatternError::new(
                        self.pattern,
                        open,
                        "unclosed character class",
                    ));
                }
                Some(']') if !first => {
                    self.bump();
                    return Ok(Ast::Char(CharPred::Class { negated, ranges }));
                }
                Some(c) => {
                    first = false;
                    let lo = if c == '\\' {
                        self.bump();
                        let e = self.bump().ok_or_else(|| self.err("trailing escape"))?;
                        match escape_pred(e) {
                            CharPred::Lit(l) => l,
                            CharPred::Class {
                                ranges: rs,
                                negated: false,
                            } => {
                                // `[\d...]`: splice in the shorthand's ranges.
                                ranges.extend(rs);
                                continue;
                            }
                            _ => return Err(self.err("unsupported escape in class")),
                        }
                    } else {
                        self.bump();
                        c
                    };
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&c| c != ']')
                    {
                        self.bump(); // '-'
                        let hi = self
                            .bump()
                            .ok_or_else(|| self.err("unclosed character class"))?;
                        let hi = if hi == '\\' {
                            let e = self.bump().ok_or_else(|| self.err("trailing escape"))?;
                            match escape_pred(e) {
                                CharPred::Lit(l) => l,
                                _ => return Err(self.err("class shorthand cannot end a range")),
                            }
                        } else {
                            hi
                        };
                        if hi < lo {
                            return Err(self.err(format!("reversed character range `{lo}-{hi}`")));
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
        }
    }
}

/// Resolves an escape sequence to a character predicate.
fn escape_pred(c: char) -> CharPred {
    match c {
        'd' => CharPred::Class {
            negated: false,
            ranges: vec![('0', '9')],
        },
        'D' => CharPred::Class {
            negated: true,
            ranges: vec![('0', '9')],
        },
        'w' => CharPred::Class {
            negated: false,
            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
        },
        'W' => CharPred::Class {
            negated: true,
            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
        },
        's' => CharPred::Class {
            negated: false,
            ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
        },
        'S' => CharPred::Class {
            negated: true,
            ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
        },
        'n' => CharPred::Lit('\n'),
        't' => CharPred::Lit('\t'),
        'r' => CharPred::Lit('\r'),
        other => CharPred::Lit(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, text: &str) -> bool {
        Regex::new(pattern).unwrap().is_match(text)
    }

    #[test]
    fn literal_substring_match_is_unanchored() {
        assert!(m("test", "/mnt/test/file"));
        assert!(!m("test", "/mnt/tes/file"));
    }

    #[test]
    fn anchors_constrain_match_position() {
        assert!(m("^/mnt", "/mnt/test"));
        assert!(!m("^mnt", "/mnt/test"));
        assert!(m("test$", "/mnt/test"));
        assert!(!m("test$", "/mnt/test/x"));
        assert!(m("^/mnt/test$", "/mnt/test"));
    }

    #[test]
    fn dot_matches_any_character() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "a/c"));
        assert!(!m("^a.c$", "ac"));
    }

    #[test]
    fn star_plus_question_repetitions() {
        assert!(m("^ab*c$", "ac"));
        assert!(m("^ab*c$", "abbbc"));
        assert!(m("^ab+c$", "abc"));
        assert!(!m("^ab+c$", "ac"));
        assert!(m("^ab?c$", "ac"));
        assert!(m("^ab?c$", "abc"));
        assert!(!m("^ab?c$", "abbc"));
    }

    #[test]
    fn counted_repetition() {
        assert!(m("^a{3}$", "aaa"));
        assert!(!m("^a{3}$", "aa"));
        assert!(m("^a{2,}$", "aaaa"));
        assert!(!m("^a{2,}$", "a"));
        assert!(m("^a{1,3}$", "aa"));
        assert!(!m("^a{1,3}$", "aaaa"));
        assert!(m("^a{0,1}$", ""));
    }

    #[test]
    fn alternation_with_groups() {
        assert!(m("^sys_(open|read|write)$", "sys_read"));
        assert!(!m("^sys_(open|read|write)$", "sys_lseek"));
        assert!(m("^(a|b)+$", "abab"));
    }

    #[test]
    fn classes_and_shorthands() {
        assert!(m(r"^[a-f0-9]+$", "deadbeef42"));
        assert!(!m(r"^[a-f0-9]+$", "xyz"));
        assert!(m(r"^\d+$", "12345"));
        assert!(!m(r"^\d+$", "12a45"));
        assert!(m(r"^\w+$", "open_at2"));
        assert!(m(r"^\s$", " "));
        assert!(m(r"^[^/]+$", "segment"));
        assert!(!m(r"^[^/]+$", "a/b"));
        assert!(m(r"^[\d_]+$", "12_3"));
    }

    #[test]
    fn escaped_metacharacters() {
        assert!(m(r"^a\.b$", "a.b"));
        assert!(!m(r"^a\.b$", "axb"));
        assert!(m(r"^a\*$", "a*"));
        assert!(m(r"^\(x\)$", "(x)"));
    }

    #[test]
    fn nested_groups_and_optionals() {
        let re = Regex::new(r"^/mnt/(test|scratch)(/.*)?$").unwrap();
        assert!(re.is_match("/mnt/test"));
        assert!(re.is_match("/mnt/scratch/a/b"));
        assert!(!re.is_match("/mnt/testx"));
        assert!(!re.is_match("/mnt/other/a"));
    }

    #[test]
    fn find_returns_leftmost_longest_offsets() {
        let re = Regex::new(r"b+").unwrap();
        let mat = re.find("aabbbcbb").unwrap();
        assert_eq!((mat.start(), mat.end()), (2, 5));
        assert_eq!(mat.len(), 3);
        assert!(!mat.is_empty());
    }

    #[test]
    fn find_empty_match_possible() {
        let re = Regex::new(r"x*").unwrap();
        let mat = re.find("yyy").unwrap();
        assert_eq!((mat.start(), mat.end()), (0, 0));
        assert!(mat.is_empty());
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // Would be exponential with naive backtracking.
        let re = Regex::new("^(a?){24}a{24}$").unwrap();
        let text = "a".repeat(24);
        assert!(re.is_match(&text));
        let bad = "a".repeat(23);
        assert!(!re.is_match(&bad));
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(Regex::new("(a").is_err());
        assert!(Regex::new("a)").is_err());
        assert!(Regex::new("[a").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("a{x}").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("a{99999999999999}").is_err());
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", ""));
        assert!(m("", "anything"));
    }

    #[test]
    fn display_roundtrips_source() {
        let re = Regex::new("^x$").unwrap();
        assert_eq!(re.to_string(), "^x$");
        assert_eq!(re.source(), "^x$");
    }

    #[test]
    fn mount_point_filter_patterns_from_paper() {
        // xfstests-style mount points.
        let re = Regex::new(r"^/mnt/(test|scratch)(/|$)").unwrap();
        assert!(re.is_match("/mnt/test"));
        assert!(re.is_match("/mnt/test/dir/file"));
        assert!(re.is_match("/mnt/scratch/f"));
        assert!(!re.is_match("/mnt/testdir/f"));
        assert!(!re.is_match("/home/user/f"));
    }
}
