//! Pattern compilation errors.

use std::error::Error;
use std::fmt;

/// An error produced while compiling a glob or regular expression.
///
/// The error carries the original pattern, the byte offset of the offending
/// construct, and a human-readable message.
///
/// ```
/// use iocov_pattern::Regex;
///
/// let err = Regex::new("a{3,1}").unwrap_err();
/// assert!(err.to_string().contains("repetition"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    pattern: String,
    offset: usize,
    message: String,
}

impl PatternError {
    pub(crate) fn new(pattern: &str, offset: usize, message: impl Into<String>) -> Self {
        PatternError {
            pattern: pattern.to_owned(),
            offset,
            message: message.into(),
        }
    }

    /// The pattern that failed to compile.
    #[must_use]
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Byte offset in [`Self::pattern`] where the error was detected.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Human-readable description of the problem.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid pattern `{}` at offset {}: {}",
            self.pattern, self.offset, self.message
        )
    }
}

impl Error for PatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_pattern_offset_and_message() {
        let e = PatternError::new("a[b", 1, "unclosed character class");
        let s = e.to_string();
        assert!(s.contains("a[b"));
        assert!(s.contains("offset 1"));
        assert!(s.contains("unclosed character class"));
        assert_eq!(e.pattern(), "a[b");
        assert_eq!(e.offset(), 1);
        assert_eq!(e.message(), "unclosed character class");
    }
}
