//! Property tests for the Syzkaller-log adapter and streaming analyzer.

use iocov::syzlang::{parse_program, parse_to_trace, SyzArg};
use iocov::{Analyzer, StreamingAnalyzer, TraceFilter};
use iocov_trace::{ArgValue, Trace, TraceEvent};
use proptest::prelude::*;

/// Renders a call in Syzkaller syntax from structured pieces.
fn render_call(
    result_var: Option<u32>,
    name: &str,
    args: &[(bool, u64)], // (render_as_resource, value)
    path: Option<&str>,
    retval: i64,
) -> String {
    let mut line = String::new();
    if let Some(v) = result_var {
        line.push_str(&format!("r{v} = "));
    }
    line.push_str(name);
    line.push('(');
    let mut rendered: Vec<String> = Vec::new();
    if let Some(p) = path {
        rendered.push(format!("&(0x7f0000000000)='{p}\\x00'"));
    }
    for (as_resource, value) in args {
        if *as_resource {
            rendered.push(format!("r{}", value % 8));
        } else {
            rendered.push(format!("{value:#x}"));
        }
    }
    line.push_str(&rendered.join(", "));
    line.push_str(&format!(") # {retval}"));
    line
}

proptest! {
    /// Any rendered call parses back to its structural pieces.
    #[test]
    fn rendered_calls_roundtrip(
        var in proptest::option::of(0u32..8),
        name in "[a-z][a-z0-9_]{1,12}",
        args in proptest::collection::vec((any::<bool>(), any::<u64>()), 0..5),
        path in proptest::option::of("[a-zA-Z0-9/._-]{1,24}"),
        retval in any::<i64>(),
    ) {
        let line = render_call(var, &name, &args, path.as_deref(), retval);
        let program = parse_program(&line).expect("rendered call parses");
        prop_assert_eq!(program.calls.len(), 1);
        let call = &program.calls[0];
        prop_assert_eq!(&call.name, &name);
        prop_assert_eq!(call.retval, Some(retval));
        prop_assert_eq!(call.result_var.is_some(), var.is_some());
        let expected_args = args.len() + usize::from(path.is_some());
        prop_assert_eq!(call.args.len(), expected_args);
        if let Some(p) = &path {
            prop_assert_eq!(&call.args[0], &SyzArg::StrPtr(p.clone()));
        }
    }

    /// Converting a parsed program to a trace preserves call count and
    /// retvals.
    #[test]
    fn program_to_trace_preserves_calls(
        retvals in proptest::collection::vec(-200i64..1_000_000, 1..20),
    ) {
        let log: String = retvals
            .iter()
            .enumerate()
            .map(|(i, r)| format!("write({:#x}, 0x0, {:#x}) # {r}\n", 3 + i, i * 7))
            .collect();
        let trace = parse_to_trace(&log).unwrap();
        prop_assert_eq!(trace.len(), retvals.len());
        for (event, retval) in trace.iter().zip(&retvals) {
            prop_assert_eq!(event.retval, *retval);
            prop_assert_eq!(event.name.as_str(), "write");
        }
    }

    /// Streaming analysis equals batch analysis on arbitrary event
    /// sequences, for both filtered and unfiltered configurations.
    #[test]
    fn streaming_equals_batch(
        ops in proptest::collection::vec((0u8..5, 0u32..6, -3i64..10), 1..60),
    ) {
        let mut events = Vec::new();
        for (kind, file_idx, ret) in ops {
            let event = match kind {
                0 => TraceEvent::build(
                    "open",
                    2,
                    vec![
                        ArgValue::Path(format!("/mnt/test/f{file_idx}")),
                        ArgValue::Flags(0),
                        ArgValue::Mode(0o644),
                    ],
                    ret,
                ),
                1 => TraceEvent::build(
                    "open",
                    2,
                    vec![
                        ArgValue::Path(format!("/outside/f{file_idx}")),
                        ArgValue::Flags(0o101),
                        ArgValue::Mode(0o644),
                    ],
                    ret,
                ),
                2 => TraceEvent::build(
                    "write",
                    1,
                    vec![ArgValue::Fd(ret as i32), ArgValue::Ptr(1), ArgValue::UInt(512)],
                    ret,
                ),
                3 => TraceEvent::build("close", 3, vec![ArgValue::Fd(ret as i32)], 0),
                _ => TraceEvent::build(
                    "chdir",
                    80,
                    vec![ArgValue::Path(format!("/mnt/test/d{file_idx}"))],
                    ret,
                ),
            };
            events.push(event);
        }
        let trace = Trace::from_events(events.clone());
        for filter in [TraceFilter::keep_all(), TraceFilter::mount_point("/mnt/test").unwrap()] {
            let batch = Analyzer::new(filter.clone()).analyze(&trace);
            let mut streaming = StreamingAnalyzer::new(filter);
            // Push in several chunks to exercise boundary handling.
            for chunk in events.chunks(7) {
                streaming.push_all(chunk);
            }
            prop_assert_eq!(batch, streaming.report());
        }
    }
}
