//! Property-based tests for the IOCov analyzer.

use iocov::tcd::tcd;
use iocov::{
    arg_domain, normalize, open_flags_present, Analyzer, ArgName, InputPartition, NumericPartition,
    OutputPartition, ParallelAnalyzer, ParallelStreamingAnalyzer, StreamingAnalyzer, TraceFilter,
    TrackedValue,
};
use iocov_trace::{ArgValue, Trace, TraceEvent};
use proptest::prelude::*;

/// One synthetic syscall for the concurrency-equivalence property:
/// opens (absolute inside/outside the mount, or relative), `dup`/`dup2`,
/// writes, two-path renames crossing the mount boundary, `chdir`, and
/// `close` — everything the provenance tracker handles — attributed to
/// one of five pids.
fn arb_provenance_event() -> impl Strategy<Value = TraceEvent> {
    let op = prop_oneof![
        (0u8..4, "[a-z]{1,4}", 3i64..10).prop_map(|(root, name, fd)| {
            let path = match root {
                0 => format!("/mnt/test/{name}"),
                1 => format!("/etc/{name}"),
                2 => name, // relative: resolves through the pid's cwd
                _ => format!("/mnt/test/sub/{name}"),
            };
            TraceEvent::build(
                "open",
                2,
                vec![
                    ArgValue::Path(path),
                    ArgValue::Flags(0o101),
                    ArgValue::Mode(0o644),
                ],
                fd,
            )
        }),
        (3i32..10, 3i32..12).prop_map(|(old, new)| TraceEvent::build(
            "dup2",
            33,
            vec![ArgValue::Fd(old), ArgValue::Fd(new)],
            i64::from(new),
        )),
        (3i32..10, 3i32..12).prop_map(|(old, new)| TraceEvent::build(
            "dup",
            32,
            vec![ArgValue::Fd(old)],
            i64::from(new),
        )),
        (3i32..12, 0u32..20).prop_map(|(fd, shift)| TraceEvent::build(
            "write",
            1,
            vec![
                ArgValue::Fd(fd),
                ArgValue::Ptr(1),
                ArgValue::UInt(1u64 << shift)
            ],
            1i64 << shift,
        )),
        ("[a-z]{1,4}", "[a-z]{1,4}", 0u8..2).prop_map(|(a, b, into)| {
            let (src, dst) = if into == 0 {
                (format!("/tmp/{a}"), format!("/mnt/test/{b}"))
            } else {
                (format!("/mnt/test/{a}"), format!("/tmp/{b}"))
            };
            TraceEvent::build(
                "rename",
                82,
                vec![ArgValue::Path(src), ArgValue::Path(dst)],
                0,
            )
        }),
        (0u8..2).prop_map(|inside| TraceEvent::build(
            "chdir",
            80,
            vec![ArgValue::Path(if inside == 0 {
                "/mnt/test".into()
            } else {
                "/home".into()
            })],
            0,
        )),
        (3i32..12).prop_map(|fd| TraceEvent::build("close", 3, vec![ArgValue::Fd(fd)], 0)),
    ];
    (0u32..5, op).prop_map(|(pid, mut event)| {
        event.pid = pid;
        event
    })
}

fn open_event(path: String, flags: u32, retval: i64) -> TraceEvent {
    TraceEvent::build(
        "open",
        2,
        vec![
            ArgValue::Path(path),
            ArgValue::Flags(flags),
            ArgValue::Mode(0o644),
        ],
        retval,
    )
}

proptest! {
    /// Numeric partitioning is total and monotone: every value lands in
    /// exactly one bucket, and buckets respect ordering.
    #[test]
    fn numeric_partition_total_and_monotone(a in any::<i64>(), b in any::<i64>()) {
        let pa = NumericPartition::of(i128::from(a));
        let pb = NumericPartition::of(i128::from(b));
        if a == b {
            prop_assert_eq!(pa, pb);
        }
        // Lower bounds are consistent with membership.
        if let Some(lo) = pa.lower_bound() {
            prop_assert!(a >= 0);
            prop_assert!(u128::try_from(a).unwrap() >= lo || a == 0);
        } else {
            prop_assert!(a < 0);
        }
    }

    /// Bucket index grows monotonically with the value.
    #[test]
    fn numeric_buckets_monotone_in_value(a in 1u64..u64::MAX / 2) {
        let b = a * 2;
        let pa = NumericPartition::of(i128::from(a));
        let pb = NumericPartition::of(i128::from(b));
        match (pa, pb) {
            (NumericPartition::Log2(ka), NumericPartition::Log2(kb)) => {
                prop_assert_eq!(kb, ka + 1, "doubling advances exactly one bucket");
            }
            other => prop_assert!(false, "unexpected partitions {:?}", other),
        }
    }

    /// Flag decomposition never invents flags: every reported flag's bits
    /// are present in the word, and exactly one access mode is reported.
    #[test]
    fn open_flag_decomposition_is_sound(bits in any::<u32>()) {
        let present = open_flags_present(bits);
        let modes = ["O_RDONLY", "O_WRONLY", "O_RDWR"];
        let mode_count = present.iter().filter(|f| modes.contains(f)).count();
        // Access mode 3 is invalid and reports no mode; otherwise one.
        if bits & 3 == 3 {
            prop_assert_eq!(mode_count, 0);
        } else {
            prop_assert_eq!(mode_count, 1);
        }
        for flag in &present {
            if let Some((_, f)) = iocov_syscalls::OpenFlags::NAMED_FLAGS
                .iter()
                .find(|(n, _)| n == flag)
            {
                if f.bits() != 0 {
                    prop_assert_eq!(bits & f.bits(), f.bits(), "{} bits present", flag);
                }
            }
        }
    }

    /// Partitioning a value always produces partitions inside the
    /// argument's enumerable domain (for bitmap/categorical kinds) or a
    /// single numeric bucket.
    #[test]
    fn partitions_of_stay_in_domain(arg_idx in 0usize..14, value in any::<u32>()) {
        let arg = ArgName::ALL[arg_idx];
        let domain = arg_domain(arg);
        let parts = domain.partitions_of(TrackedValue::Bits(value));
        for p in &parts {
            match p {
                InputPartition::Numeric(_) => {} // numeric buckets may exceed display range
                other => {
                    prop_assert!(
                        domain.all_partitions().contains(other),
                        "{:?} outside domain of {}",
                        other,
                        arg
                    );
                }
            }
        }
    }

    /// Output partitioning is total: any retval maps to OK or an errno.
    #[test]
    fn output_partition_total(retval in any::<i64>(), buckets in any::<bool>()) {
        let p = OutputPartition::of(retval, buckets);
        prop_assert_eq!(p.is_success(), retval >= 0);
    }

    /// TCD is non-negative, zero only at the target, and symmetric under
    /// common scaling direction (log property).
    #[test]
    fn tcd_basic_properties(freqs in proptest::collection::vec(0u64..1_000_000, 1..20), target in 0u64..1_000_000) {
        let targets = vec![target; freqs.len()];
        let value = tcd(&freqs, &targets);
        prop_assert!(value >= 0.0);
        let exact = tcd(&targets, &targets);
        prop_assert!(exact.abs() < 1e-12);
        if freqs == targets {
            prop_assert!(value.abs() < 1e-12);
        }
    }

    /// Analyzing a concatenated trace equals merging the two reports.
    #[test]
    fn analysis_merge_is_homomorphic(
        flags_a in proptest::collection::vec(0u32..0x4000, 0..20),
        flags_b in proptest::collection::vec(0u32..0x4000, 0..20),
    ) {
        let analyzer = Analyzer::unfiltered();
        let trace_a: Trace = flags_a.iter().map(|&f| open_event("/a".into(), f, 3)).collect();
        let trace_b: Trace = flags_b.iter().map(|&f| open_event("/b".into(), f, -2)).collect();
        let mut combined_events = trace_a.clone().into_events();
        combined_events.extend(trace_b.clone().into_events());
        let whole = analyzer.analyze(&Trace::from_events(combined_events));
        let mut merged = analyzer.analyze(&trace_a);
        merged.merge(&analyzer.analyze(&trace_b));
        prop_assert_eq!(whole.input, merged.input);
        prop_assert_eq!(whole.output, merged.output);
        prop_assert_eq!(whole.open_combos, merged.open_combos);
    }

    /// Filtering is idempotent: applying the same filter twice keeps the
    /// same events.
    #[test]
    fn filter_is_idempotent(paths in proptest::collection::vec("[a-z]{1,6}", 1..20)) {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let events: Vec<TraceEvent> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let path = if i % 2 == 0 {
                    format!("/mnt/test/{p}")
                } else {
                    format!("/other/{p}")
                };
                open_event(path, 0, 3 + i as i64)
            })
            .collect();
        let trace = Trace::from_events(events);
        let (once, stats1) = filter.apply(&trace);
        let (twice, stats2) = filter.apply(&once);
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(stats1.kept, stats2.kept);
        prop_assert_eq!(stats2.dropped, 0);
    }

    /// Serial batch, streaming under arbitrary chunking, and pid-sharded
    /// parallel analysis at 1–8 workers produce the identical report on
    /// multi-pid traces full of dup/rename/chdir interleavings.
    #[test]
    fn serial_streaming_parallel_reports_agree(
        events in proptest::collection::vec(arb_provenance_event(), 0..120),
        chunk in 1usize..17,
        workers in 1usize..9,
    ) {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(events.clone());
        let serial = Analyzer::new(filter.clone()).analyze(&trace);

        let mut streaming = StreamingAnalyzer::new(filter.clone());
        for part in events.chunks(chunk) {
            streaming.push_all(part);
        }
        prop_assert_eq!(&serial, &streaming.finish());

        let parallel = ParallelAnalyzer::new(filter.clone(), workers).analyze(&trace);
        prop_assert_eq!(&serial, &parallel);

        let mut sharded = ParallelStreamingAnalyzer::new(filter, workers);
        for part in events.chunks(chunk) {
            sharded.push_all(part);
        }
        prop_assert_eq!(serial, sharded.finish());
    }

    /// Normalization preserves the return value and maps every event of a
    /// known syscall to its variant's base.
    #[test]
    fn normalize_preserves_retval(retval in any::<i64>(), flags in any::<u32>()) {
        let event = open_event("/x".into(), flags, retval);
        let call = normalize(&event).unwrap();
        prop_assert_eq!(call.retval, retval);
        prop_assert_eq!(call.base, iocov::BaseSyscall::Open);
    }
}
