//! Property: resident sessions make stream interleaving invisible.
//! `iocov serve` feeds N concurrent trace streams through one
//! [`AnalysisSession`] each and merges their reports into a shared
//! snapshot; the pre-existing batch path analyzes one concatenated
//! trace. For serve's snapshot to be byte-identical to the batch run,
//! feeding each stream's batches in *any* interleaving — and merging
//! the finished reports in *any* completion order — must serialize to
//! exactly the bytes of the single concatenated analysis, with and
//! without shared `--metrics`. Streams carry disjoint pid ranges, as
//! real per-process trace streams do.

use std::sync::Arc;

use iocov::{
    splitmix64, AnalysisReport, MetricsSnapshot, PipelineBuilder, PipelineMetrics, TraceFilter,
};
use iocov_trace::{ArgValue, EventBatch, TraceEvent};
use proptest::prelude::*;
use proptest::TestCaseError;

const MOUNT: &str = "/mnt/test";

/// One synthetic trace event: opens in and out of the mount, reads and
/// writes with boundary-ish sizes, both success and errno returns — the
/// shapes that exercise the filter, the numeric partitioner, and the
/// output partitioner at once.
fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        // open: in-mount and noise paths, a few flag words, hits and
        // misses.
        (
            0usize..3,
            0usize..4,
            prop_oneof![Just(3i64), Just(4), Just(-2), Just(-13)]
        )
            .prop_map(|(path, flags, ret)| {
                let path = ["/mnt/test/a", "/mnt/test/b/c", "/etc/noise"][path];
                let flags = [0u32, 0o1, 0o102, 0o2001][flags];
                TraceEvent::build(
                    "open",
                    2,
                    vec![
                        ArgValue::Path(path.into()),
                        ArgValue::Flags(flags),
                        ArgValue::Mode(0o644),
                    ],
                    ret,
                )
            }),
        // write/read: size-returning calls across several return
        // buckets plus short/zero/errno returns.
        (
            any::<bool>(),
            0u64..100_000,
            prop_oneof![Just(0i64), Just(1), Just(-28)]
        )
            .prop_map(|(write, count, short)| {
                let ret = if short == 1 {
                    i64::try_from(count / 2).unwrap()
                } else if short == 0 {
                    i64::try_from(count).unwrap()
                } else {
                    short
                };
                TraceEvent::build(
                    if write { "write" } else { "read" },
                    1,
                    vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(count)],
                    ret,
                )
            }),
        // mkdir: categorical mode coverage and EEXIST.
        (0u32..4, prop_oneof![Just(0i64), Just(-17)]).prop_map(|(mode, ret)| {
            TraceEvent::build(
                "mkdir",
                83,
                vec![
                    ArgValue::Path("/mnt/test/d".into()),
                    ArgValue::Mode([0o755, 0o700, 0o777, 0o1777][mode as usize]),
                ],
                ret,
            )
        }),
    ]
}

/// A stream: its events (pids re-based per stream below) and the batch
/// boundaries to feed them at.
fn stream_strategy() -> impl Strategy<Value = (Vec<TraceEvent>, Vec<usize>)> {
    (
        proptest::collection::vec(event_strategy(), 0..40),
        proptest::collection::vec(1usize..8, 1..10),
    )
}

/// Splits one stream's events at the given boundary sizes (cycled).
fn batches(events: &[TraceEvent], sizes: &[usize]) -> Vec<EventBatch> {
    let mut out = Vec::new();
    let mut rest = events;
    let mut i = 0;
    while !rest.is_empty() {
        let take = sizes[i % sizes.len()].min(rest.len());
        out.push(EventBatch::from_events(&rest[..take]));
        rest = &rest[take..];
        i += 1;
    }
    out
}

fn session(metrics: Option<Arc<PipelineMetrics>>) -> iocov::AnalysisSession {
    let mut builder = PipelineBuilder::new(TraceFilter::mount_point(MOUNT).unwrap())
        .mount(Some(MOUNT.to_owned()));
    if let Some(m) = metrics {
        builder = builder.metrics(m);
    }
    builder.build_session()
}

/// Runs the full comparison at one metrics setting. Returns the
/// reference bytes so the caller can also assert metrics-on and
/// metrics-off agree on the report.
fn check(
    streams: &[Vec<TraceEvent>],
    sizes: &[Vec<usize>],
    seed: u64,
    with_metrics: bool,
) -> Result<String, TestCaseError> {
    // Reference: one batch analysis of the concatenated streams.
    let ref_metrics = with_metrics.then(|| Arc::new(PipelineMetrics::default()));
    let mut reference = session(ref_metrics.clone());
    for events in streams {
        reference.feed_owned(events.clone());
    }
    let (ref_report, ref_failures) = reference.finish();
    prop_assert!(ref_failures.is_empty());
    let ref_bytes = serde_json::to_string_pretty(&ref_report).unwrap();

    // Interleaved: one resident session per stream, batches scheduled
    // in a seeded arbitrary order (per-stream order preserved, as the
    // serve socket protocol guarantees).
    let stream_metrics: Vec<Option<Arc<PipelineMetrics>>> = streams
        .iter()
        .map(|_| with_metrics.then(|| Arc::new(PipelineMetrics::default())))
        .collect();
    let mut sessions: Vec<_> = stream_metrics.iter().map(|m| session(m.clone())).collect();
    let mut queues: Vec<Vec<EventBatch>> = streams
        .iter()
        .zip(sizes)
        .map(|(events, sizes)| {
            let mut b = batches(events, sizes);
            b.reverse(); // pop() feeds front-first
            b
        })
        .collect();
    let mut step = 0u64;
    while queues.iter().any(|q| !q.is_empty()) {
        let live: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        let pick = live[usize::try_from(splitmix64(seed, step) % live.len() as u64).unwrap()];
        step += 1;
        let batch = queues[pick].pop().unwrap();
        sessions[pick].feed(batch);
    }

    // Finish and merge in a second seeded arbitrary "completion" order.
    let mut finished: Vec<AnalysisReport> = Vec::new();
    for s in sessions {
        let (report, failures) = s.finish();
        prop_assert!(failures.is_empty());
        finished.push(report);
    }
    let n = finished.len();
    for i in (1..n).rev() {
        let j = usize::try_from(splitmix64(seed ^ 0xa5a5, i as u64) % (i as u64 + 1)).unwrap();
        finished.swap(i, j);
    }
    let mut merged = AnalysisReport::default();
    for report in &finished {
        merged.merge(report);
    }
    prop_assert_eq!(
        serde_json::to_string_pretty(&merged).unwrap(),
        ref_bytes.clone()
    );

    if with_metrics {
        // The merged per-stream metrics must also match the shared
        // single-run counters byte-for-byte.
        let mut merged_metrics = MetricsSnapshot::default();
        for m in stream_metrics.into_iter().flatten() {
            merged_metrics.merge(&m.snapshot());
        }
        prop_assert_eq!(
            serde_json::to_string(&merged_metrics).unwrap(),
            serde_json::to_string(&ref_metrics.unwrap().snapshot()).unwrap()
        );
    }
    Ok(ref_bytes)
}

proptest! {
    /// Any interleaving of any batching of N pid-disjoint streams,
    /// merged in any completion order, is byte-identical to the batch
    /// analysis of their concatenation — with and without metrics, and
    /// the report bytes agree across the two metrics settings.
    #[test]
    fn interleaved_sessions_merge_byte_identical_to_batch(
        mut streams_and_sizes in proptest::collection::vec(stream_strategy(), 1..4),
        seed in any::<u64>(),
    ) {
        // Re-base pids so streams are disjoint, as per-process trace
        // streams are: stream k owns pids k*1000 .. k*1000+3.
        for (k, (events, _)) in streams_and_sizes.iter_mut().enumerate() {
            for (i, event) in events.iter_mut().enumerate() {
                event.pid = u32::try_from(k).unwrap() * 1000 + (i as u32 % 3);
            }
        }
        let streams: Vec<Vec<TraceEvent>> =
            streams_and_sizes.iter().map(|(e, _)| e.clone()).collect();
        let sizes: Vec<Vec<usize>> =
            streams_and_sizes.iter().map(|(_, s)| s.clone()).collect();
        let plain = check(&streams, &sizes, seed, false)?;
        let with_metrics = check(&streams, &sizes, seed, true)?;
        prop_assert_eq!(plain, with_metrics);
    }
}
