//! Property: the worker/coordinator metrics hand-off is lossless and
//! order-independent. A distributed run serializes each worker's
//! [`MetricsSnapshot`] (shard failures included) inside its checkpoint
//! frames; the coordinator deserializes and merges them in whatever
//! order supervisor threads finish. For the distributed report to be
//! byte-identical to the in-process run, merging deserialized snapshots
//! in *any* order must serialize to exactly the bytes of the in-process
//! merge — which these properties pin down over arbitrary counter
//! values, drop/partition tallies, and failure manifests.

use std::collections::BTreeMap;
use std::sync::Arc;

use iocov::{MetricsSnapshot, PipelineMetrics, ShardFailureRecord};
use proptest::prelude::*;

/// The drop-reason keys a real `PipelineMetrics::snapshot` always
/// carries (every known reason, zero or not).
const DROP_REASONS: [&str; 3] = ["wrong-mount", "irrelevant-fd", "unknown-syscall"];

/// The partition-family keys a real snapshot always carries.
const PARTITION_FAMILIES: [&str; 5] = [
    "input-flag",
    "input-numeric",
    "input-categorical",
    "output-ok",
    "output-err",
];

fn failure_strategy() -> impl Strategy<Value = ShardFailureRecord> {
    (0u32..5, any::<bool>(), "[ -~]{0,40}").prop_map(|(restarts, gave_up, last_error)| {
        ShardFailureRecord {
            shard: 0, // re-numbered below: one worker, one shard, one record
            restarts,
            gave_up,
            last_error,
        }
    })
}

fn keyed_map(keys: &'static [&'static str]) -> impl Strategy<Value = BTreeMap<String, u64>> {
    proptest::collection::vec(0u64..1_000_000, keys.len())
        .prop_map(move |values| keys.iter().map(|k| (*k).to_owned()).zip(values).collect())
}

/// A snapshot shaped exactly like one a worker cuts from its private
/// `PipelineMetrics`: every known drop/partition key present.
fn snapshot_strategy() -> impl Strategy<Value = MetricsSnapshot> {
    (
        (0u64..1_000_000, 0u64..1_000, 0u64..1_000_000, 0u64..1_000),
        keyed_map(&DROP_REASONS),
        keyed_map(&PARTITION_FAMILIES),
        (0u64..1_000_000_000, 0u64..1_000_000_000),
        proptest::option::of(failure_strategy()),
    )
        .prop_map(
            |(
                (events_read, parse_skipped, variant_merged, shard_restarts),
                filter_dropped,
                partition_records,
                (batched_events, allocs_estimated),
                failure,
            )| MetricsSnapshot {
                events_read,
                parse_skipped,
                filter_dropped,
                variant_merged,
                partition_records,
                batched_events,
                allocs_estimated,
                shard_restarts,
                shard_failures: failure.into_iter().collect(),
            },
        )
}

/// Gives each worker's failure record its own shard index, as the
/// coordinator does — at most one record per shard per run.
fn number_shards(snapshots: &mut [MetricsSnapshot]) {
    for (shard, snapshot) in snapshots.iter_mut().enumerate() {
        for failure in &mut snapshot.shard_failures {
            failure.shard = shard;
        }
    }
}

/// The wire trip a worker snapshot takes: serialized into the
/// checkpoint JSON by the worker, parsed back by the coordinator.
fn through_the_wire(snapshot: &MetricsSnapshot) -> MetricsSnapshot {
    let json = serde_json::to_string(snapshot).expect("serialize snapshot");
    serde_json::from_str(&json).expect("deserialize snapshot")
}

proptest! {
    /// Serialization round-trips exactly — the coordinator sees the
    /// same snapshot the worker cut.
    #[test]
    fn snapshot_survives_the_wire(snapshot in snapshot_strategy()) {
        prop_assert_eq!(&through_the_wire(&snapshot), &snapshot);
    }

    /// Merging wire-tripped snapshots in an arbitrary arrival order
    /// serializes byte-identically to the in-process, in-order merge —
    /// both as a plain `MetricsSnapshot` fold (the coordinator's merge
    /// loop) and through a shared `PipelineMetrics` (its `--metrics`
    /// rendering path).
    #[test]
    fn merge_of_wire_tripped_snapshots_is_order_independent(
        mut snapshots in proptest::collection::vec(snapshot_strategy(), 1..6),
        seed in any::<u64>(),
    ) {
        number_shards(&mut snapshots);

        // In-process reference: merge in shard order, no serialization.
        let mut reference = MetricsSnapshot::default();
        for snapshot in &snapshots {
            reference.merge(snapshot);
        }
        let reference_bytes = serde_json::to_string(&reference).unwrap();

        // Distributed path: each snapshot crosses the wire, then the
        // coordinator merges in completion order — a seeded shuffle.
        let mut arrived: Vec<MetricsSnapshot> =
            snapshots.iter().map(through_the_wire).collect();
        let n = arrived.len();
        for i in (1..n).rev() {
            let j = usize::try_from(iocov::splitmix64(seed, i as u64) % (i as u64 + 1)).unwrap();
            arrived.swap(i, j);
        }
        let mut merged = MetricsSnapshot::default();
        for snapshot in &arrived {
            merged.merge(snapshot);
        }
        prop_assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            reference_bytes.clone()
        );

        // The shared-PipelineMetrics leg mirrors run_coordinator's
        // `--metrics` rendering path: each arriving snapshot is absorbed
        // (failure manifest included), and `snapshot()` re-sorts the
        // manifest by shard so arrival order cannot leak into the bytes.
        let live = Arc::new(PipelineMetrics::default());
        for snapshot in &arrived {
            live.absorb(snapshot);
        }
        prop_assert_eq!(serde_json::to_string(&live.snapshot()).unwrap(), reference_bytes);
    }
}
