//! Multi-process scale-out: a coordinator that shards one analysis
//! across `N` worker *processes* and merges their partial checkpoints.
//!
//! The thread pool in [`parallel`](crate::parallel) already proves the
//! core invariant: pid-sharded [`StreamingAnalyzer`]s over the same
//! trace merge into a report byte-identical to a serial run. This
//! module promotes that invariant across a process boundary, where a
//! worker can be SIGKILLed, stall, or hand back corrupt bytes — the
//! failure modes of a real test fleet.
//!
//! # Protocol
//!
//! Coordinator and worker speak length-prefixed, FNV-1a-64-checksummed
//! frames over the worker's stdin/stdout:
//!
//! ```text
//! offset  size  field
//! 0       1     frame type: b'S' spec, b'H' heartbeat,
//!               b'C' checkpoint, b'D' done
//!               (b'L' hello and b'T' data belong to `iocov serve`,
//!               which reuses this framing over unix sockets)
//! 1       8     payload length, u64 LE
//! 9       n     payload
//! 9+n     8     FNV-1a 64 checksum of the payload, u64 LE
//! ```
//!
//! The coordinator sends exactly one spec frame ([`WorkerSpec`] as
//! JSON) and closes the worker's stdin. The worker scans the *whole*
//! input and keeps only `pid % workers == shard` — identical to a pool
//! shard, so descriptor provenance chains survive no matter where the
//! trace interleaves pids. It emits a heartbeat per source batch, a
//! checkpoint frame (a complete `.iockpt` image) every
//! [`WorkerSpec::emit_every`] source events, and a final done frame
//! carrying its finished partial checkpoint.
//!
//! # Recovery state machine
//!
//! Supervision reuses [`SupervisorPolicy`] at process granularity. Per
//! worker, the coordinator runs *attempts*; an attempt ends in one of:
//!
//! * **done** — done frame verified and the process exited 0;
//! * **died** — the process exited nonzero, was killed by a signal, or
//!   closed stdout without a done frame (declared
//!   [`ShardError::Panicked`]);
//! * **stalled** — no frame for [`SupervisorPolicy::shard_timeout`]
//!   (declared [`ShardError::Stalled`], process killed);
//! * **corrupt** — a frame failed its checksum or carried an
//!   unparseable checkpoint (declared `Panicked`, process killed).
//!
//! A failed attempt re-drives the worker's range from its last
//! *collected* checkpoint after a seeded, jittered exponential backoff
//! ([`SupervisorPolicy::jittered_backoff`]); an exhausted restart
//! budget degrades to partial-report-plus-[`ShardFailureRecord`], and
//! the worker's last collected checkpoint still contributes everything
//! it covered. The coordinator never panics or hangs on worker
//! failure, and always exits 0 — exactly the thread-pool semantics.
//!
//! Injected fault budgets ([`WorkerFaults`]) are decremented by the
//! *coordinator* when it observes the matching failure class, so a
//! restarted worker is re-armed with one fewer charge — reproducing
//! `PanicSchedule`'s self-disarming semantics across process restarts
//! and guaranteeing termination within the restart budget.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

use iocov_trace::{
    open_source, ErrorPolicy, EventBatch, EventView, ReadOptions, SkippedLine, SourceFormat,
    SourceOptions, SourcePos,
};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{encode_checkpoint, fnv1a64, parse_checkpoint, CheckpointDoc};
use crate::coverage::AnalysisReport;
use crate::filter::TraceFilter;
use crate::metrics::{MetricsSnapshot, PipelineMetrics, ShardFailureRecord};
use crate::parallel::{splitmix64, ShardError, SupervisorPolicy};
use crate::pipeline::DEFAULT_CHUNK;
use crate::session::AnalysisSession;

/// Frame type: the coordinator's one [`WorkerSpec`] frame.
pub const FRAME_SPEC: u8 = b'S';
/// Frame type: worker liveness signal (empty payload), one per source
/// batch.
pub const FRAME_HEARTBEAT: u8 = b'H';
/// Frame type: an intermediate `.iockpt` image — the worker's resume
/// point if this incarnation dies.
pub const FRAME_CHECKPOINT: u8 = b'C';
/// Frame type: the final `.iockpt` image; the worker exits 0 after it.
pub const FRAME_DONE: u8 = b'D';
/// Frame type: a serve-stream greeting (`iocov serve` reuses this
/// protocol over unix sockets; see [`serve`](crate::serve)). Payload is
/// a JSON stream header.
pub const FRAME_HELLO: u8 = b'L';
/// Frame type: a chunk of raw trace bytes on a serve stream.
pub const FRAME_DATA: u8 = b'T';

/// Ceiling on a frame's declared payload length. Frames come from a
/// child process — untrusted by policy — so a corrupt length must fail
/// fast instead of provoking a gigantic allocation.
pub const MAX_FRAME_LEN: u64 = 1 << 30;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Reading the stream failed (includes mid-frame EOF).
    Io(io::Error),
    /// The type byte is not one of the known frame types.
    BadType(u8),
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized(u64),
    /// The payload checksum does not verify.
    ChecksumMismatch {
        /// Checksum carried by the frame.
        expected: u64,
        /// Checksum of the payload as read.
        found: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::BadType(t) => write!(f, "unknown frame type {t:#04x}"),
            FrameError::Oversized(len) => {
                write!(f, "frame payload of {len} bytes exceeds {MAX_FRAME_LEN}")
            }
            FrameError::ChecksumMismatch { expected, found } => write!(
                f,
                "frame checksum mismatch: stored {expected:#018x}, computed {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// One decoded protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// One of the `FRAME_*` type bytes.
    pub kind: u8,
    /// The verified payload.
    pub payload: Vec<u8>,
}

/// Writes one frame with the payload's true checksum.
///
/// # Errors
///
/// Underlying stream errors.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, kind: u8, payload: &[u8]) -> io::Result<()> {
    write_frame_with_checksum(w, kind, payload, fnv1a64(payload))
}

/// Writes one frame carrying an explicit checksum. The checksum is a
/// parameter so fault injection can corrupt the payload *after* the
/// checksum was computed — producing exactly the checksum-failing frame
/// the coordinator's verify path must catch.
///
/// # Errors
///
/// Underlying stream errors.
pub fn write_frame_with_checksum<W: Write + ?Sized>(
    w: &mut W,
    kind: u8,
    payload: &[u8],
    checksum: u64,
) -> io::Result<()> {
    w.write_all(&[kind])?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()
}

/// Reads and verifies one frame. `Ok(None)` is a clean end of stream
/// (EOF exactly at a frame boundary); EOF anywhere inside a frame is
/// [`FrameError::Io`].
///
/// # Errors
///
/// [`FrameError`] describing what failed: I/O, an unknown type byte, an
/// oversized length, or a checksum mismatch.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
    let mut kind = [0u8; 1];
    loop {
        match r.read(&mut kind) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let kind = kind[0];
    if !matches!(
        kind,
        FRAME_SPEC | FRAME_HEARTBEAT | FRAME_CHECKPOINT | FRAME_DONE | FRAME_HELLO | FRAME_DATA
    ) {
        return Err(FrameError::BadType(kind));
    }
    let mut len = [0u8; 8];
    r.read_exact(&mut len).map_err(FrameError::Io)?;
    let len = u64::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; usize::try_from(len).map_err(|_| FrameError::Oversized(len))?];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    let mut stored = [0u8; 8];
    r.read_exact(&mut stored).map_err(FrameError::Io)?;
    let stored = u64::from_le_bytes(stored);
    let computed = fnv1a64(&payload);
    if stored != computed {
        return Err(FrameError::ChecksumMismatch {
            expected: stored,
            found: computed,
        });
    }
    Ok(Some(Frame { kind, payload }))
}

/// Deterministic worker-kill schedule: raise `signal` at source-event
/// ordinal `tick`, `times` times across incarnations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillSpec {
    /// Source-event ordinal (per incarnation) at which to die.
    pub tick: u64,
    /// Signal name (`KILL`, `TERM`, `ABRT`) or number; `None` aborts.
    pub signal: Option<String>,
    /// Charges left; the coordinator decrements on each observed death.
    pub times: u32,
}

/// Deterministic worker-stall schedule: sleep `millis` at `tick`,
/// freezing heartbeats so the coordinator's watchdog fires.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallSpec {
    /// Source-event ordinal (per incarnation) at which to freeze.
    pub tick: u64,
    /// How long to sleep.
    pub millis: u64,
    /// Charges left; the coordinator decrements on each observed stall.
    pub times: u32,
}

/// Deterministic corrupt-frame schedule: flip payload bytes of the
/// worker's `frame`-th checkpoint/done frame *after* its checksum was
/// computed, so the coordinator's verification fails.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorruptSpec {
    /// Checkpoint/done frame ordinal (per incarnation) to corrupt.
    pub frame: u64,
    /// Charges left; the coordinator decrements on each corrupt frame.
    pub times: u32,
}

/// Process-level fault schedules carried inside a [`WorkerSpec`].
/// Budgets live here — in coordinator-owned state — because a restarted
/// process would otherwise re-read a fully-armed schedule and kill
/// itself forever.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerFaults {
    /// Kill schedule, if armed.
    pub kill: Option<KillSpec>,
    /// Stall schedule, if armed.
    pub stall: Option<StallSpec>,
    /// Corrupt-frame schedule, if armed.
    pub corrupt: Option<CorruptSpec>,
}

impl WorkerFaults {
    /// Whether any schedule still has charges.
    #[must_use]
    pub fn armed(&self) -> bool {
        self.kill.as_ref().is_some_and(|k| k.times > 0)
            || self.stall.as_ref().is_some_and(|s| s.times > 0)
            || self.corrupt.as_ref().is_some_and(|c| c.times > 0)
    }
}

/// Everything a worker process needs, sent as the one spec frame.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerSpec {
    /// Path of the trace file to scan.
    pub trace: String,
    /// Forced container format; `None` sniffs.
    pub format: Option<SourceFormat>,
    /// Mount-point filter (`None` = keep-all).
    pub mount: Option<String>,
    /// Skip malformed lines instead of aborting.
    pub lossy: bool,
    /// Lossy skip budget.
    pub max_errors: Option<usize>,
    /// This worker's shard index: it keeps `pid % workers == shard`.
    pub shard: usize,
    /// Total worker count.
    pub workers: usize,
    /// Emit a checkpoint frame every this many source events (at batch
    /// boundaries); `0` disables intermediate checkpoints.
    pub emit_every: u64,
    /// Whether this worker accounts trace-wide counters (parse skips)
    /// that every worker observes identically — exactly one worker per
    /// run is primary, so merged metrics match a single-process run.
    pub primary: bool,
    /// Resume point: the worker's last collected checkpoint.
    pub resume: Option<CheckpointDoc>,
    /// Injected fault schedules.
    #[serde(default)]
    pub faults: WorkerFaults,
}

/// A per-event-ordinal hook — kill and stall schedules fire here.
pub type TickHook = Arc<dyn Fn(u64) + Send + Sync>;

/// A frame-mutation hook, called with the checkpoint-frame ordinal and
/// the payload bytes.
pub type CorruptFrameHook = Arc<dyn Fn(u64, &mut [u8]) + Send + Sync>;

/// Fault-injection hooks a worker runtime threads into
/// [`run_worker`]. Built by the binary from [`WorkerSpec::faults`]
/// (via `iocov_faults::proc`), kept as closures here so the analysis
/// core stays independent of the fault crate.
#[derive(Clone, Default)]
pub struct WorkerHooks {
    /// Called at every source-event ordinal of the current incarnation,
    /// *before* the event is processed.
    pub tick: Option<TickHook>,
    /// May mutate an outgoing checkpoint/done frame payload; the
    /// checksum is computed first, so any mutation yields a
    /// checksum-failing frame.
    pub corrupt_frame: Option<CorruptFrameHook>,
}

impl fmt::Debug for WorkerHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerHooks")
            .field("tick", &self.tick.as_ref().map(|_| "…"))
            .field("corrupt_frame", &self.corrupt_frame.as_ref().map(|_| "…"))
            .finish()
    }
}

/// Why a worker run failed. The worker exits nonzero on any of these;
/// classification happens coordinator-side from the exit status.
#[derive(Debug)]
pub enum WorkerError {
    /// Opening or reading the trace failed.
    Source(String),
    /// The mount filter could not be built.
    Filter(String),
    /// Writing a frame to stdout failed.
    Io(io::Error),
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Source(msg) | WorkerError::Filter(msg) => f.write_str(msg),
            WorkerError::Io(e) => write!(f, "write frame: {e}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Runs one worker: scans the spec's trace, analyzes this shard's
/// residue class, and streams heartbeat/checkpoint/done frames to
/// `out` (the process's stdout).
///
/// There is deliberately **no** `catch_unwind` here: an internal panic
/// tears the process down with a nonzero exit, which is precisely the
/// failure the process-level supervisor exists to absorb — supervision
/// stays honest because the worker cannot self-heal.
///
/// # Errors
///
/// [`WorkerError`] on source, filter, or stdout failure; the binary
/// converts any of these into a nonzero exit.
pub fn run_worker(
    spec: &WorkerSpec,
    hooks: &WorkerHooks,
    out: &mut dyn Write,
) -> Result<(), WorkerError> {
    let filter = match &spec.mount {
        Some(mount) => {
            TraceFilter::mount_point(mount).map_err(|e| WorkerError::Filter(e.to_string()))?
        }
        None => TraceFilter::keep_all(),
    };
    let resume = spec.resume.as_ref().map(|doc| SourcePos {
        format: doc.format,
        state: doc.cursor.clone(),
    });
    let mut source = open_source(
        &spec.trace,
        SourceOptions {
            read: ReadOptions {
                max_errors: spec.max_errors,
                on_error: if spec.lossy {
                    ErrorPolicy::Skip
                } else {
                    ErrorPolicy::Abort
                },
            },
            format: spec.format,
            resume,
            wrap: None,
            decode_jobs: 1,
        },
    )
    .map_err(|e| WorkerError::Source(e.to_string()))?;

    // The worker is a *direct* (unsupervised) session: the resume doc
    // seeds its cumulative report, pid states, and metrics counters, and
    // an internal panic propagates straight to process death.
    let metrics = Arc::new(PipelineMetrics::default());
    let mut session = AnalysisSession::direct(
        filter,
        Some(Arc::clone(&metrics)),
        spec.mount.clone(),
        None,
        spec.resume.as_ref(),
    );
    // A resumed ledger is restored into the cursor; only *growth* is
    // counted, mirroring the single-process pipeline driver.
    let mut skips_seen = source.skip_ledger().len();
    let n = spec.workers.max(1);
    let mut tick = 0u64;
    let mut since_emit = 0u64;
    let mut frames = 0u64;
    loop {
        let batch = source
            .next_batch(DEFAULT_CHUNK)
            .map_err(|e| WorkerError::Source(e.to_string()))?;
        if spec.primary {
            let skips = source.skip_ledger().len();
            if skips > skips_seen {
                metrics.add_parse_skipped((skips - skips_seen) as u64);
                skips_seen = skips;
            }
        }
        if batch.is_empty() {
            break;
        }
        write_frame(out, FRAME_HEARTBEAT, &[]).map_err(WorkerError::Io)?;
        // Keep only this shard's residue class, as a cheap row copy —
        // the session then sees exactly what a pool shard would.
        let mut kept = EventBatch::new();
        for (row, event) in batch.iter().enumerate() {
            if let Some(hook) = &hooks.tick {
                hook(tick);
            }
            tick += 1;
            if event.pid() as usize % n == spec.shard {
                kept.append_row(&batch, row);
            }
        }
        if !kept.is_empty() {
            session.feed(kept);
        }
        since_emit += batch.len() as u64;
        if spec.emit_every > 0 && since_emit >= spec.emit_every {
            since_emit = 0;
            let image = cut_image(&mut session, &source.position())?;
            emit_frame(out, FRAME_CHECKPOINT, image, hooks, &mut frames)?;
        }
    }
    let image = cut_image(&mut session, &source.position())?;
    emit_frame(out, FRAME_DONE, image, hooks, &mut frames)?;
    Ok(())
}

/// Encodes the worker session's current cut as a complete `.iockpt`
/// image — resume-base state merged with everything this incarnation
/// analyzed — at the source's batch-boundary position.
fn cut_image(session: &mut AnalysisSession, pos: &SourcePos) -> Result<Vec<u8>, WorkerError> {
    encode_checkpoint(&session.checkpoint_doc(pos)).map_err(WorkerError::Io)
}

/// Writes one checkpoint-bearing frame, applying the corrupt-frame hook
/// between checksum computation and transmission.
fn emit_frame(
    out: &mut dyn Write,
    kind: u8,
    mut payload: Vec<u8>,
    hooks: &WorkerHooks,
    frames: &mut u64,
) -> Result<(), WorkerError> {
    let checksum = fnv1a64(&payload);
    if let Some(corrupt) = &hooks.corrupt_frame {
        corrupt(*frames, &mut payload);
    }
    *frames += 1;
    write_frame_with_checksum(out, kind, &payload, checksum).map_err(WorkerError::Io)
}

/// How the coordinator launches and supervises workers.
#[derive(Debug, Clone)]
pub struct DistributeConfig {
    /// Worker executable (normally `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments selecting worker mode (e.g. `["worker"]`).
    pub args: Vec<String>,
    /// Restart budget, backoff curve, and heartbeat watchdog — the
    /// thread-pool policy, reused at process granularity.
    pub policy: SupervisorPolicy,
    /// Seed for restart-backoff jitter; per-worker streams are derived
    /// with [`splitmix64`], so simultaneous deaths fan out
    /// deterministically.
    pub backoff_seed: u64,
}

/// The merged result of a distributed run.
#[derive(Debug, Clone, Default)]
pub struct DistributeRun {
    /// Reports of every worker's last collected checkpoint, merged in
    /// shard order. Complete when `failures` has no `gave_up` entry.
    pub report: AnalysisReport,
    /// Process-level failure manifest, one record per worker that
    /// needed restarting — same semantics as the thread pool's.
    pub failures: Vec<ShardFailureRecord>,
    /// The primary worker's lossy skip ledger (every worker observes
    /// the same skipped lines).
    pub skipped: Vec<SkippedLine>,
    /// Worker metric snapshots merged in shard order (restart counts
    /// and the failure manifest are recorded into the shared
    /// [`PipelineMetrics`] passed to [`run_coordinator`], not here).
    pub metrics: MetricsSnapshot,
}

/// How one worker attempt failed, classified for budget accounting.
enum AttemptFailure {
    /// The process died: nonzero exit, signal, or EOF without done.
    Died(String),
    /// The watchdog saw no frame for this long.
    Stalled(Duration),
    /// A frame failed verification.
    Corrupt(String),
}

impl AttemptFailure {
    /// The equivalent thread-supervisor error, for manifest messages.
    fn to_shard_error(&self) -> ShardError {
        match self {
            AttemptFailure::Died(msg) | AttemptFailure::Corrupt(msg) => {
                ShardError::Panicked(msg.clone())
            }
            AttemptFailure::Stalled(waited) => ShardError::Stalled { waited: *waited },
        }
    }
}

/// One worker's final outcome as the coordinator sees it.
struct WorkerOutcome {
    primary: bool,
    /// Final checkpoint (completed) or last collected one (gave up).
    doc: Option<CheckpointDoc>,
    failure: Option<ShardFailureRecord>,
}

/// Runs a distributed analysis: spawns one supervised worker process
/// per spec, collects their checkpoint frames, and merges the partial
/// reports in shard order.
///
/// Infallible by design: every failure mode — spawn errors, worker
/// deaths, stalls, corrupt frames, exhausted budgets — degrades into
/// the returned manifest, mirroring the thread pool. `metrics`, when
/// given, receives restart counts, the failure manifest, and the merged
/// worker counters (so a `--metrics` rendering matches the
/// single-process path byte for byte on a fault-free run).
#[must_use]
pub fn run_coordinator(
    cfg: &DistributeConfig,
    specs: Vec<WorkerSpec>,
    metrics: Option<&Arc<PipelineMetrics>>,
) -> DistributeRun {
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .into_iter()
            .map(|spec| scope.spawn(move || supervise_worker(cfg, spec, metrics)))
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(shard, handle)| {
                handle.join().unwrap_or_else(|payload| WorkerOutcome {
                    primary: false,
                    doc: None,
                    failure: Some(ShardFailureRecord {
                        shard,
                        restarts: 0,
                        gave_up: true,
                        last_error: crate::parallel::panic_message(payload.as_ref()),
                    }),
                })
            })
            .collect()
    });
    let mut run = DistributeRun::default();
    for outcome in outcomes {
        if let Some(doc) = &outcome.doc {
            run.report.merge(&doc.report);
            run.metrics.merge(&doc.metrics);
            if outcome.primary {
                run.skipped = doc.cursor.skipped.clone();
            }
        }
        if let Some(failure) = outcome.failure {
            run.failures.push(failure);
        }
    }
    run.failures.sort_by_key(|f| f.shard);
    if let Some(metrics) = metrics {
        metrics.absorb(&run.metrics);
        for failure in &run.failures {
            metrics.record_shard_failure(failure.clone());
        }
    }
    run
}

/// Supervises one worker across restarts: attempt, classify the
/// failure, consume the matching injected-fault charge, back off with
/// seeded jitter, and respawn from the last collected checkpoint —
/// until done or the budget runs out.
fn supervise_worker(
    cfg: &DistributeConfig,
    mut spec: WorkerSpec,
    metrics: Option<&Arc<PipelineMetrics>>,
) -> WorkerOutcome {
    let shard = spec.shard;
    let primary = spec.primary;
    let mut restarts = 0u32;
    let mut last_error = String::new();
    let mut last_doc: Option<CheckpointDoc> = None;
    loop {
        match run_attempt(cfg, &spec) {
            Ok(doc) => {
                return WorkerOutcome {
                    primary,
                    doc: Some(doc),
                    failure: (restarts > 0).then(|| ShardFailureRecord {
                        shard,
                        restarts,
                        gave_up: false,
                        last_error: last_error.clone(),
                    }),
                };
            }
            Err(error) => {
                let (failure, collected) = *error;
                if let Some(doc) = collected {
                    last_doc = Some(doc);
                }
                consume_fault_budget(&mut spec.faults, &failure);
                last_error = failure.to_shard_error().to_string();
                if restarts >= cfg.policy.max_restarts {
                    return WorkerOutcome {
                        primary,
                        doc: last_doc,
                        failure: Some(ShardFailureRecord {
                            shard,
                            restarts,
                            gave_up: true,
                            last_error,
                        }),
                    };
                }
                restarts += 1;
                if let Some(metrics) = metrics {
                    metrics.record_shard_restart();
                }
                std::thread::sleep(
                    cfg.policy
                        .jittered_backoff(restarts, splitmix64(cfg.backoff_seed, shard as u64)),
                );
                spec.resume = last_doc.clone();
            }
        }
    }
}

/// Decrements the injected-fault charge matching an observed failure
/// class, so the next incarnation's spec carries one fewer — the
/// cross-process equivalent of `PanicSchedule` disarming itself.
fn consume_fault_budget(faults: &mut WorkerFaults, failure: &AttemptFailure) {
    match failure {
        AttemptFailure::Died(_) => {
            if let Some(kill) = &mut faults.kill {
                kill.times = kill.times.saturating_sub(1);
            }
        }
        AttemptFailure::Stalled(_) => {
            if let Some(stall) = &mut faults.stall {
                stall.times = stall.times.saturating_sub(1);
            }
        }
        AttemptFailure::Corrupt(_) => {
            if let Some(corrupt) = &mut faults.corrupt {
                corrupt.times = corrupt.times.saturating_sub(1);
            }
        }
    }
}

/// Kills and reaps a child, ignoring races with its own exit.
fn put_down(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// Renders a reaped exit status as a manifest-worthy description.
fn exit_description(status: io::Result<ExitStatus>) -> String {
    match status {
        Ok(s) if s.success() => "worker exited before completing its range".into(),
        Ok(s) => {
            #[cfg(unix)]
            {
                use std::os::unix::process::ExitStatusExt;
                if let Some(signal) = s.signal() {
                    return format!("worker killed by signal {signal}");
                }
            }
            match s.code() {
                Some(code) => format!("worker exited with status {code}"),
                None => "worker exited abnormally".into(),
            }
        }
        Err(e) => format!("worker unwaitable: {e}"),
    }
}

/// A failed attempt: why, plus the newest checkpoint collected during
/// it (boxed — the error path is cold and the doc is large).
type AttemptError = Box<(AttemptFailure, Option<CheckpointDoc>)>;

fn attempt_err(failure: AttemptFailure, collected: Option<CheckpointDoc>) -> AttemptError {
    Box::new((failure, collected))
}

/// Runs one worker incarnation to completion or failure. On failure,
/// also returns the newest checkpoint collected *during this attempt*
/// (if any) so the supervisor can resume past it.
fn run_attempt(cfg: &DistributeConfig, spec: &WorkerSpec) -> Result<CheckpointDoc, AttemptError> {
    let mut collected: Option<CheckpointDoc> = None;
    let spec_json = match serde_json::to_string(spec) {
        Ok(json) => json.into_bytes(),
        Err(e) => {
            return Err(attempt_err(
                AttemptFailure::Died(format!("encode worker spec: {e}")),
                None,
            ))
        }
    };
    let mut child = match Command::new(&cfg.program)
        .args(&cfg.args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => {
            return Err(attempt_err(
                AttemptFailure::Died(format!("spawn worker: {e}")),
                None,
            ))
        }
    };
    {
        // One spec frame, then EOF: the worker needs nothing further.
        let mut stdin = child.stdin.take().expect("stdin was piped");
        if let Err(e) = write_frame(&mut stdin, FRAME_SPEC, &spec_json) {
            put_down(&mut child);
            return Err(attempt_err(
                AttemptFailure::Died(format!("send worker spec: {e}")),
                None,
            ));
        }
    }
    let stdout = child.stdout.take().expect("stdout was piped");
    // Frames are parsed on a dedicated thread so the supervisor can
    // multiplex "frame arrived" against the stall watchdog with a plain
    // recv_timeout. The channel is bounded: a worker cannot outrun the
    // coordinator by more than a few frames.
    let (tx, rx) = sync_channel::<Result<Frame, FrameError>>(16);
    let reader = std::thread::spawn(move || {
        let mut stdout = io::BufReader::new(stdout);
        loop {
            match read_frame(&mut stdout) {
                Ok(Some(frame)) => {
                    if tx.send(Ok(frame)).is_err() {
                        return;
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        }
    });
    let outcome = loop {
        let message = match cfg.policy.shard_timeout {
            Some(limit) => match rx.recv_timeout(limit) {
                Ok(message) => Some(message),
                Err(RecvTimeoutError::Timeout) => {
                    put_down(&mut child);
                    break Err(attempt_err(
                        AttemptFailure::Stalled(limit),
                        collected.take(),
                    ));
                }
                Err(RecvTimeoutError::Disconnected) => None,
            },
            None => rx.recv().ok(),
        };
        match message {
            // Stream closed without a done frame: the worker died.
            None => {
                let status = child.wait();
                break Err(attempt_err(
                    AttemptFailure::Died(exit_description(status)),
                    collected.take(),
                ));
            }
            Some(Err(e)) => {
                put_down(&mut child);
                break Err(attempt_err(
                    AttemptFailure::Corrupt(e.to_string()),
                    collected.take(),
                ));
            }
            Some(Ok(frame)) => match frame.kind {
                FRAME_HEARTBEAT => {}
                FRAME_CHECKPOINT => match parse_checkpoint(&frame.payload) {
                    Ok(doc) => collected = Some(doc),
                    Err(e) => {
                        put_down(&mut child);
                        break Err(attempt_err(
                            AttemptFailure::Corrupt(format!("corrupt checkpoint frame: {e}")),
                            collected.take(),
                        ));
                    }
                },
                FRAME_DONE => match parse_checkpoint(&frame.payload) {
                    Ok(doc) => {
                        // A verified done frame is progress even if the
                        // process then fails to exit cleanly.
                        collected = Some(doc.clone());
                        let status = child.wait();
                        match status {
                            Ok(s) if s.success() => break Ok(doc),
                            status => {
                                break Err(attempt_err(
                                    AttemptFailure::Died(exit_description(status)),
                                    collected.take(),
                                ))
                            }
                        }
                    }
                    Err(e) => {
                        put_down(&mut child);
                        break Err(attempt_err(
                            AttemptFailure::Corrupt(format!("corrupt done frame: {e}")),
                            collected.take(),
                        ));
                    }
                },
                other => {
                    put_down(&mut child);
                    break Err(attempt_err(
                        AttemptFailure::Corrupt(format!("unexpected frame type {other:#04x}")),
                        collected.take(),
                    ));
                }
            },
        }
    };
    let _ = reader.join();
    outcome
}

/// Builds the per-worker specs for one distributed run: shard `w` of
/// `workers`, with shard 0 as the primary accountant. `faults` attaches
/// the injected schedules to their target shard only.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn worker_specs(
    trace: &str,
    format: Option<SourceFormat>,
    mount: Option<&str>,
    lossy: bool,
    max_errors: Option<usize>,
    workers: usize,
    emit_every: u64,
    faults: &BTreeMap<usize, WorkerFaults>,
) -> Vec<WorkerSpec> {
    let workers = workers.max(1);
    (0..workers)
        .map(|w| WorkerSpec {
            trace: trace.to_owned(),
            format,
            mount: mount.map(str::to_owned),
            lossy,
            max_errors,
            shard: w,
            workers,
            emit_every,
            primary: w == 0,
            resume: None,
            faults: faults.get(&w).cloned().unwrap_or_default(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_CHECKPOINT, b"hello frames").unwrap();
        write_frame(&mut buf, FRAME_HEARTBEAT, &[]).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let first = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(first.kind, FRAME_CHECKPOINT);
        assert_eq!(first.payload, b"hello frames");
        let second = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(second.kind, FRAME_HEARTBEAT);
        assert!(second.payload.is_empty());
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn frame_corruption_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_DONE, b"payload bytes").unwrap();

        // Flip a payload byte → checksum mismatch.
        let mut torn = buf.clone();
        torn[12] ^= 0x40;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(torn)),
            Err(FrameError::ChecksumMismatch { .. })
        ));

        // Unknown type byte.
        let mut bad_type = buf.clone();
        bad_type[0] = b'Z';
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bad_type)),
            Err(FrameError::BadType(b'Z'))
        ));

        // Truncation mid-frame is an I/O error, not a clean EOF.
        let torn_tail = &buf[..buf.len() - 3];
        assert!(matches!(
            read_frame(&mut io::Cursor::new(torn_tail)),
            Err(FrameError::Io(_))
        ));

        // Oversized declared length fails before allocating.
        let mut oversized = buf.clone();
        oversized[1..9].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut io::Cursor::new(oversized)),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn corrupted_emit_keeps_pristine_checksum() {
        // The corrupt-frame hook mutates the payload after the checksum
        // is computed, so the reader must reject the frame.
        let hooks = WorkerHooks {
            tick: None,
            corrupt_frame: Some(Arc::new(|_, payload: &mut [u8]| {
                payload[0] ^= 0xff;
            })),
        };
        let mut buf = Vec::new();
        let mut frames = 0;
        emit_frame(
            &mut buf,
            FRAME_CHECKPOINT,
            b"checkpoint image".to_vec(),
            &hooks,
            &mut frames,
        )
        .unwrap();
        assert_eq!(frames, 1);
        assert!(matches!(
            read_frame(&mut io::Cursor::new(buf)),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn fault_budget_consumption_matches_failure_class() {
        let mut faults = WorkerFaults {
            kill: Some(KillSpec {
                tick: 5,
                signal: None,
                times: 2,
            }),
            stall: Some(StallSpec {
                tick: 3,
                millis: 100,
                times: 1,
            }),
            corrupt: Some(CorruptSpec { frame: 0, times: 1 }),
        };
        consume_fault_budget(&mut faults, &AttemptFailure::Died("killed".into()));
        assert_eq!(faults.kill.as_ref().unwrap().times, 1);
        assert_eq!(faults.stall.as_ref().unwrap().times, 1);
        consume_fault_budget(
            &mut faults,
            &AttemptFailure::Stalled(Duration::from_secs(1)),
        );
        assert_eq!(faults.stall.as_ref().unwrap().times, 0);
        consume_fault_budget(&mut faults, &AttemptFailure::Corrupt("bad frame".into()));
        assert_eq!(faults.corrupt.as_ref().unwrap().times, 0);
        consume_fault_budget(&mut faults, &AttemptFailure::Corrupt("bad frame".into()));
        assert_eq!(faults.corrupt.as_ref().unwrap().times, 0, "saturates at 0");
        assert!(faults.armed(), "one kill charge left");
        consume_fault_budget(&mut faults, &AttemptFailure::Died("killed again".into()));
        assert!(!faults.armed());
    }

    #[test]
    fn worker_spec_round_trips_through_json() {
        let specs = worker_specs(
            "/tmp/trace.jsonl",
            Some(SourceFormat::Iotb),
            Some("/mnt/test"),
            true,
            Some(10),
            3,
            4096,
            &BTreeMap::from([(
                1,
                WorkerFaults {
                    kill: Some(KillSpec {
                        tick: 7,
                        signal: Some("KILL".into()),
                        times: 1,
                    }),
                    stall: None,
                    corrupt: None,
                },
            )]),
        );
        assert_eq!(specs.len(), 3);
        assert!(specs[0].primary && !specs[1].primary);
        assert!(specs[1].faults.armed() && !specs[0].faults.armed());
        for spec in &specs {
            let json = serde_json::to_string(spec).unwrap();
            let back: WorkerSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(*spec, back);
        }
    }
}
