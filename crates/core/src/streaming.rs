//! Streaming analysis: bounded-memory coverage over long traces.
//!
//! A paper-scale suite produces millions of events; holding the whole
//! trace before analysis costs gigabytes. [`StreamingAnalyzer`] consumes
//! events incrementally — crucially keeping the trace filter's
//! descriptor-provenance state *across* chunks, so a descriptor opened
//! in one chunk is still attributed correctly when used in the next
//! (a plain per-chunk [`Analyzer`](crate::Analyzer) run would lose it).

use std::collections::HashMap;
use std::sync::Arc;

use iocov_trace::{EventView, StrInterner, TraceEvent};

use crate::coverage::{AnalysisReport, ReportBuilder};
use crate::filter::TraceFilter;
use crate::metrics::PipelineMetrics;
use crate::relevance::{self, PidState};

/// An incremental coverage analyzer.
///
/// ```
/// use iocov::{StreamingAnalyzer, TraceFilter};
/// use iocov_trace::{ArgValue, TraceEvent};
///
/// let mut analyzer = StreamingAnalyzer::new(TraceFilter::mount_point("/mnt/test").unwrap());
/// analyzer.push(&TraceEvent::build(
///     "open",
///     2,
///     vec![ArgValue::Path("/mnt/test/f".into()), ArgValue::Flags(0), ArgValue::Mode(0)],
///     3,
/// ));
/// // …push millions more, then:
/// let report = analyzer.finish();
/// assert_eq!(report.total_calls(), 1);
/// ```
#[derive(Debug)]
pub struct StreamingAnalyzer {
    filter: TraceFilter,
    states: HashMap<u32, PidState>,
    builder: ReportBuilder,
    metrics: Option<std::sync::Arc<PipelineMetrics>>,
}

impl StreamingAnalyzer {
    /// Creates a streaming analyzer with a filter.
    #[must_use]
    pub fn new(filter: TraceFilter) -> Self {
        StreamingAnalyzer::with_interner(filter, Arc::new(StrInterner::new()))
    }

    /// A streaming analyzer accumulating through a shared string
    /// interner — shards of a parallel run share one instance, so every
    /// shard resolves the same symbol table.
    #[must_use]
    pub fn with_interner(filter: TraceFilter, interner: Arc<StrInterner>) -> Self {
        StreamingAnalyzer {
            filter,
            states: HashMap::new(),
            builder: ReportBuilder::new(interner),
            metrics: None,
        }
    }

    /// An unfiltered streaming analyzer.
    #[must_use]
    pub fn unfiltered() -> Self {
        StreamingAnalyzer::new(TraceFilter::keep_all())
    }

    /// Attaches shared pipeline metrics; every pushed event updates the
    /// counters. Shards of a parallel run share one instance — the
    /// counters are atomic, so the totals equal a serial run's.
    #[must_use]
    pub fn with_metrics(mut self, metrics: std::sync::Arc<PipelineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Consumes one event; returns whether it was kept.
    ///
    /// Generic over [`EventView`], so owned [`TraceEvent`]s and borrowed
    /// [`EventRef`](iocov_trace::EventRef) batch rows take the exact
    /// same keep/drop and partition path.
    pub fn push<E: EventView + ?Sized>(&mut self, event: &E) -> bool {
        self.builder.filter_stats.total += 1;
        let metrics = self.metrics.as_deref();
        if let Some(m) = metrics {
            m.add_events_read(1);
        }
        let dropped = if self.filter.is_keep_all() {
            None
        } else {
            let state = self.states.entry(event.pid()).or_default();
            let dropped = relevance::event_drop_reason(&self.filter, state, event);
            relevance::update_state(state, event, dropped.is_none());
            dropped
        };
        match dropped {
            None => {
                self.builder.filter_stats.kept += 1;
                self.builder.accumulate(event, metrics);
                true
            }
            Some(reason) => {
                self.builder.filter_stats.dropped += 1;
                if let Some(m) = metrics {
                    m.record_drop(reason);
                }
                false
            }
        }
    }

    /// Consumes a batch of events.
    pub fn push_all<'a>(&mut self, events: impl IntoIterator<Item = &'a TraceEvent>) {
        for event in events {
            self.push(event);
        }
    }

    /// Finishes the stream and returns the report.
    #[must_use]
    pub fn finish(self) -> AnalysisReport {
        self.builder.into_report()
    }

    /// Serializable snapshots of every per-pid relevance state, for
    /// checkpointing. Paired with the materialized [`report`](Self::report)
    /// and the input cursor, this is everything a resumed analysis needs.
    #[must_use]
    pub fn pid_states(&self) -> std::collections::BTreeMap<u32, crate::PidStateSnapshot> {
        self.states
            .iter()
            .map(|(&pid, state)| (pid, state.snapshot()))
            .collect()
    }

    /// Restores per-pid relevance states from a checkpoint, replacing
    /// any current states. Call on a fresh analyzer before pushing the
    /// events after the checkpoint's cursor.
    pub fn restore_pid_states(
        &mut self,
        states: &std::collections::BTreeMap<u32, crate::PidStateSnapshot>,
    ) {
        self.states = states
            .iter()
            .map(|(&pid, snapshot)| (pid, PidState::restore(snapshot)))
            .collect();
    }

    /// A snapshot of the report so far (the stream may continue).
    ///
    /// Accumulation is symbol-keyed internally, so this materializes the
    /// string-keyed report on each call — cheap next to any real stream,
    /// but callers should hold the result rather than re-calling in a
    /// loop.
    #[must_use]
    pub fn report(&self) -> AnalysisReport {
        self.builder.materialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analyzer, ArgName};
    use iocov_trace::{ArgValue, Trace};

    fn open_ev(path: &str, fd: i64) -> TraceEvent {
        TraceEvent::build(
            "open",
            2,
            vec![
                ArgValue::Path(path.into()),
                ArgValue::Flags(0),
                ArgValue::Mode(0),
            ],
            fd,
        )
    }

    fn write_ev(fd: i32, count: u64) -> TraceEvent {
        TraceEvent::build(
            "write",
            1,
            vec![ArgValue::Fd(fd), ArgValue::Ptr(1), ArgValue::UInt(count)],
            count as i64,
        )
    }

    #[test]
    fn streaming_matches_batch_analysis() {
        let events = vec![
            open_ev("/mnt/test/a", 3),
            write_ev(3, 512),
            open_ev("/etc/noise", 4),
            write_ev(4, 100),
            TraceEvent::build("close", 3, vec![ArgValue::Fd(3)], 0),
        ];
        let trace = Trace::from_events(events.clone());
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let batch = Analyzer::new(filter.clone()).analyze(&trace);
        let mut streaming = StreamingAnalyzer::new(filter);
        streaming.push_all(&events);
        let report = streaming.finish();
        assert_eq!(batch, report);
    }

    #[test]
    fn fd_state_survives_chunk_boundaries() {
        // The whole point: a descriptor opened in chunk 1, used in
        // chunk 2.
        let chunk1 = vec![open_ev("/mnt/test/a", 3)];
        let chunk2 = vec![write_ev(3, 4096)];
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();

        // Per-chunk batch analysis loses the attribution…
        let mut per_chunk =
            Analyzer::new(filter.clone()).analyze(&Trace::from_events(chunk1.clone()));
        per_chunk
            .merge(&Analyzer::new(filter.clone()).analyze(&Trace::from_events(chunk2.clone())));
        assert_eq!(per_chunk.input_coverage(ArgName::WriteCount).calls, 0);

        // …the streaming analyzer keeps it.
        let mut streaming = StreamingAnalyzer::new(filter);
        streaming.push_all(&chunk1);
        streaming.push_all(&chunk2);
        let report = streaming.finish();
        assert_eq!(report.input_coverage(ArgName::WriteCount).calls, 1);
    }

    #[test]
    fn dup_provenance_survives_chunk_boundaries() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let mut streaming = StreamingAnalyzer::new(filter);
        streaming.push_all(&[open_ev("/mnt/test/a", 3)]);
        streaming.push_all(&[TraceEvent::build(
            "dup2",
            33,
            vec![ArgValue::Fd(3), ArgValue::Fd(9)],
            9,
        )]);
        streaming.push_all(&[write_ev(9, 64)]);
        let report = streaming.finish();
        assert_eq!(report.input_coverage(ArgName::WriteCount).calls, 1);
    }

    #[test]
    fn unfiltered_keeps_unattributed_fd_events() {
        let mut streaming = StreamingAnalyzer::unfiltered();
        assert!(streaming.push(&write_ev(42, 8)));
        let report = streaming.finish();
        assert_eq!(report.input_coverage(ArgName::WriteCount).calls, 1);
    }

    #[test]
    fn interim_report_is_available() {
        let mut streaming = StreamingAnalyzer::unfiltered();
        streaming.push(&open_ev("/a", 3));
        assert_eq!(streaming.report().total_calls(), 1);
        streaming.push(&write_ev(3, 16));
        assert_eq!(streaming.report().total_calls(), 2);
    }

    #[test]
    fn stats_count_kept_and_dropped() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let mut streaming = StreamingAnalyzer::new(filter);
        assert!(streaming.push(&open_ev("/mnt/test/x", 3)));
        assert!(!streaming.push(&open_ev("/var/y", 4)));
        let report = streaming.finish();
        assert_eq!(report.filter_stats.total, 2);
        assert_eq!(report.filter_stats.kept, 1);
        assert_eq!(report.filter_stats.dropped, 1);
    }
}
