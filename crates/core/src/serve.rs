//! Long-running analysis service: concurrent trace streams feeding
//! resident [`AnalysisSession`](crate::session::AnalysisSession)s.
//!
//! The batch pipeline answers one question about one finished trace.
//! `iocov serve` keeps the answer *live*: a server accepts many trace
//! streams concurrently — unix-socket connections speaking the
//! checksummed frame protocol from [`distribute`](crate::distribute),
//! plus `.jsonl`/`.iotb` files dropped into a watched spool directory —
//! and runs one supervised [`AnalysisSession`] per stream, each with its
//! own `.iockpt` checkpoint in the state directory. After every
//! checkpoint boundary the server rewrites a *merged* coverage snapshot
//! (all streams' reports combined) and a per-stream status manifest,
//! both atomically, so an observer can `cat` a consistent document at
//! any moment.
//!
//! # Wire protocol (one connection = one stream)
//!
//! ```text
//! client                                server
//!   ── HELLO {stream, format} ──▶        admit / reject
//!   ◀── CHECKPOINT (resume doc | ∅) ──   (or DONE + reason on reject)
//!   ── DATA raw trace bytes ──▶  ×N      feed session, checkpoint
//!   ── DONE ──▶                          finish, publish report
//! ```
//!
//! Frames reuse `[kind][len u64 LE][payload][fnv1a64]` encoding; DATA
//! payloads are raw container bytes (JSONL text or `.iotb`), so the
//! server-side decode path is *exactly* the batch decode path — a
//! [`JsonlSource`]/[`IotbSource`] over a channel-backed reader.
//! Backpressure is the bounded channel between the frame reader and the
//! session ([`PIPELINE_DEPTH`] batches deep) plus the kernel socket
//! buffer behind it: a slow analysis blocks the feeder, nothing buffers
//! unboundedly.
//!
//! # Per-stream recovery
//!
//! A connection that dies mid-feed (no DONE frame) marks its stream
//! *failed* but keeps the last checkpoint. The next HELLO for that name
//! is answered with the checkpoint document; the client seeks its local
//! trace to the cursor (JSONL) or replays the container from the start
//! (iotb — the cursor skips already-counted events) and the session
//! resumes where it left off. A stream that fails more than
//! [`SupervisorPolicy::max_restarts`] times gives up, mirroring shard
//! supervision, and further connections for it are refused.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, Read, Seek, SeekFrom};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use iocov_trace::{
    open_source, EventSource, IotbSource, JsonlSource, ReadOptions, SourceFormat, SourceOptions,
    SourcePos,
};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{
    encode_checkpoint, parse_checkpoint, read_checkpoint_with_fallback, write_atomic,
    write_checkpoint, CheckpointDoc,
};
use crate::coverage::AnalysisReport;
use crate::distribute::{
    read_frame, write_frame, FRAME_CHECKPOINT, FRAME_DATA, FRAME_DONE, FRAME_HELLO,
};
use crate::filter::TraceFilter;
use crate::metrics::{PipelineMetrics, ShardFailureRecord};
use crate::parallel::{SupervisorPolicy, PIPELINE_DEPTH};
use crate::pipeline::{PipelineBuilder, DEFAULT_CHUNK};

/// How often the socket accept loop, spool watcher, and drain monitor
/// poll their respective conditions.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Handshake retries a feed client spends waiting out a `busy` stream
/// (an earlier connection for the same name still tearing down).
const FEED_BUSY_RETRIES: u32 = 80;

/// The HELLO frame payload: which stream this connection feeds and the
/// container format of the bytes that will follow in DATA frames.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamHello {
    /// Stream name; also names the per-stream checkpoint file, so it is
    /// restricted to `[A-Za-z0-9._-]`.
    pub stream: String,
    /// Container format of the DATA payload bytes.
    pub format: SourceFormat,
}

/// `iocov serve` configuration.
pub struct ServeConfig {
    /// Unix socket path to listen on (`None` = spool-only server).
    pub socket: Option<PathBuf>,
    /// Directory watched for dropped `.jsonl`/`.iotb` trace files.
    pub spool: Option<PathBuf>,
    /// Where per-stream checkpoints, the merged `snapshot.json`, and
    /// the `status.json` manifest live.
    pub state_dir: PathBuf,
    /// Mount-point filter applied to every stream.
    pub mount: Option<String>,
    /// Skip malformed input lines instead of failing the stream.
    pub lossy: bool,
    /// Cap on skipped lines per stream when lossy.
    pub max_errors: Option<usize>,
    /// Checkpoint (and merged-snapshot refresh) cadence in events.
    pub checkpoint_every: u64,
    /// Restart budget for failed streams, reusing the shard supervision
    /// policy: a stream that fails more than `max_restarts` times gives
    /// up and refuses further connections.
    pub policy: SupervisorPolicy,
    /// Exit once this many streams have completed (or given up) and
    /// none are running. `None` serves forever.
    pub drain: Option<usize>,
}

/// One stream's row in the `status.json` manifest (and the final
/// [`ServeSummary`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamStatus {
    /// Stream name.
    pub stream: String,
    /// `"socket"` or `"spool"`.
    pub origin: String,
    /// `"running"`, `"done"`, `"failed"` (recoverable), or `"gave-up"`.
    pub state: String,
    /// Events analyzed so far (checkpointed progress, final count once
    /// done).
    pub events: u64,
    /// Times the stream failed and was readmitted for recovery.
    pub restarts: u32,
    /// The most recent failure, if any.
    #[serde(default)]
    pub last_error: Option<String>,
    /// Supervised shard failures absorbed *inside* the stream's
    /// session.
    #[serde(default)]
    pub shard_failures: Vec<ShardFailureRecord>,
}

/// The `status.json` document shape.
#[derive(Serialize)]
struct StatusDoc {
    streams: Vec<StreamStatus>,
}

/// What `run_serve` hands back after draining.
#[derive(Debug, Clone, Serialize)]
pub struct ServeSummary {
    /// Final per-stream statuses, in name order.
    pub streams: Vec<StreamStatus>,
    /// The merged report over every stream, as last written to
    /// `snapshot.json`.
    pub report: AnalysisReport,
}

/// Per-stream bookkeeping behind the status manifest.
#[derive(Default)]
struct StreamEntry {
    /// Last persisted checkpoint (progress for the merged snapshot and
    /// the resume document for recovery).
    doc: Option<CheckpointDoc>,
    /// Final report, once the stream completed.
    report: Option<AnalysisReport>,
    events: u64,
    restarts: u32,
    running: bool,
    done: bool,
    gave_up: bool,
    origin: &'static str,
    last_error: Option<String>,
    shard_failures: Vec<ShardFailureRecord>,
}

impl StreamEntry {
    fn state_name(&self) -> &'static str {
        if self.running {
            "running"
        } else if self.done {
            "done"
        } else if self.gave_up {
            "gave-up"
        } else if self.last_error.is_some() {
            "failed"
        } else {
            "idle"
        }
    }
}

/// Shared server state: config plus the stream table.
struct ServeState {
    cfg: ServeConfig,
    streams: Mutex<BTreeMap<String, StreamEntry>>,
    shutdown: AtomicBool,
}

impl ServeState {
    fn ckpt_path(&self, stream: &str) -> PathBuf {
        self.cfg.state_dir.join(format!("{stream}.iockpt"))
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// Why a HELLO was refused. The reason string travels back to the
/// client in a DONE frame.
enum Admit {
    /// Stream admitted; resume from this checkpoint if `Some`. Boxed:
    /// a `CheckpointDoc` carries a full report and dwarfs the
    /// rejection string.
    Admitted(Option<Box<CheckpointDoc>>),
    Rejected(String),
}

fn valid_stream_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// Admits (or refuses) a stream and marks it running. On admission,
/// returns the resume checkpoint: the in-memory one from a previous
/// incarnation, or — first time this server sees the name — whatever
/// `.iockpt` survives on disk from an earlier server run.
fn register_stream(state: &ServeState, name: &str, origin: &'static str) -> Admit {
    if !valid_stream_name(name) {
        return Admit::Rejected(format!(
            "invalid stream name {name:?}: use [A-Za-z0-9._-], at most 128 chars"
        ));
    }
    let mut streams = state.streams.lock().unwrap();
    let first_sight = !streams.contains_key(name);
    let entry = streams.entry(name.to_owned()).or_default();
    if entry.running {
        return Admit::Rejected(format!(
            "stream {name} is busy: another connection feeds it"
        ));
    }
    if entry.done {
        return Admit::Rejected(format!("stream {name} is already complete"));
    }
    if entry.gave_up {
        return Admit::Rejected(format!(
            "stream {name} gave up after {} restarts",
            entry.restarts
        ));
    }
    if first_sight {
        // A checkpoint left by an earlier server process resumes the
        // stream across server restarts. An unreadable or
        // filter-mismatched checkpoint falls back to a fresh run, the
        // same degradation the batch CLI applies.
        if let Ok((doc, _fell_back)) = read_checkpoint_with_fallback(&state.ckpt_path(name)) {
            if doc.mount == state.cfg.mount {
                entry.events = doc.cursor.events;
                entry.doc = Some(doc);
            }
        }
    }
    entry.origin = origin;
    entry.running = true;
    Admit::Admitted(entry.doc.clone().map(Box::new))
}

/// Applies `f` to the stream's entry under the lock.
fn with_entry(state: &ServeState, name: &str, f: impl FnOnce(&mut StreamEntry)) {
    let mut streams = state.streams.lock().unwrap();
    f(streams.entry(name.to_owned()).or_default());
}

/// Marks a stream failed and charges its restart budget.
fn fail_stream(state: &ServeState, name: &str, error: String) {
    let max = state.cfg.policy.max_restarts;
    with_entry(state, name, |entry| {
        entry.running = false;
        entry.restarts += 1;
        entry.gave_up = entry.restarts > max;
        entry.last_error = Some(error);
    });
    let _ = write_outputs(state);
}

fn status_rows(streams: &BTreeMap<String, StreamEntry>) -> Vec<StreamStatus> {
    streams
        .iter()
        .map(|(name, entry)| StreamStatus {
            stream: name.clone(),
            origin: entry.origin.to_owned(),
            state: entry.state_name().to_owned(),
            events: entry.events,
            restarts: entry.restarts,
            last_error: entry.last_error.clone(),
            shard_failures: entry.shard_failures.clone(),
        })
        .collect()
}

fn merged_report(streams: &BTreeMap<String, StreamEntry>) -> AnalysisReport {
    let mut merged = AnalysisReport::default();
    for entry in streams.values() {
        // A finished stream contributes its final report; a live or
        // failed one contributes checkpointed progress. Every report
        // aggregate is an order-independent sum, so the merge over
        // pid-disjoint streams equals one batch run over their
        // concatenation.
        if let Some(report) = &entry.report {
            merged.merge(report);
        } else if let Some(doc) = &entry.doc {
            merged.merge(&doc.report);
        }
    }
    merged
}

/// Rewrites `snapshot.json` (merged report, byte-identical to `iocov
/// analyze --json` over the same events) and `status.json` (per-stream
/// manifest), both atomically.
fn write_outputs(state: &ServeState) -> io::Result<()> {
    let streams = state.streams.lock().unwrap();
    let report = merged_report(&streams);
    let mut snapshot = serde_json::to_string_pretty(&report)
        .map_err(|e| io::Error::other(format!("serialize snapshot: {e}")))?;
    snapshot.push('\n');
    write_atomic(
        &state.cfg.state_dir.join("snapshot.json"),
        snapshot.as_bytes(),
    )?;
    let status = StatusDoc {
        streams: status_rows(&streams),
    };
    let mut status = serde_json::to_string_pretty(&status)
        .map_err(|e| io::Error::other(format!("serialize status: {e}")))?;
    status.push('\n');
    write_atomic(&state.cfg.state_dir.join("status.json"), status.as_bytes())
}

fn make_filter(mount: Option<&str>) -> Result<TraceFilter, String> {
    match mount {
        Some(m) => TraceFilter::mount_point(m).map_err(|e| e.to_string()),
        None => Ok(TraceFilter::keep_all()),
    }
}

/// What one complete stream run produced.
struct StreamRun {
    report: AnalysisReport,
    failures: Vec<ShardFailureRecord>,
    events: u64,
}

/// Builds the stream's resident session and pumps `source` to
/// end-of-input, checkpointing (and refreshing the merged snapshot)
/// every `checkpoint_every` events — the [`Driver`](crate::session::Driver)
/// loop, minus stop-after, plus snapshot publication at each cut.
fn pump_stream(
    state: &ServeState,
    name: &str,
    resume: Option<CheckpointDoc>,
    source: &mut dyn EventSource,
) -> Result<StreamRun, String> {
    let filter = make_filter(state.cfg.mount.as_deref())?;
    let metrics = Arc::new(PipelineMetrics::default());
    let mut builder = PipelineBuilder::new(filter)
        .mount(state.cfg.mount.clone())
        .policy(state.cfg.policy)
        .metrics(Arc::clone(&metrics));
    if let Some(doc) = resume {
        builder = builder.resume(doc);
    }
    let mut session = builder.build_session();
    let ckpt_path = state.ckpt_path(name);
    let every = state.cfg.checkpoint_every.max(1);
    let mut skips_seen = source.skip_ledger().len();
    loop {
        let events = session.events();
        let until = every - (events % every);
        let want = DEFAULT_CHUNK.min(usize::try_from(until).unwrap_or(usize::MAX));
        let batch = source
            .next_batch(want)
            .map_err(|e| format!("stream {name}: {e}"))?;
        let skips = source.skip_ledger().len();
        if skips > skips_seen {
            session.add_parse_skipped((skips - skips_seen) as u64);
            skips_seen = skips;
        }
        if batch.is_empty() {
            break;
        }
        session.feed(batch);
        if session.events().is_multiple_of(every) {
            let doc = session.checkpoint_doc(&source.position());
            write_checkpoint(&ckpt_path, &doc)
                .map_err(|e| format!("stream {name}: checkpoint {}: {e}", ckpt_path.display()))?;
            with_entry(state, name, |entry| {
                entry.events = doc.cursor.events;
                entry.doc = Some(doc);
            });
            write_outputs(state).map_err(|e| format!("stream {name}: snapshot: {e}"))?;
        }
    }
    let events = session.events();
    let (report, failures) = session.finish();
    Ok(StreamRun {
        report,
        failures,
        events,
    })
}

fn read_options(cfg: &ServeConfig) -> ReadOptions {
    ReadOptions {
        max_errors: cfg.max_errors,
        on_error: if cfg.lossy {
            iocov_trace::ErrorPolicy::Skip
        } else {
            iocov_trace::ErrorPolicy::Abort
        },
    }
}

/// Publishes a finished stream: final report, terminal checkpoint on
/// disk stays for the record, merged snapshot refreshed.
fn complete_stream(state: &ServeState, name: &str, run: StreamRun) {
    with_entry(state, name, |entry| {
        entry.running = false;
        entry.done = true;
        entry.events = run.events;
        entry.report = Some(run.report);
        entry.shard_failures = run.failures;
        entry.doc = None;
    });
    let _ = write_outputs(state);
}

// ---------------------------------------------------------------------
// Socket streams
// ---------------------------------------------------------------------

/// A frame payload hop between the connection reader thread and the
/// analysis.
enum StreamMsg {
    Data(Vec<u8>),
    Done,
    Failed(String),
}

/// `Read` over the bounded frame channel: DATA payloads concatenate
/// into a byte stream, DONE is end-of-file, a truncated or corrupt
/// connection surfaces as an I/O error (which fails the stream through
/// the normal source-error path).
struct ChannelReader {
    rx: Receiver<StreamMsg>,
    buf: Vec<u8>,
    pos: usize,
    done: bool,
}

impl ChannelReader {
    fn new(rx: Receiver<StreamMsg>) -> Self {
        ChannelReader {
            rx,
            buf: Vec::new(),
            pos: 0,
            done: false,
        }
    }
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        loop {
            if self.pos < self.buf.len() {
                let n = out.len().min(self.buf.len() - self.pos);
                out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
                self.pos += n;
                return Ok(n);
            }
            if self.done {
                return Ok(0);
            }
            match self.rx.recv() {
                Ok(StreamMsg::Data(bytes)) => {
                    self.buf = bytes;
                    self.pos = 0;
                }
                Ok(StreamMsg::Done) => {
                    self.done = true;
                    return Ok(0);
                }
                Ok(StreamMsg::Failed(msg)) => {
                    self.done = true;
                    return Err(io::Error::other(msg));
                }
                Err(_) => {
                    self.done = true;
                    return Err(io::Error::other("frame reader disconnected"));
                }
            }
        }
    }
}

/// Reader-thread half of a connection: frames to channel messages. The
/// bounded channel is the backpressure seam — a slow analysis parks
/// this thread, the kernel socket buffer fills, and the feeder's write
/// blocks.
fn pump_frames(mut conn: UnixStream, tx: SyncSender<StreamMsg>) {
    loop {
        match read_frame(&mut conn) {
            Ok(Some(frame)) if frame.kind == FRAME_DATA => {
                if tx.send(StreamMsg::Data(frame.payload)).is_err() {
                    return;
                }
            }
            Ok(Some(frame)) if frame.kind == FRAME_DONE => {
                let _ = tx.send(StreamMsg::Done);
                return;
            }
            Ok(Some(frame)) => {
                let _ = tx.send(StreamMsg::Failed(format!(
                    "unexpected frame kind {:#04x} mid-stream",
                    frame.kind
                )));
                return;
            }
            // A clean close without DONE is a dead feeder, not a
            // finished stream — the checkpoint survives for recovery.
            Ok(None) => {
                let _ = tx.send(StreamMsg::Failed(
                    "connection closed before its done frame".into(),
                ));
                return;
            }
            Err(e) => {
                let _ = tx.send(StreamMsg::Failed(e.to_string()));
                return;
            }
        }
    }
}

fn read_hello(conn: &mut UnixStream) -> Result<StreamHello, String> {
    match read_frame(conn) {
        Ok(Some(frame)) if frame.kind == FRAME_HELLO => serde_json::from_slice(&frame.payload)
            .map_err(|e| format!("malformed hello payload: {e}")),
        Ok(Some(frame)) => Err(format!("expected hello frame, got {:#04x}", frame.kind)),
        Ok(None) => Err("connection closed before hello".into()),
        Err(e) => Err(e.to_string()),
    }
}

/// Serves one socket connection end to end.
fn handle_connection(state: &ServeState, mut conn: UnixStream) {
    let Ok(hello) = read_hello(&mut conn) else {
        // No stream identified itself; nothing to record.
        return;
    };
    let resume = match register_stream(state, &hello.stream, "socket") {
        Admit::Admitted(resume) => resume.map(|doc| *doc),
        Admit::Rejected(reason) => {
            let _ = write_frame(&mut conn, FRAME_DONE, reason.as_bytes());
            return;
        }
    };
    // Handshake reply: the resume checkpoint (empty = start fresh).
    let payload = match &resume {
        Some(doc) => match encode_checkpoint(doc) {
            Ok(bytes) => bytes,
            Err(e) => {
                fail_stream(state, &hello.stream, format!("encode resume document: {e}"));
                return;
            }
        },
        None => Vec::new(),
    };
    if let Err(e) = write_frame(&mut conn, FRAME_CHECKPOINT, &payload) {
        fail_stream(state, &hello.stream, format!("handshake reply: {e}"));
        return;
    }
    let (tx, rx) = sync_channel(PIPELINE_DEPTH);
    let reader = thread::spawn(move || pump_frames(conn, tx));
    let channel = ChannelReader::new(rx);
    match run_socket_stream(state, &hello.stream, hello.format, resume, channel) {
        Ok(run) => complete_stream(state, &hello.stream, run),
        Err(e) => fail_stream(state, &hello.stream, e),
    }
    let _ = reader.join();
}

/// Decodes a socket stream's DATA bytes with the batch source machinery
/// and pumps them through a resident session.
fn run_socket_stream(
    state: &ServeState,
    name: &str,
    format: SourceFormat,
    resume: Option<CheckpointDoc>,
    channel: ChannelReader,
) -> Result<StreamRun, String> {
    let options = read_options(&state.cfg);
    let mut source: Box<dyn EventSource> = match (format, &resume) {
        (SourceFormat::Jsonl, Some(doc)) => {
            Box::new(JsonlSource::resume(channel, options, doc.cursor.clone()))
        }
        (SourceFormat::Jsonl, None) => Box::new(JsonlSource::new(channel, options)),
        // The iotb cursor re-reads the container itself; the feeder
        // replays the file from byte 0 on resume.
        (SourceFormat::Iotb, Some(doc)) => Box::new(
            IotbSource::resume(channel, options, doc.cursor.clone())
                .map_err(|e| format!("stream {name}: {e}"))?,
        ),
        (SourceFormat::Iotb, None) => {
            Box::new(IotbSource::new(channel, options).map_err(|e| format!("stream {name}: {e}"))?)
        }
    };
    pump_stream(state, name, resume, source.as_mut())
}

// ---------------------------------------------------------------------
// Spool streams
// ---------------------------------------------------------------------

/// Analyzes one spooled trace file as a stream named after its stem.
/// The file is renamed `.done` on success, `.failed` on error, so the
/// watcher never reprocesses it.
fn process_spool_file(state: &ServeState, path: &Path) {
    let Some(name) = path.file_stem().map(|s| s.to_string_lossy().into_owned()) else {
        return;
    };
    let resume = match register_stream(state, &name, "spool") {
        Admit::Admitted(resume) => resume.map(|doc| *doc),
        // Busy/done/gave-up: leave the file; a busy stream's file is
        // retried on a later scan, the rest are renamed below only
        // after this server actually processed them.
        Admit::Rejected(_) => return,
    };
    let trace = path.to_string_lossy().into_owned();
    let outcome = (|| -> Result<StreamRun, String> {
        let options = SourceOptions {
            read: read_options(&state.cfg),
            format: None,
            resume: resume.as_ref().map(|doc| SourcePos {
                format: doc.format,
                state: doc.cursor.clone(),
            }),
            wrap: None,
            decode_jobs: 1,
        };
        let mut source = open_source(&trace, options).map_err(|e| format!("{trace}: {e}"))?;
        pump_stream(state, &name, resume.clone(), source.as_mut())
    })();
    let suffix = if outcome.is_ok() { "done" } else { "failed" };
    match outcome {
        Ok(run) => complete_stream(state, &name, run),
        Err(e) => fail_stream(state, &name, e),
    }
    let renamed = path.with_extension(format!(
        "{}.{suffix}",
        path.extension().unwrap_or_default().to_string_lossy()
    ));
    let _ = fs::rename(path, renamed);
}

fn spool_candidate(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("jsonl" | "iotb")
    )
}

/// Watches the spool directory. A file is picked up once its size is
/// stable across two consecutive scans, so half-copied traces are not
/// analyzed mid-write.
fn spool_loop(state: &ServeState, dir: &Path) {
    let mut sizes: BTreeMap<PathBuf, u64> = BTreeMap::new();
    while !state.stopping() {
        let mut seen = Vec::new();
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if !spool_candidate(&path) {
                    continue;
                }
                let Ok(meta) = entry.metadata() else { continue };
                if !meta.is_file() {
                    continue;
                }
                seen.push(path.clone());
                match sizes.get(&path) {
                    Some(&prev) if prev == meta.len() => {
                        process_spool_file(state, &path);
                        sizes.remove(&path);
                    }
                    _ => {
                        sizes.insert(path, meta.len());
                    }
                }
            }
        }
        sizes.retain(|path, _| seen.contains(path));
        thread::sleep(POLL_INTERVAL);
    }
}

// ---------------------------------------------------------------------
// Server entry point
// ---------------------------------------------------------------------

/// Runs the server: accept loop, spool watcher, and drain monitor.
/// Blocks until the drain condition is met (forever without one).
///
/// # Errors
///
/// Setup failures only (state dir, socket bind, invalid mount
/// pattern); per-stream failures degrade into the status manifest
/// instead of tearing the server down.
pub fn run_serve(cfg: ServeConfig) -> io::Result<ServeSummary> {
    fs::create_dir_all(&cfg.state_dir)?;
    if let Some(spool) = &cfg.spool {
        fs::create_dir_all(spool)?;
    }
    make_filter(cfg.mount.as_deref()).map_err(io::Error::other)?;
    let listener = match &cfg.socket {
        Some(path) => {
            // A stale socket file from a previous server refuses binds.
            let _ = fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };
    let state = ServeState {
        cfg,
        streams: Mutex::new(BTreeMap::new()),
        shutdown: AtomicBool::new(false),
    };
    write_outputs(&state)?;
    let state = &state;
    thread::scope(|scope| {
        if let Some(listener) = &listener {
            scope.spawn(move || {
                while !state.stopping() {
                    match listener.accept() {
                        Ok((conn, _)) => {
                            // Blocking per-connection I/O from here on.
                            let _ = conn.set_nonblocking(false);
                            scope.spawn(move || handle_connection(state, conn));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => thread::sleep(POLL_INTERVAL),
                    }
                }
            });
        }
        if let Some(dir) = state.cfg.spool.clone() {
            scope.spawn(move || spool_loop(state, &dir));
        }
        // Drain monitor, on the scope's own thread.
        while !state.stopping() {
            if let Some(target) = state.cfg.drain {
                let streams = state.streams.lock().unwrap();
                let completed = streams.values().filter(|e| e.done || e.gave_up).count();
                let running = streams.values().any(|e| e.running);
                if completed >= target && !running {
                    drop(streams);
                    state.shutdown.store(true, Ordering::Relaxed);
                    break;
                }
            }
            thread::sleep(POLL_INTERVAL);
        }
    });
    if let Some(path) = &state.cfg.socket {
        let _ = fs::remove_file(path);
    }
    let streams = state.streams.lock().unwrap();
    Ok(ServeSummary {
        streams: status_rows(&streams),
        report: merged_report(&streams),
    })
}

// ---------------------------------------------------------------------
// Feed client
// ---------------------------------------------------------------------

/// Fault hook for feed drills: called with cumulative payload bytes
/// sent before each DATA frame; returning `true` drops the connection
/// without a DONE frame (a simulated feeder crash).
pub type FeedAbortHook = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// Stall hook: called with the DATA frame ordinal before each send;
/// sleeps (or not) at the schedule's discretion.
pub type FeedStallHook = Arc<dyn Fn(u64) + Send + Sync>;

/// `iocov feed` configuration: ship one local trace file to a serve
/// socket as one named stream.
pub struct FeedConfig {
    /// The server's unix socket.
    pub socket: PathBuf,
    /// Stream name to feed.
    pub stream: String,
    /// Local trace file to ship.
    pub trace: String,
    /// Container format of `trace`.
    pub format: SourceFormat,
    /// DATA frame payload size in bytes.
    pub chunk: usize,
    /// Abort drill, if any.
    pub abort: Option<FeedAbortHook>,
    /// Stall drill, if any.
    pub stall: Option<FeedStallHook>,
}

/// What a feed attempt did.
#[derive(Debug, Clone, Default)]
pub struct FeedOutcome {
    /// Byte offset the server's checkpoint resumed the file from.
    pub resumed_from: u64,
    /// Whether the server held a checkpoint for this stream.
    pub resumed: bool,
    /// Payload bytes shipped.
    pub sent_bytes: u64,
    /// DATA frames shipped.
    pub frames: u64,
    /// Whether the abort drill fired.
    pub aborted: bool,
    /// The server's rejection reason, when it refused the stream.
    pub rejected: Option<String>,
}

/// Feeds one trace file to a running server.
///
/// Retries the handshake while the server reports the stream busy (a
/// prior connection for the same name still tearing down), so
/// kill-then-recover drills don't race the server's cleanup.
///
/// # Errors
///
/// Connection, I/O, and protocol failures. A *rejection* (stream
/// complete or given up) is not an error; see [`FeedOutcome::rejected`].
pub fn run_feed(cfg: &FeedConfig) -> io::Result<FeedOutcome> {
    let hello = serde_json::to_string(&StreamHello {
        stream: cfg.stream.clone(),
        format: cfg.format,
    })
    .map_err(|e| io::Error::other(format!("serialize hello: {e}")))?
    .into_bytes();
    let mut attempt = 0u32;
    let (mut conn, reply) = loop {
        let mut conn = UnixStream::connect(&cfg.socket)?;
        write_frame(&mut conn, FRAME_HELLO, &hello)?;
        let frame = read_frame(&mut conn)
            .map_err(|e| io::Error::other(format!("handshake: {e}")))?
            .ok_or_else(|| io::Error::other("server closed the connection during handshake"))?;
        match frame.kind {
            FRAME_CHECKPOINT => break (conn, frame.payload),
            FRAME_DONE => {
                let reason = String::from_utf8_lossy(&frame.payload).into_owned();
                if reason.contains("busy") && attempt < FEED_BUSY_RETRIES {
                    attempt += 1;
                    thread::sleep(POLL_INTERVAL);
                    continue;
                }
                return Ok(FeedOutcome {
                    rejected: Some(reason),
                    ..FeedOutcome::default()
                });
            }
            kind => {
                return Err(io::Error::other(format!(
                    "expected checkpoint frame in handshake, got {kind:#04x}"
                )))
            }
        }
    };
    let mut offset = 0u64;
    let mut resumed = false;
    if !reply.is_empty() {
        let doc = parse_checkpoint(&reply)
            .map_err(|e| io::Error::other(format!("server resume document: {e}")))?;
        if doc.format != cfg.format {
            return Err(io::Error::other(format!(
                "server checkpoint is {} but {} is {}",
                doc.format, cfg.trace, cfg.format
            )));
        }
        resumed = true;
        // JSONL resumes mid-file at the checkpointed byte offset; the
        // iotb cursor re-reads the container from the start and skips
        // already-counted events, so the whole file is re-sent.
        if doc.format == SourceFormat::Jsonl {
            offset = doc.cursor.byte_offset;
        }
    }
    let mut file = File::open(&cfg.trace)?;
    if offset > 0 {
        file.seek(SeekFrom::Start(offset))?;
    }
    let mut buf = vec![0u8; cfg.chunk.max(1)];
    let mut sent = 0u64;
    let mut frames = 0u64;
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        if let Some(abort) = &cfg.abort {
            if abort(sent) {
                // Vanish without DONE: the server records a failed
                // stream and keeps its checkpoint for recovery.
                drop(conn);
                return Ok(FeedOutcome {
                    resumed_from: offset,
                    resumed,
                    sent_bytes: sent,
                    frames,
                    aborted: true,
                    rejected: None,
                });
            }
        }
        if let Some(stall) = &cfg.stall {
            stall(frames);
        }
        write_frame(&mut conn, FRAME_DATA, &buf[..n])?;
        sent += n as u64;
        frames += 1;
    }
    write_frame(&mut conn, FRAME_DONE, &[])?;
    Ok(FeedOutcome {
        resumed_from: offset,
        resumed,
        sent_bytes: sent,
        frames,
        aborted: false,
        rejected: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iocov_trace::{write_jsonl, ArgValue, Trace, TraceEvent};
    use std::io::Write as _;

    fn ev(pid: u32, name: &str, path: &str, ret: i64) -> TraceEvent {
        let mut event = TraceEvent::build(
            name,
            2,
            vec![
                ArgValue::Path(path.into()),
                ArgValue::Flags(0o101),
                ArgValue::Mode(0o644),
            ],
            ret,
        );
        event.pid = pid;
        event
    }

    fn sample_trace(pid: u32, n: usize) -> Trace {
        let mut trace = Trace::new();
        for i in 0..n {
            trace.push(ev(pid, "open", &format!("/mnt/test/f{i}"), i as i64 + 3));
        }
        trace
    }

    fn write_trace(dir: &Path, name: &str, trace: &Trace) -> String {
        let path = dir.join(name);
        let mut buf = Vec::new();
        write_jsonl(&mut buf, trace).unwrap();
        let mut file = File::create(&path).unwrap();
        file.write_all(&buf).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iocov-serve-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch_report(traces: &[&Trace], mount: &str) -> AnalysisReport {
        let mut all = Trace::new();
        for t in traces {
            all.extend((*t).clone());
        }
        let filter = TraceFilter::mount_point(mount).unwrap();
        let mut session = PipelineBuilder::new(filter)
            .mount(Some(mount.to_owned()))
            .build_session();
        session.feed_owned(all.into_events());
        session.finish().0
    }

    fn serve_config(dir: &Path, drain: usize) -> ServeConfig {
        ServeConfig {
            socket: Some(dir.join("iocov.sock")),
            spool: Some(dir.join("spool")),
            state_dir: dir.join("state"),
            mount: Some("/mnt/test".to_owned()),
            lossy: false,
            max_errors: None,
            checkpoint_every: 64,
            policy: SupervisorPolicy::default(),
            drain: Some(drain),
        }
    }

    #[test]
    fn socket_and_spool_streams_merge_to_batch_identical_snapshot() {
        let dir = tmp_dir("merge");
        fs::create_dir_all(dir.join("spool")).unwrap();
        let a = sample_trace(1, 150);
        let b = sample_trace(2, 90);
        let a_path = write_trace(&dir, "a.jsonl", &a);
        write_trace(&dir.join("spool"), "b.jsonl", &b);
        let cfg = serve_config(&dir, 2);
        let socket = cfg.socket.clone().unwrap();
        let state_dir = cfg.state_dir.clone();
        let server = thread::spawn(move || run_serve(cfg).unwrap());
        // Wait for the socket, then feed stream a over it.
        while !socket.exists() {
            thread::sleep(Duration::from_millis(5));
        }
        let outcome = run_feed(&FeedConfig {
            socket,
            stream: "a".into(),
            trace: a_path,
            format: SourceFormat::Jsonl,
            chunk: 512,
            abort: None,
            stall: None,
        })
        .unwrap();
        assert!(!outcome.aborted);
        assert!(outcome.rejected.is_none());
        let summary = server.join().unwrap();
        assert_eq!(summary.streams.len(), 2);
        assert!(summary.streams.iter().all(|s| s.state == "done"));
        let expected = batch_report(&[&a, &b], "/mnt/test");
        assert_eq!(
            serde_json::to_string(&summary.report).unwrap(),
            serde_json::to_string(&expected).unwrap()
        );
        let snapshot = fs::read_to_string(state_dir.join("snapshot.json")).unwrap();
        let mut want = serde_json::to_string_pretty(&expected).unwrap();
        want.push('\n');
        assert_eq!(
            snapshot, want,
            "snapshot.json must match analyze --json bytes"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_stream_recovers_from_checkpoint_and_manifests_the_failure() {
        let dir = tmp_dir("recover");
        let a = sample_trace(7, 300);
        let a_path = write_trace(&dir, "a.jsonl", &a);
        let mut cfg = serve_config(&dir, 1);
        cfg.spool = None;
        let socket = cfg.socket.clone().unwrap();
        let state_dir = cfg.state_dir.clone();
        let server = thread::spawn(move || run_serve(cfg).unwrap());
        while !socket.exists() {
            thread::sleep(Duration::from_millis(5));
        }
        // First attempt dies after ~half the bytes, without DONE.
        let half = {
            let len = fs::metadata(dir.join("a.jsonl")).unwrap().len();
            len / 2
        };
        let outcome = run_feed(&FeedConfig {
            socket: socket.clone(),
            stream: "a".into(),
            trace: a_path.clone(),
            format: SourceFormat::Jsonl,
            chunk: 256,
            abort: Some(Arc::new(move |sent| sent >= half)),
            stall: None,
        })
        .unwrap();
        assert!(outcome.aborted);
        // Wait until the server has manifested the failure.
        loop {
            let status = fs::read_to_string(state_dir.join("status.json")).unwrap_or_default();
            if status.contains("\"failed\"") {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        // Second attempt resumes from the checkpoint and completes.
        let outcome = run_feed(&FeedConfig {
            socket,
            stream: "a".into(),
            trace: a_path,
            format: SourceFormat::Jsonl,
            chunk: 256,
            abort: None,
            stall: None,
        })
        .unwrap();
        assert!(outcome.resumed, "recovery must resume from the checkpoint");
        assert!(outcome.resumed_from > 0);
        let summary = server.join().unwrap();
        let stream = &summary.streams[0];
        assert_eq!(stream.state, "done");
        assert_eq!(stream.restarts, 1, "the kill must be manifested");
        assert_eq!(stream.events, 300);
        let expected = batch_report(&[&a], "/mnt/test");
        assert_eq!(
            serde_json::to_string(&summary.report).unwrap(),
            serde_json::to_string(&expected).unwrap()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_connection_for_a_complete_stream_is_rejected() {
        let dir = tmp_dir("reject");
        let a = sample_trace(3, 20);
        let a_path = write_trace(&dir, "a.jsonl", &a);
        let mut cfg = serve_config(&dir, 1);
        cfg.spool = None;
        cfg.drain = Some(2); // hold the server open past the first stream
        let socket = cfg.socket.clone().unwrap();
        let server = thread::spawn(move || run_serve(cfg).unwrap());
        while !socket.exists() {
            thread::sleep(Duration::from_millis(5));
        }
        let feed = |abort: Option<FeedAbortHook>| {
            run_feed(&FeedConfig {
                socket: socket.clone(),
                stream: "a".into(),
                trace: a_path.clone(),
                format: SourceFormat::Jsonl,
                chunk: 4096,
                abort,
                stall: None,
            })
            .unwrap()
        };
        assert!(feed(None).rejected.is_none());
        // Wait for completion, then expect the rejection.
        let rejected = loop {
            let outcome = feed(None);
            match outcome.rejected {
                Some(reason) => break reason,
                None => thread::sleep(Duration::from_millis(5)),
            }
        };
        assert!(
            rejected.contains("already complete"),
            "unexpected rejection: {rejected}"
        );
        // Unblock the drain=2 server with a second stream.
        let b_path = write_trace(&dir, "b.jsonl", &sample_trace(4, 10));
        run_feed(&FeedConfig {
            socket: socket.clone(),
            stream: "b".into(),
            trace: b_path,
            format: SourceFormat::Jsonl,
            chunk: 4096,
            abort: None,
            stall: None,
        })
        .unwrap();
        let summary = server.join().unwrap();
        assert_eq!(summary.streams.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_names_that_escape_the_state_dir_are_rejected() {
        for bad in ["", "../escape", "a/b", "a\0b"] {
            assert!(!valid_stream_name(bad), "{bad:?} must be rejected");
        }
        for good in ["a", "fsx-run.7", "A_b-c.d"] {
            assert!(valid_stream_name(good), "{good:?} must be accepted");
        }
    }
}
