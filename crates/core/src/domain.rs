//! Domain definitions: what partitions *exist* for each argument and
//! each syscall's output.
//!
//! Coverage is "how much of the domain a tester exercised", so the
//! analyzer needs an explicit universe: the flag tables of bitmap
//! arguments, the displayed bucket range of numeric arguments (the
//! x-axis of the paper's Figure 3), the value set of categoricals, and
//! the per-syscall errno lists from the manual pages (Figure 4's x-axis,
//! which the paper also takes from the man pages).

use iocov_syscalls::{BaseSyscall, OpenFlags};
use iocov_trace::StrInterner;

use crate::arg::ArgName;
use crate::partition::{InputPartition, NumericPartition, SymInputPartition};

/// Named bits of a `mode_t` word.
pub const MODE_BITS: [(&str, u32); 12] = [
    ("S_ISUID", 0o4000),
    ("S_ISGID", 0o2000),
    ("S_ISVTX", 0o1000),
    ("S_IRUSR", 0o400),
    ("S_IWUSR", 0o200),
    ("S_IXUSR", 0o100),
    ("S_IRGRP", 0o040),
    ("S_IWGRP", 0o020),
    ("S_IXGRP", 0o010),
    ("S_IROTH", 0o004),
    ("S_IWOTH", 0o002),
    ("S_IXOTH", 0o001),
];

/// Named bits of the `setxattr` flags word.
pub const XATTR_FLAG_BITS: [(&str, u32); 2] = [("XATTR_CREATE", 0x1), ("XATTR_REPLACE", 0x2)];

/// `lseek` whence values.
pub const WHENCE_VALUES: [(&str, u32); 5] = [
    ("SEEK_SET", 0),
    ("SEEK_CUR", 1),
    ("SEEK_END", 2),
    ("SEEK_DATA", 3),
    ("SEEK_HOLE", 4),
];

/// Label for categorical values outside the defined set.
pub const INVALID_CATEGORY: &str = "<invalid>";

/// The kind-specific shape of an argument's domain.
#[derive(Debug, Clone)]
pub enum DomainKind {
    /// A flags word with a table of named bits.
    Bitmap {
        /// `(name, bits)` pairs; membership is `value & bits == bits`.
        flags: &'static [(&'static str, u32)],
    },
    /// The `open` flags word, which needs special handling: `O_RDONLY`
    /// is the all-zero access mode, and composite flags (`O_SYNC`,
    /// `O_TMPFILE`) subsume their parts.
    OpenFlags,
    /// A power-of-two-bucketed number.
    Numeric {
        /// Whether negative values are representable at the ABI.
        signed: bool,
        /// Largest `Log2` bucket the domain displays/enumerates
        /// (values above it still count, into their true bucket).
        display_max_log2: u32,
    },
    /// A fixed value set.
    Categorical {
        /// `(name, value)` pairs.
        values: &'static [(&'static str, u32)],
    },
}

/// An argument's domain.
#[derive(Debug, Clone)]
pub struct ArgDomain {
    /// Which argument this describes.
    pub arg: ArgName,
    /// Its partition structure.
    pub kind: DomainKind,
}

/// Open-flag names in Figure 2 order (the `O_ACCMODE` pseudo-entry is
/// excluded — it is a mask, not a flag).
#[must_use]
pub fn open_flag_names() -> Vec<&'static str> {
    OpenFlags::NAMED_FLAGS
        .iter()
        .map(|(name, _)| *name)
        .filter(|name| *name != "O_ACCMODE")
        .collect()
}

/// Decomposes an `open` flags word into the individual named flags it
/// exercises, handling the access-mode triple and composite flags:
/// `O_SYNC` subsumes `O_DSYNC`, `O_TMPFILE` subsumes `O_DIRECTORY`.
#[must_use]
pub fn open_flags_present(bits: u32) -> Vec<&'static str> {
    let flags = OpenFlags::from_bits(bits);
    let mut present = Vec::new();
    // The access mode is a 2-bit field, not independent bits: exactly one
    // of the three modes applies, and the invalid value 3 reports none.
    match bits & 0x3 {
        0 => present.push("O_RDONLY"),
        1 => present.push("O_WRONLY"),
        2 => present.push("O_RDWR"),
        _ => {}
    }
    let has_sync = flags.contains(OpenFlags::O_SYNC);
    let has_tmpfile = flags.contains(OpenFlags::O_TMPFILE);
    for (name, flag) in OpenFlags::NAMED_FLAGS {
        match name {
            "O_ACCMODE" | "O_RDONLY" | "O_WRONLY" | "O_RDWR" => continue,
            "O_DSYNC" if has_sync => continue,
            "O_DIRECTORY" if has_tmpfile => continue,
            _ => {
                if flag.bits() != 0 && bits & flag.bits() == flag.bits() {
                    present.push(name);
                }
            }
        }
    }
    present
}

/// Returns the domain of a tracked argument.
#[must_use]
pub fn arg_domain(arg: ArgName) -> ArgDomain {
    let kind = match arg {
        ArgName::OpenFlags => DomainKind::OpenFlags,
        ArgName::OpenMode | ArgName::MkdirMode | ArgName::ChmodMode => {
            DomainKind::Bitmap { flags: &MODE_BITS }
        }
        ArgName::SetxattrFlags => DomainKind::Bitmap {
            flags: &XATTR_FLAG_BITS,
        },
        ArgName::ReadCount | ArgName::WriteCount => DomainKind::Numeric {
            signed: false,
            // Figure 3's axis runs to 2^32.
            display_max_log2: 32,
        },
        ArgName::ReadOffset | ArgName::WriteOffset | ArgName::LseekOffset => DomainKind::Numeric {
            signed: true,
            display_max_log2: 40,
        },
        ArgName::TruncateLength => DomainKind::Numeric {
            signed: true,
            display_max_log2: 40,
        },
        ArgName::SetxattrSize | ArgName::GetxattrSize => DomainKind::Numeric {
            signed: false,
            // XATTR_SIZE_MAX is 64 KiB = 2^16; one bucket beyond for
            // over-limit probes.
            display_max_log2: 17,
        },
        ArgName::LseekWhence => DomainKind::Categorical {
            values: &WHENCE_VALUES,
        },
    };
    ArgDomain { arg, kind }
}

impl ArgDomain {
    /// Enumerates every partition in the displayed domain, in canonical
    /// order — the denominator of input coverage.
    #[must_use]
    pub fn all_partitions(&self) -> Vec<InputPartition> {
        match &self.kind {
            DomainKind::OpenFlags => open_flag_names()
                .into_iter()
                .map(|n| InputPartition::Flag(n.to_owned()))
                .collect(),
            DomainKind::Bitmap { flags } => flags
                .iter()
                .map(|(n, _)| InputPartition::Flag((*n).to_owned()))
                .collect(),
            DomainKind::Numeric {
                signed,
                display_max_log2,
            } => {
                let mut parts = Vec::new();
                if *signed {
                    parts.push(InputPartition::Numeric(NumericPartition::Negative));
                }
                parts.push(InputPartition::Numeric(NumericPartition::Zero));
                for k in 0..=*display_max_log2 {
                    parts.push(InputPartition::Numeric(NumericPartition::Log2(k)));
                }
                parts
            }
            DomainKind::Categorical { values } => {
                let mut parts: Vec<InputPartition> = values
                    .iter()
                    .map(|(n, _)| InputPartition::Categorical((*n).to_owned()))
                    .collect();
                parts.push(InputPartition::Categorical(INVALID_CATEGORY.to_owned()));
                parts
            }
        }
    }

    /// Partitions a concrete value into the (possibly several, for
    /// bitmaps) partitions it exercises.
    #[must_use]
    pub fn partitions_of(&self, value: crate::arg::TrackedValue) -> Vec<InputPartition> {
        use crate::arg::TrackedValue;
        match &self.kind {
            DomainKind::OpenFlags => {
                let bits = match value {
                    TrackedValue::Bits(b) => b,
                    other => other.as_i128() as u32,
                };
                open_flags_present(bits)
                    .into_iter()
                    .map(|n| InputPartition::Flag(n.to_owned()))
                    .collect()
            }
            DomainKind::Bitmap { flags } => {
                let bits = match value {
                    TrackedValue::Bits(b) => b,
                    other => other.as_i128() as u32,
                };
                flags
                    .iter()
                    .filter(|(_, f)| bits & f == *f && *f != 0)
                    .map(|(n, _)| InputPartition::Flag((*n).to_owned()))
                    .collect()
            }
            DomainKind::Numeric { .. } => {
                vec![InputPartition::Numeric(NumericPartition::of(
                    value.as_i128(),
                ))]
            }
            DomainKind::Categorical { values } => {
                let v = value.as_i128();
                let name = values
                    .iter()
                    .find(|(_, n)| i128::from(*n) == v)
                    .map_or(INVALID_CATEGORY, |(n, _)| *n);
                vec![InputPartition::Categorical(name.to_owned())]
            }
        }
    }

    /// The allocation-free twin of [`partitions_of`](Self::partitions_of):
    /// visits each exercised partition as an interned
    /// [`SymInputPartition`] instead of building a `Vec` of owned
    /// strings. The hot accumulation path goes through here.
    pub(crate) fn partition_syms(
        &self,
        value: crate::arg::TrackedValue,
        interner: &StrInterner,
        mut f: impl FnMut(SymInputPartition),
    ) {
        use crate::arg::TrackedValue;
        match &self.kind {
            DomainKind::OpenFlags => {
                let bits = match value {
                    TrackedValue::Bits(b) => b,
                    other => other.as_i128() as u32,
                };
                for name in open_flags_present(bits) {
                    f(SymInputPartition::Flag(interner.intern(name)));
                }
            }
            DomainKind::Bitmap { flags } => {
                let bits = match value {
                    TrackedValue::Bits(b) => b,
                    other => other.as_i128() as u32,
                };
                for (name, flag) in flags.iter() {
                    if bits & flag == *flag && *flag != 0 {
                        f(SymInputPartition::Flag(interner.intern(name)));
                    }
                }
            }
            DomainKind::Numeric { .. } => {
                f(SymInputPartition::Numeric(NumericPartition::of(
                    value.as_i128(),
                )));
            }
            DomainKind::Categorical { values } => {
                let v = value.as_i128();
                let name = values
                    .iter()
                    .find(|(_, n)| i128::from(*n) == v)
                    .map_or(INVALID_CATEGORY, |(n, _)| *n);
                f(SymInputPartition::Categorical(interner.intern(name)));
            }
        }
    }
}

/// The errnos a base syscall can return per its manual page — the
/// denominator of output coverage (Figure 4's x-axis).
#[must_use]
pub fn output_errnos(base: BaseSyscall) -> &'static [&'static str] {
    match base {
        BaseSyscall::Open => &[
            "EACCES",
            "EAGAIN",
            "EBADF",
            "EBUSY",
            "EDQUOT",
            "EEXIST",
            "EFAULT",
            "EFBIG",
            "EINTR",
            "EINVAL",
            "EISDIR",
            "ELOOP",
            "EMFILE",
            "ENAMETOOLONG",
            "ENFILE",
            "ENODEV",
            "ENOENT",
            "ENOMEM",
            "ENOSPC",
            "ENOTDIR",
            "ENXIO",
            "EOVERFLOW",
            "EPERM",
            "EROFS",
            "ETXTBSY",
            "EXDEV",
            "E2BIG",
        ],
        BaseSyscall::Read => &[
            "EAGAIN", "EBADF", "EFAULT", "EINTR", "EINVAL", "EIO", "EISDIR", "ESPIPE",
        ],
        BaseSyscall::Write => &[
            "EAGAIN", "EBADF", "EDQUOT", "EFAULT", "EFBIG", "EINTR", "EINVAL", "EIO", "ENOSPC",
            "EPERM", "EROFS", "ESPIPE",
        ],
        BaseSyscall::Lseek => &["EBADF", "EINVAL", "ENXIO", "EOVERFLOW", "ESPIPE"],
        BaseSyscall::Truncate => &[
            "EACCES",
            "EBADF",
            "EFAULT",
            "EFBIG",
            "EINTR",
            "EINVAL",
            "EIO",
            "EISDIR",
            "ELOOP",
            "ENAMETOOLONG",
            "ENOENT",
            "ENOTDIR",
            "EPERM",
            "EROFS",
            "ETXTBSY",
        ],
        BaseSyscall::Mkdir => &[
            "EACCES",
            "EBADF",
            "EDQUOT",
            "EEXIST",
            "EFAULT",
            "EINVAL",
            "ELOOP",
            "EMLINK",
            "ENAMETOOLONG",
            "ENOENT",
            "ENOMEM",
            "ENOSPC",
            "ENOTDIR",
            "EPERM",
            "EROFS",
        ],
        BaseSyscall::Chmod => &[
            "EACCES",
            "EBADF",
            "EFAULT",
            "EINVAL",
            "EIO",
            "ELOOP",
            "ENAMETOOLONG",
            "ENOENT",
            "ENOMEM",
            "ENOTDIR",
            "EOPNOTSUPP",
            "EPERM",
            "EROFS",
        ],
        BaseSyscall::Close => &["EBADF", "EDQUOT", "EINTR", "EIO", "ENOSPC"],
        BaseSyscall::Chdir => &[
            "EACCES",
            "EBADF",
            "EFAULT",
            "EIO",
            "ELOOP",
            "ENAMETOOLONG",
            "ENOENT",
            "ENOTDIR",
        ],
        BaseSyscall::Setxattr => &[
            "EACCES",
            "EBADF",
            "EDQUOT",
            "EEXIST",
            "EFAULT",
            "EINVAL",
            "ELOOP",
            "ENAMETOOLONG",
            "ENODATA",
            "ENOENT",
            "ENOSPC",
            "ENOTDIR",
            "EOPNOTSUPP",
            "EPERM",
            "ERANGE",
            "EROFS",
            "E2BIG",
        ],
        BaseSyscall::Getxattr => &[
            "EACCES",
            "EBADF",
            "EFAULT",
            "ELOOP",
            "ENAMETOOLONG",
            "ENODATA",
            "ENOENT",
            "ENOTDIR",
            "EOPNOTSUPP",
            "ERANGE",
        ],
    }
}

/// Whether a base syscall's successful returns are byte counts, and thus
/// sub-bucketed by powers of two.
#[must_use]
pub fn output_buckets_bytes(base: BaseSyscall) -> bool {
    matches!(
        base,
        BaseSyscall::Read | BaseSyscall::Write | BaseSyscall::Getxattr
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arg::TrackedValue;

    #[test]
    fn open_flag_domain_has_20_flags() {
        let names = open_flag_names();
        assert_eq!(names.len(), 20);
        assert!(names.contains(&"O_RDONLY"));
        assert!(!names.contains(&"O_ACCMODE"));
    }

    #[test]
    fn open_flags_present_handles_access_modes() {
        assert_eq!(open_flags_present(0), vec!["O_RDONLY"]);
        assert_eq!(open_flags_present(1), vec!["O_WRONLY"]);
        assert_eq!(open_flags_present(2), vec!["O_RDWR"]);
        let creat_wronly = 0o101;
        assert_eq!(
            open_flags_present(creat_wronly),
            vec!["O_WRONLY", "O_CREAT"]
        );
        let creat_rdonly = 0o100;
        assert_eq!(
            open_flags_present(creat_rdonly),
            vec!["O_RDONLY", "O_CREAT"]
        );
    }

    #[test]
    fn composite_flags_subsume_parts() {
        let o_sync = 0o4010000;
        let present = open_flags_present(o_sync);
        assert!(present.contains(&"O_SYNC"));
        assert!(!present.contains(&"O_DSYNC"));
        let o_dsync_only = 0o10000;
        assert_eq!(
            open_flags_present(o_dsync_only),
            vec!["O_RDONLY", "O_DSYNC"]
        );
        let o_tmpfile = 0o20200000 | 2;
        let present = open_flags_present(o_tmpfile);
        assert!(present.contains(&"O_TMPFILE"));
        assert!(!present.contains(&"O_DIRECTORY"));
    }

    #[test]
    fn mode_domain_partitions_each_bit() {
        let domain = arg_domain(ArgName::ChmodMode);
        let parts = domain.partitions_of(TrackedValue::Bits(0o644));
        let names: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, ["S_IRUSR", "S_IWUSR", "S_IRGRP", "S_IROTH"]);
        assert_eq!(domain.all_partitions().len(), 12);
    }

    #[test]
    fn numeric_domain_enumerates_axis() {
        let domain = arg_domain(ArgName::WriteCount);
        let parts = domain.all_partitions();
        // "=0" plus buckets 2^0 .. 2^32.
        assert_eq!(parts.len(), 34);
        assert_eq!(parts[0].to_string(), "=0");
        assert_eq!(parts[33].to_string(), "2^32");
        // A signed domain adds the negative partition.
        let signed = arg_domain(ArgName::LseekOffset);
        assert_eq!(signed.all_partitions()[0].to_string(), "<0");
    }

    #[test]
    fn numeric_values_bucket_into_single_partition() {
        let domain = arg_domain(ArgName::WriteCount);
        assert_eq!(
            domain.partitions_of(TrackedValue::Unsigned(1024)),
            vec![InputPartition::Numeric(NumericPartition::Log2(10))]
        );
        let signed = arg_domain(ArgName::LseekOffset);
        assert_eq!(
            signed.partitions_of(TrackedValue::Signed(-5)),
            vec![InputPartition::Numeric(NumericPartition::Negative)]
        );
    }

    #[test]
    fn categorical_domain_maps_values_and_invalid() {
        let domain = arg_domain(ArgName::LseekWhence);
        assert_eq!(
            domain.partitions_of(TrackedValue::Bits(2)),
            vec![InputPartition::Categorical("SEEK_END".into())]
        );
        assert_eq!(
            domain.partitions_of(TrackedValue::Bits(77)),
            vec![InputPartition::Categorical(INVALID_CATEGORY.into())]
        );
        assert_eq!(domain.all_partitions().len(), 6);
    }

    #[test]
    fn xattr_flag_domain() {
        let domain = arg_domain(ArgName::SetxattrFlags);
        let parts = domain.partitions_of(TrackedValue::Bits(0x3));
        assert_eq!(parts.len(), 2);
        // Zero flags exercise no partition.
        assert!(domain.partitions_of(TrackedValue::Bits(0)).is_empty());
    }

    #[test]
    fn partition_syms_agrees_with_partitions_of() {
        let interner = StrInterner::new();
        let cases = [
            (ArgName::OpenFlags, TrackedValue::Bits(0o101)),
            (ArgName::OpenFlags, TrackedValue::Bits(0)),
            (ArgName::ChmodMode, TrackedValue::Bits(0o644)),
            (ArgName::SetxattrFlags, TrackedValue::Bits(0)),
            (ArgName::WriteCount, TrackedValue::Unsigned(4096)),
            (ArgName::LseekOffset, TrackedValue::Signed(-3)),
            (ArgName::LseekWhence, TrackedValue::Bits(2)),
            (ArgName::LseekWhence, TrackedValue::Bits(77)),
        ];
        for (arg, value) in cases {
            let domain = arg_domain(arg);
            let mut via_syms = Vec::new();
            domain.partition_syms(value, &interner, |p| {
                via_syms.push(p.materialize(&interner))
            });
            assert_eq!(via_syms, domain.partitions_of(value), "{arg}");
        }
    }

    #[test]
    fn every_arg_has_a_domain_with_partitions() {
        for arg in ArgName::ALL {
            let domain = arg_domain(arg);
            assert!(!domain.all_partitions().is_empty(), "{arg} has partitions");
        }
    }

    #[test]
    fn open_output_domain_matches_figure4_scale() {
        let errnos = output_errnos(BaseSyscall::Open);
        assert_eq!(errnos.len(), 27, "27 error codes on Figure 4's axis");
        assert!(errnos.contains(&"ENOTDIR"));
        assert!(errnos.contains(&"EOVERFLOW"));
        // Every listed errno is a real one.
        for name in errnos {
            assert!(
                iocov_syscalls::Errno::ALL.iter().any(|e| e.name() == *name),
                "{name} must be a known errno"
            );
        }
    }

    #[test]
    fn byte_bucketing_applies_to_size_returning_calls() {
        assert!(output_buckets_bytes(BaseSyscall::Read));
        assert!(output_buckets_bytes(BaseSyscall::Write));
        assert!(output_buckets_bytes(BaseSyscall::Getxattr));
        assert!(!output_buckets_bytes(BaseSyscall::Open));
        assert!(!output_buckets_bytes(BaseSyscall::Close));
    }

    #[test]
    fn all_output_domains_are_valid_errnos() {
        for base in BaseSyscall::ALL {
            for name in output_errnos(base) {
                assert!(
                    iocov_syscalls::Errno::ALL.iter().any(|e| e.name() == *name),
                    "{base}: {name}"
                );
            }
        }
    }
}
