//! Input- and output-space partitions.
//!
//! Numeric arguments partition by powers of two ("because they are common
//! in file systems", §3), with dedicated boundary partitions for zero and
//! negative values. Bitmap arguments partition per flag. Categorical
//! arguments partition per value. Outputs partition into success — with
//! log2 sub-buckets for byte-count returns — and one partition per errno.

use std::fmt;

use iocov_trace::{StrInterner, Sym};
use serde::{Deserialize, Serialize};

/// A numeric partition: the paper's power-of-two bucketing with explicit
/// boundary partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NumericPartition {
    /// The value was negative (possible for offsets in ABI form).
    Negative,
    /// Exactly zero — "unusual but allowed under POSIX", and a boundary
    /// value easily neglected by testing (§4, Figure 3).
    Zero,
    /// `Log2(k)` covers `[2^k, 2^(k+1))`; `Log2(0)` is exactly 1.
    Log2(u32),
}

impl NumericPartition {
    /// Buckets a value.
    #[must_use]
    pub fn of(value: i128) -> NumericPartition {
        if value < 0 {
            NumericPartition::Negative
        } else if value == 0 {
            NumericPartition::Zero
        } else {
            NumericPartition::Log2(value.ilog2())
        }
    }

    /// The inclusive lower bound of the bucket (`None` for `Negative`).
    #[must_use]
    pub fn lower_bound(self) -> Option<u128> {
        match self {
            NumericPartition::Negative => None,
            NumericPartition::Zero => Some(0),
            NumericPartition::Log2(k) => Some(1u128 << k),
        }
    }
}

impl fmt::Display for NumericPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericPartition::Negative => f.write_str("<0"),
            NumericPartition::Zero => f.write_str("=0"),
            NumericPartition::Log2(k) => write!(f, "2^{k}"),
        }
    }
}

/// One input-space partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InputPartition {
    /// One bitmap flag (by canonical name, e.g. `"O_CREAT"`).
    Flag(String),
    /// One power-of-two numeric bucket.
    Numeric(NumericPartition),
    /// One categorical value (e.g. `"SEEK_SET"`), or `"<invalid>"`.
    Categorical(String),
}

impl fmt::Display for InputPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputPartition::Flag(name) => f.write_str(name),
            InputPartition::Numeric(p) => write!(f, "{p}"),
            InputPartition::Categorical(v) => f.write_str(v),
        }
    }
}

/// One output-space partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OutputPartition {
    /// Any non-negative return ("OK" in the paper's Figure 4).
    Ok,
    /// A successful byte-count return, sub-bucketed by powers of two
    /// (`write`, `read`, `getxattr`).
    OkBytes(NumericPartition),
    /// A specific error code, by symbolic name.
    Err(String),
}

impl OutputPartition {
    /// Partitions a raw return value. `bucket_bytes` selects the byte-
    /// count sub-bucketing for size-returning syscalls.
    #[must_use]
    pub fn of(retval: i64, bucket_bytes: bool) -> OutputPartition {
        if retval >= 0 {
            if bucket_bytes {
                OutputPartition::OkBytes(NumericPartition::of(i128::from(retval)))
            } else {
                OutputPartition::Ok
            }
        } else {
            let number = u32::try_from(-retval).unwrap_or(u32::MAX);
            let name = iocov_syscalls::Errno::from_number(number)
                .map_or_else(|| format!("E?{number}"), |e| e.name().to_owned());
            OutputPartition::Err(name)
        }
    }

    /// Whether this partition represents success.
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, OutputPartition::Ok | OutputPartition::OkBytes(_))
    }
}

impl fmt::Display for OutputPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputPartition::Ok => f.write_str("OK"),
            OutputPartition::OkBytes(p) => write!(f, "OK({p})"),
            OutputPartition::Err(name) => f.write_str(name),
        }
    }
}

/// [`InputPartition`] with interned names: the accumulation-time form,
/// `Copy` and 8 bytes, so the hot path hashes a symbol instead of
/// cloning and comparing heap strings. Materialized back to
/// [`InputPartition`] only when a report is assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum SymInputPartition {
    /// One bitmap flag, by interned canonical name.
    Flag(Sym),
    /// One power-of-two numeric bucket.
    Numeric(NumericPartition),
    /// One categorical value, by interned name.
    Categorical(Sym),
}

impl SymInputPartition {
    /// Converts back to the string-keyed public partition.
    pub(crate) fn materialize(self, interner: &StrInterner) -> InputPartition {
        let resolve = |sym| {
            interner
                .resolve(sym)
                .expect("symbol interned by this builder")
                .as_ref()
                .to_owned()
        };
        match self {
            SymInputPartition::Flag(sym) => InputPartition::Flag(resolve(sym)),
            SymInputPartition::Numeric(p) => InputPartition::Numeric(p),
            SymInputPartition::Categorical(sym) => InputPartition::Categorical(resolve(sym)),
        }
    }
}

/// [`OutputPartition`] with interned errno names; see
/// [`SymInputPartition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum SymOutputPartition {
    /// Any non-negative return.
    Ok,
    /// A successful byte-count return, sub-bucketed.
    OkBytes(NumericPartition),
    /// A specific error code, by interned symbolic name.
    Err(Sym),
}

impl SymOutputPartition {
    /// Partitions a raw return value, interning the errno name on the
    /// error path (almost always a table hit: errno names come from a
    /// fixed set, and `E?{number}` fallbacks are rare).
    pub(crate) fn of(retval: i64, bucket_bytes: bool, interner: &StrInterner) -> Self {
        if retval >= 0 {
            if bucket_bytes {
                SymOutputPartition::OkBytes(NumericPartition::of(i128::from(retval)))
            } else {
                SymOutputPartition::Ok
            }
        } else {
            let number = u32::try_from(-retval).unwrap_or(u32::MAX);
            let sym = match iocov_syscalls::Errno::from_number(number) {
                Some(e) => interner.intern(e.name()),
                None => interner.intern(&format!("E?{number}")),
            };
            SymOutputPartition::Err(sym)
        }
    }

    /// Converts back to the string-keyed public partition.
    pub(crate) fn materialize(self, interner: &StrInterner) -> OutputPartition {
        match self {
            SymOutputPartition::Ok => OutputPartition::Ok,
            SymOutputPartition::OkBytes(p) => OutputPartition::OkBytes(p),
            SymOutputPartition::Err(sym) => OutputPartition::Err(
                interner
                    .resolve(sym)
                    .expect("symbol interned by this builder")
                    .as_ref()
                    .to_owned(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_bucketing_matches_figure3_semantics() {
        assert_eq!(NumericPartition::of(-1), NumericPartition::Negative);
        assert_eq!(NumericPartition::of(0), NumericPartition::Zero);
        assert_eq!(NumericPartition::of(1), NumericPartition::Log2(0));
        assert_eq!(NumericPartition::of(2), NumericPartition::Log2(1));
        assert_eq!(NumericPartition::of(3), NumericPartition::Log2(1));
        assert_eq!(NumericPartition::of(1024), NumericPartition::Log2(10));
        assert_eq!(NumericPartition::of(2047), NumericPartition::Log2(10));
        assert_eq!(NumericPartition::of(2048), NumericPartition::Log2(11));
        // The paper's annotated maximum: 258 MiB falls in the 2^28 bucket.
        let mib258 = 258 * 1024 * 1024;
        assert_eq!(NumericPartition::of(mib258), NumericPartition::Log2(28));
    }

    #[test]
    fn bucket_boundaries_are_inclusive_lower() {
        for k in 0..40u32 {
            let lo = 1i128 << k;
            assert_eq!(NumericPartition::of(lo), NumericPartition::Log2(k));
            assert_eq!(NumericPartition::of(lo * 2 - 1), NumericPartition::Log2(k));
        }
        assert_eq!(NumericPartition::Log2(10).lower_bound(), Some(1024));
        assert_eq!(NumericPartition::Zero.lower_bound(), Some(0));
        assert_eq!(NumericPartition::Negative.lower_bound(), None);
    }

    #[test]
    fn output_partition_of_success_and_error() {
        assert_eq!(OutputPartition::of(0, false), OutputPartition::Ok);
        assert_eq!(OutputPartition::of(42, false), OutputPartition::Ok);
        assert_eq!(
            OutputPartition::of(0, true),
            OutputPartition::OkBytes(NumericPartition::Zero)
        );
        assert_eq!(
            OutputPartition::of(4096, true),
            OutputPartition::OkBytes(NumericPartition::Log2(12))
        );
        assert_eq!(
            OutputPartition::of(-2, false),
            OutputPartition::Err("ENOENT".into())
        );
        assert_eq!(
            OutputPartition::of(-28, true),
            OutputPartition::Err("ENOSPC".into())
        );
        assert_eq!(
            OutputPartition::of(-9999, false),
            OutputPartition::Err("E?9999".into())
        );
    }

    #[test]
    fn success_predicate() {
        assert!(OutputPartition::of(1, false).is_success());
        assert!(OutputPartition::of(1, true).is_success());
        assert!(!OutputPartition::of(-1, false).is_success());
    }

    #[test]
    fn display_forms() {
        assert_eq!(NumericPartition::Zero.to_string(), "=0");
        assert_eq!(NumericPartition::Negative.to_string(), "<0");
        assert_eq!(NumericPartition::Log2(28).to_string(), "2^28");
        assert_eq!(
            InputPartition::Flag("O_CREAT".into()).to_string(),
            "O_CREAT"
        );
        assert_eq!(
            InputPartition::Numeric(NumericPartition::Log2(3)).to_string(),
            "2^3"
        );
        assert_eq!(OutputPartition::Ok.to_string(), "OK");
        assert_eq!(
            OutputPartition::OkBytes(NumericPartition::Log2(2)).to_string(),
            "OK(2^2)"
        );
        assert_eq!(OutputPartition::Err("EIO".into()).to_string(), "EIO");
    }

    #[test]
    fn sym_partitions_materialize_to_their_string_twins() {
        let interner = StrInterner::new();
        let flag = SymInputPartition::Flag(interner.intern("O_CREAT"));
        assert_eq!(
            flag.materialize(&interner),
            InputPartition::Flag("O_CREAT".into())
        );
        let num = SymInputPartition::Numeric(NumericPartition::Log2(4));
        assert_eq!(
            num.materialize(&interner),
            InputPartition::Numeric(NumericPartition::Log2(4))
        );
        let cat = SymInputPartition::Categorical(interner.intern("SEEK_SET"));
        assert_eq!(
            cat.materialize(&interner),
            InputPartition::Categorical("SEEK_SET".into())
        );
        // Output partitions agree with OutputPartition::of across the
        // success, byte-bucket, errno, and unknown-errno paths.
        for (retval, bucket) in [(0, false), (4096, true), (-2, false), (-9999, true)] {
            assert_eq!(
                SymOutputPartition::of(retval, bucket, &interner).materialize(&interner),
                OutputPartition::of(retval, bucket)
            );
        }
    }

    #[test]
    fn partitions_order_deterministically() {
        let mut parts = [
            InputPartition::Numeric(NumericPartition::Log2(3)),
            InputPartition::Flag("O_APPEND".into()),
            InputPartition::Numeric(NumericPartition::Zero),
        ];
        parts.sort();
        // Flags before numerics (enum order), zero before log2 buckets.
        assert_eq!(parts[0], InputPartition::Flag("O_APPEND".into()));
        assert_eq!(parts[1], InputPartition::Numeric(NumericPartition::Zero));
    }
}
