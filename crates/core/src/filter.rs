//! The trace filter: keeps only syscalls aimed at the tester's mount
//! point.
//!
//! LTTng records *every* syscall the tester makes, including bookkeeping
//! I/O on its own state files; IOCov filters by mount-point pathname
//! before analysis (§3). Path-carrying events are matched directly
//! against the configured patterns. Descriptor-carrying events (`read`,
//! `write`, `close`, `f*` variants) have no pathname, so the filter
//! tracks descriptor provenance: an `open` under the mount point makes
//! its returned descriptor relevant, propagating relevance to later
//! operations on that descriptor — including relative `openat` through
//! relevant directory descriptors and `chdir` updates to cwd relevance.

use std::collections::HashMap;

use iocov_pattern::Pattern;
use iocov_trace::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};

/// Statistics of one filtering pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Events inspected.
    pub total: usize,
    /// Events kept for analysis.
    pub kept: usize,
    /// Events dropped as irrelevant to the mount point.
    pub dropped: usize,
}

/// Per-process relevance state while walking a trace.
#[derive(Debug, Default)]
struct PidState {
    /// Descriptor → was it opened under the mount point?
    fds: HashMap<i32, bool>,
    /// Whether the process cwd is under the mount point.
    cwd_relevant: bool,
}

/// A mount-point trace filter.
///
/// ```
/// use iocov::TraceFilter;
///
/// # fn main() -> Result<(), iocov_pattern::PatternError> {
/// let filter = TraceFilter::mount_point("/mnt/test")?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceFilter {
    include: Vec<Pattern>,
    exclude: Vec<Pattern>,
}

impl TraceFilter {
    /// A filter that keeps everything.
    #[must_use]
    pub fn keep_all() -> Self {
        TraceFilter::default()
    }

    /// A filter for one mount point: keeps paths equal to or below
    /// `mount` ("the only setting that needs to be adjusted when applying
    /// IOCov to a new file system tester", §3).
    ///
    /// # Errors
    ///
    /// Returns a pattern error if `mount` contains regex
    /// metacharacters that fail to compile after escaping (practically
    /// impossible for normal paths).
    pub fn mount_point(mount: &str) -> Result<Self, iocov_pattern::PatternError> {
        let trimmed = mount.trim_end_matches('/');
        let mut escaped = String::new();
        for c in trimmed.chars() {
            if "\\^$.|?*+()[]{}".contains(c) {
                escaped.push('\\');
            }
            escaped.push(c);
        }
        let pattern = Pattern::regex(&format!("^{escaped}(/|$)"))?;
        Ok(TraceFilter {
            include: vec![pattern],
            exclude: Vec::new(),
        })
    }

    /// Adds an include pattern (paths must match at least one).
    #[must_use]
    pub fn include(mut self, pattern: Pattern) -> Self {
        self.include.push(pattern);
        self
    }

    /// Adds an exclude pattern (matching paths are dropped even when
    /// included).
    #[must_use]
    pub fn exclude(mut self, pattern: Pattern) -> Self {
        self.exclude.push(pattern);
        self
    }

    /// Whether this filter keeps every event (no patterns configured).
    #[must_use]
    pub fn is_keep_all(&self) -> bool {
        self.include.is_empty() && self.exclude.is_empty()
    }

    /// Whether an absolute path is relevant.
    #[must_use]
    pub fn path_relevant(&self, path: &str) -> bool {
        let included = self.include.is_empty() || self.include.iter().any(|p| p.is_match(path));
        included && !self.exclude.iter().any(|p| p.is_match(path))
    }

    /// Filters a trace, returning the kept events and statistics.
    #[must_use]
    pub fn apply(&self, trace: &Trace) -> (Trace, FilterStats) {
        if self.include.is_empty() && self.exclude.is_empty() {
            // No patterns: everything is relevant, including descriptor
            // operations whose open was never observed.
            let stats = FilterStats {
                total: trace.len(),
                kept: trace.len(),
                dropped: 0,
            };
            return (trace.clone(), stats);
        }
        let mut states: HashMap<u32, PidState> = HashMap::new();
        let mut kept = Vec::new();
        for event in trace {
            let state = states.entry(event.pid).or_default();
            let relevant = Self::event_relevant(self, state, event);
            Self::update_state(state, event, relevant);
            if relevant {
                kept.push(event.clone());
            }
        }
        let stats = FilterStats {
            total: trace.len(),
            kept: kept.len(),
            dropped: trace.len() - kept.len(),
        };
        (Trace::from_events(kept), stats)
    }

    /// Decides relevance of one event given per-pid state.
    fn event_relevant(&self, state: &PidState, event: &TraceEvent) -> bool {
        if let Some(path) = event.primary_path() {
            if path.starts_with('/') {
                return self.path_relevant(path);
            }
            // Relative path: relevance flows from the base directory.
            return match event.args.first() {
                Some(iocov_trace::ArgValue::Fd(dirfd)) => {
                    if *dirfd == iocov_vfs_at_fdcwd() {
                        state.cwd_relevant
                    } else {
                        state.fds.get(dirfd).copied().unwrap_or(false)
                    }
                }
                // open/creat/chdir with a relative path resolve via cwd.
                _ => state.cwd_relevant,
            };
        }
        // No path: relevance flows from the descriptor argument.
        match event.args.first() {
            Some(iocov_trace::ArgValue::Fd(fd)) => state.fds.get(fd).copied().unwrap_or(false),
            _ => false,
        }
    }

    /// Propagates descriptor/cwd relevance after the event.
    fn update_state(state: &mut PidState, event: &TraceEvent, relevant: bool) {
        match event.name.as_str() {
            "open" | "openat" | "creat" | "openat2" if event.retval >= 0 => {
                state.fds.insert(event.retval as i32, relevant);
            }
            "close" if event.retval >= 0 => {
                if let Some(iocov_trace::ArgValue::Fd(fd)) = event.args.first() {
                    state.fds.remove(fd);
                }
            }
            "chdir" if event.retval >= 0 => {
                state.cwd_relevant = relevant;
            }
            "fchdir" if event.retval >= 0 => {
                if let Some(iocov_trace::ArgValue::Fd(fd)) = event.args.first() {
                    state.cwd_relevant = state.fds.get(fd).copied().unwrap_or(false);
                }
            }
            _ => {}
        }
    }
}

/// `AT_FDCWD` without depending on the vfs crate directly.
const fn iocov_vfs_at_fdcwd() -> i32 {
    -100
}

#[cfg(test)]
mod tests {
    use super::*;
    use iocov_trace::ArgValue;

    fn ev(name: &str, args: Vec<ArgValue>, retval: i64) -> TraceEvent {
        TraceEvent::build(name, 0, args, retval)
    }

    fn open_ev(path: &str, fd: i64) -> TraceEvent {
        ev(
            "open",
            vec![ArgValue::Path(path.into()), ArgValue::Flags(0), ArgValue::Mode(0)],
            fd,
        )
    }

    #[test]
    fn keep_all_keeps_everything() {
        let filter = TraceFilter::keep_all();
        let trace = Trace::from_events(vec![open_ev("/anything", 3)]);
        let (kept, stats) = filter.apply(&trace);
        assert_eq!(kept.len(), 1);
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn mount_point_matches_subtree_not_prefix() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        assert!(filter.path_relevant("/mnt/test"));
        assert!(filter.path_relevant("/mnt/test/a/b"));
        assert!(!filter.path_relevant("/mnt/testother"));
        assert!(!filter.path_relevant("/var/log/x"));
    }

    #[test]
    fn path_events_filter_directly() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test/f", 3),
            open_ev("/etc/config", 4),
            ev("mkdir", vec![ArgValue::Path("/mnt/test/d".into()), ArgValue::Mode(0o755)], 0),
            ev("truncate", vec![ArgValue::Path("/tmp/x".into()), ArgValue::Int(0)], 0),
        ]);
        let (kept, stats) = filter.apply(&trace);
        assert_eq!(stats.kept, 2);
        assert!(kept.iter().all(|e| e.primary_path().unwrap().starts_with("/mnt/test")));
    }

    #[test]
    fn fd_relevance_propagates_from_open_to_io() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test/f", 3),
            open_ev("/etc/hosts", 4),
            ev("write", vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(10)], 10),
            ev("read", vec![ArgValue::Fd(4), ArgValue::Ptr(1), ArgValue::UInt(10)], 10),
            ev("close", vec![ArgValue::Fd(3)], 0),
            ev("close", vec![ArgValue::Fd(4)], 0),
        ]);
        let (kept, stats) = filter.apply(&trace);
        let names: Vec<&str> = kept.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["open", "write", "close"]);
        assert_eq!(stats.dropped, 3);
    }

    #[test]
    fn closed_fd_relevance_does_not_leak_to_reused_fd() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test/f", 3),
            ev("close", vec![ArgValue::Fd(3)], 0),
            open_ev("/etc/hosts", 3), // fd number reused for noise
            ev("write", vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(1)], 1),
        ]);
        let (kept, _) = filter.apply(&trace);
        let names: Vec<&str> = kept.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["open", "close"]);
    }

    #[test]
    fn relative_openat_follows_dirfd_relevance() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test", 5),
            ev(
                "openat",
                vec![
                    ArgValue::Fd(5),
                    ArgValue::Path("sub/file".into()),
                    ArgValue::Flags(0),
                    ArgValue::Mode(0),
                ],
                6,
            ),
            ev("write", vec![ArgValue::Fd(6), ArgValue::Ptr(1), ArgValue::UInt(2)], 2),
            open_ev("/home", 7),
            ev(
                "openat",
                vec![
                    ArgValue::Fd(7),
                    ArgValue::Path("noise".into()),
                    ArgValue::Flags(0),
                    ArgValue::Mode(0),
                ],
                8,
            ),
            ev("write", vec![ArgValue::Fd(8), ArgValue::Ptr(1), ArgValue::UInt(2)], 2),
        ]);
        let (kept, _) = filter.apply(&trace);
        assert_eq!(kept.len(), 3, "mount-relative chain kept, /home chain dropped");
    }

    #[test]
    fn chdir_updates_cwd_relevance_for_relative_paths() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            ev("chdir", vec![ArgValue::Path("/mnt/test".into())], 0),
            open_ev("relative_file", 3),
            ev("chdir", vec![ArgValue::Path("/home".into())], 0),
            open_ev("other_file", 4),
        ]);
        let (kept, _) = filter.apply(&trace);
        let names: Vec<String> = kept
            .iter()
            .map(|e| e.primary_path().unwrap_or("").to_owned())
            .collect();
        assert_eq!(names, ["/mnt/test", "relative_file"]);
    }

    #[test]
    fn at_fdcwd_uses_cwd_relevance() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            ev("chdir", vec![ArgValue::Path("/mnt/test".into())], 0),
            ev(
                "openat",
                vec![
                    ArgValue::Fd(-100),
                    ArgValue::Path("f".into()),
                    ArgValue::Flags(0),
                    ArgValue::Mode(0),
                ],
                3,
            ),
        ]);
        let (kept, _) = filter.apply(&trace);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn failed_chdir_does_not_update_cwd() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            ev("chdir", vec![ArgValue::Path("/mnt/test".into())], 0),
            ev("chdir", vec![ArgValue::Path("/gone".into())], -2),
            open_ev("still_relevant", 3),
        ]);
        let (kept, _) = filter.apply(&trace);
        assert_eq!(kept.len(), 2, "failed chdir kept old cwd relevance");
    }

    #[test]
    fn exclude_patterns_remove_matching_paths() {
        let filter = TraceFilter::mount_point("/mnt/test")
            .unwrap()
            .exclude(Pattern::glob("/mnt/test/.journal*").unwrap());
        assert!(filter.path_relevant("/mnt/test/data"));
        assert!(!filter.path_relevant("/mnt/test/.journal0"));
    }

    #[test]
    fn per_pid_state_is_independent() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let mut noise = open_ev("/etc/hosts", 3);
        noise.pid = 2;
        let mut noise_write = ev("write", vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(1)], 1);
        noise_write.pid = 2;
        let mut good = open_ev("/mnt/test/f", 3);
        good.pid = 1;
        let mut good_write = ev("write", vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(1)], 1);
        good_write.pid = 1;
        let trace = Trace::from_events(vec![noise, good, noise_write, good_write]);
        let (kept, _) = filter.apply(&trace);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|e| e.pid == 1));
    }
}
