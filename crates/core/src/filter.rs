//! The trace filter: keeps only syscalls aimed at the tester's mount
//! point.
//!
//! LTTng records *every* syscall the tester makes, including bookkeeping
//! I/O on its own state files; IOCov filters by mount-point pathname
//! before analysis (§3). Path-carrying events are matched directly
//! against the configured patterns. Descriptor-carrying events (`read`,
//! `write`, `close`, `f*` variants) have no pathname, so the filter
//! tracks descriptor provenance: an `open` under the mount point makes
//! its returned descriptor relevant, propagating relevance to later
//! operations on that descriptor — including duplicates made by
//! `dup`/`dup2`/`dup3`, relative `openat` through relevant directory
//! descriptors, and `chdir` updates to cwd relevance. Two-path syscalls
//! (`rename`, `link`, `symlink`, and their `*at` variants) are kept when
//! *either* pathname is relevant, so renames into or out of the mount
//! point are never dropped. The decision logic lives in the private
//! `relevance` module, shared verbatim with the streaming analyzer.

use std::collections::HashMap;

use iocov_pattern::Pattern;
use iocov_trace::Trace;
use serde::{Deserialize, Serialize};

use crate::metrics::PipelineMetrics;
use crate::relevance::{self, PidState};

/// Statistics of one filtering pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Events inspected.
    pub total: usize,
    /// Events kept for analysis.
    pub kept: usize,
    /// Events dropped as irrelevant to the mount point.
    pub dropped: usize,
}

/// A mount-point trace filter.
///
/// ```
/// use iocov::TraceFilter;
///
/// # fn main() -> Result<(), iocov_pattern::PatternError> {
/// let filter = TraceFilter::mount_point("/mnt/test")?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceFilter {
    include: Vec<Pattern>,
    exclude: Vec<Pattern>,
}

impl TraceFilter {
    /// A filter that keeps everything.
    #[must_use]
    pub fn keep_all() -> Self {
        TraceFilter::default()
    }

    /// A filter for one mount point: keeps paths equal to or below
    /// `mount` ("the only setting that needs to be adjusted when applying
    /// IOCov to a new file system tester", §3).
    ///
    /// # Errors
    ///
    /// Returns a pattern error if `mount` contains regex
    /// metacharacters that fail to compile after escaping (practically
    /// impossible for normal paths).
    pub fn mount_point(mount: &str) -> Result<Self, iocov_pattern::PatternError> {
        let trimmed = mount.trim_end_matches('/');
        let mut escaped = String::new();
        for c in trimmed.chars() {
            if "\\^$.|?*+()[]{}".contains(c) {
                escaped.push('\\');
            }
            escaped.push(c);
        }
        let pattern = Pattern::regex(&format!("^{escaped}(/|$)"))?;
        Ok(TraceFilter {
            include: vec![pattern],
            exclude: Vec::new(),
        })
    }

    /// Adds an include pattern (paths must match at least one).
    #[must_use]
    pub fn include(mut self, pattern: Pattern) -> Self {
        self.include.push(pattern);
        self
    }

    /// Adds an exclude pattern (matching paths are dropped even when
    /// included).
    #[must_use]
    pub fn exclude(mut self, pattern: Pattern) -> Self {
        self.exclude.push(pattern);
        self
    }

    /// Whether this filter keeps every event (no patterns configured).
    #[must_use]
    pub fn is_keep_all(&self) -> bool {
        self.include.is_empty() && self.exclude.is_empty()
    }

    /// Whether an absolute path is relevant.
    #[must_use]
    pub fn path_relevant(&self, path: &str) -> bool {
        let included = self.include.is_empty() || self.include.iter().any(|p| p.is_match(path));
        included && !self.exclude.iter().any(|p| p.is_match(path))
    }

    /// Filters a trace, returning the kept events and statistics.
    #[must_use]
    pub fn apply(&self, trace: &Trace) -> (Trace, FilterStats) {
        self.apply_with_metrics(trace, None)
    }

    /// Filters a trace, recording events-read and per-reason drop counts
    /// into `metrics` when provided.
    #[must_use]
    pub fn apply_with_metrics(
        &self,
        trace: &Trace,
        metrics: Option<&PipelineMetrics>,
    ) -> (Trace, FilterStats) {
        let _timer = metrics.map(|m| m.time_stage("filter"));
        if let Some(m) = metrics {
            m.add_events_read(trace.len() as u64);
        }
        if self.include.is_empty() && self.exclude.is_empty() {
            // No patterns: everything is relevant, including descriptor
            // operations whose open was never observed.
            let stats = FilterStats {
                total: trace.len(),
                kept: trace.len(),
                dropped: 0,
            };
            return (trace.clone(), stats);
        }
        let mut states: HashMap<u32, PidState> = HashMap::new();
        let mut kept = Vec::new();
        for event in trace {
            let state = states.entry(event.pid).or_default();
            let dropped = relevance::event_drop_reason(self, state, event);
            relevance::update_state(state, event, dropped.is_none());
            match dropped {
                None => kept.push(event.clone()),
                Some(reason) => {
                    if let Some(m) = metrics {
                        m.record_drop(reason);
                    }
                }
            }
        }
        let stats = FilterStats {
            total: trace.len(),
            kept: kept.len(),
            dropped: trace.len() - kept.len(),
        };
        (Trace::from_events(kept), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iocov_trace::{ArgValue, TraceEvent};

    fn ev(name: &str, args: Vec<ArgValue>, retval: i64) -> TraceEvent {
        TraceEvent::build(name, 0, args, retval)
    }

    fn open_ev(path: &str, fd: i64) -> TraceEvent {
        ev(
            "open",
            vec![
                ArgValue::Path(path.into()),
                ArgValue::Flags(0),
                ArgValue::Mode(0),
            ],
            fd,
        )
    }

    #[test]
    fn keep_all_keeps_everything() {
        let filter = TraceFilter::keep_all();
        let trace = Trace::from_events(vec![open_ev("/anything", 3)]);
        let (kept, stats) = filter.apply(&trace);
        assert_eq!(kept.len(), 1);
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn mount_point_matches_subtree_not_prefix() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        assert!(filter.path_relevant("/mnt/test"));
        assert!(filter.path_relevant("/mnt/test/a/b"));
        assert!(!filter.path_relevant("/mnt/testother"));
        assert!(!filter.path_relevant("/var/log/x"));
    }

    #[test]
    fn path_events_filter_directly() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test/f", 3),
            open_ev("/etc/config", 4),
            ev(
                "mkdir",
                vec![ArgValue::Path("/mnt/test/d".into()), ArgValue::Mode(0o755)],
                0,
            ),
            ev(
                "truncate",
                vec![ArgValue::Path("/tmp/x".into()), ArgValue::Int(0)],
                0,
            ),
        ]);
        let (kept, stats) = filter.apply(&trace);
        assert_eq!(stats.kept, 2);
        assert!(kept
            .iter()
            .all(|e| e.primary_path().unwrap().starts_with("/mnt/test")));
    }

    #[test]
    fn fd_relevance_propagates_from_open_to_io() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test/f", 3),
            open_ev("/etc/hosts", 4),
            ev(
                "write",
                vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(10)],
                10,
            ),
            ev(
                "read",
                vec![ArgValue::Fd(4), ArgValue::Ptr(1), ArgValue::UInt(10)],
                10,
            ),
            ev("close", vec![ArgValue::Fd(3)], 0),
            ev("close", vec![ArgValue::Fd(4)], 0),
        ]);
        let (kept, stats) = filter.apply(&trace);
        let names: Vec<&str> = kept.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["open", "write", "close"]);
        assert_eq!(stats.dropped, 3);
    }

    #[test]
    fn closed_fd_relevance_does_not_leak_to_reused_fd() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test/f", 3),
            ev("close", vec![ArgValue::Fd(3)], 0),
            open_ev("/etc/hosts", 3), // fd number reused for noise
            ev(
                "write",
                vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(1)],
                1,
            ),
        ]);
        let (kept, _) = filter.apply(&trace);
        let names: Vec<&str> = kept.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["open", "close"]);
    }

    #[test]
    fn relative_openat_follows_dirfd_relevance() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test", 5),
            ev(
                "openat",
                vec![
                    ArgValue::Fd(5),
                    ArgValue::Path("sub/file".into()),
                    ArgValue::Flags(0),
                    ArgValue::Mode(0),
                ],
                6,
            ),
            ev(
                "write",
                vec![ArgValue::Fd(6), ArgValue::Ptr(1), ArgValue::UInt(2)],
                2,
            ),
            open_ev("/home", 7),
            ev(
                "openat",
                vec![
                    ArgValue::Fd(7),
                    ArgValue::Path("noise".into()),
                    ArgValue::Flags(0),
                    ArgValue::Mode(0),
                ],
                8,
            ),
            ev(
                "write",
                vec![ArgValue::Fd(8), ArgValue::Ptr(1), ArgValue::UInt(2)],
                2,
            ),
        ]);
        let (kept, _) = filter.apply(&trace);
        assert_eq!(
            kept.len(),
            3,
            "mount-relative chain kept, /home chain dropped"
        );
    }

    #[test]
    fn chdir_updates_cwd_relevance_for_relative_paths() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            ev("chdir", vec![ArgValue::Path("/mnt/test".into())], 0),
            open_ev("relative_file", 3),
            ev("chdir", vec![ArgValue::Path("/home".into())], 0),
            open_ev("other_file", 4),
        ]);
        let (kept, _) = filter.apply(&trace);
        let names: Vec<String> = kept
            .iter()
            .map(|e| e.primary_path().unwrap_or("").to_owned())
            .collect();
        assert_eq!(names, ["/mnt/test", "relative_file"]);
    }

    #[test]
    fn at_fdcwd_uses_cwd_relevance() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            ev("chdir", vec![ArgValue::Path("/mnt/test".into())], 0),
            ev(
                "openat",
                vec![
                    ArgValue::Fd(-100),
                    ArgValue::Path("f".into()),
                    ArgValue::Flags(0),
                    ArgValue::Mode(0),
                ],
                3,
            ),
        ]);
        let (kept, _) = filter.apply(&trace);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn failed_chdir_does_not_update_cwd() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            ev("chdir", vec![ArgValue::Path("/mnt/test".into())], 0),
            ev("chdir", vec![ArgValue::Path("/gone".into())], -2),
            open_ev("still_relevant", 3),
        ]);
        let (kept, _) = filter.apply(&trace);
        assert_eq!(kept.len(), 2, "failed chdir kept old cwd relevance");
    }

    #[test]
    fn exclude_patterns_remove_matching_paths() {
        let filter = TraceFilter::mount_point("/mnt/test")
            .unwrap()
            .exclude(Pattern::glob("/mnt/test/.journal*").unwrap());
        assert!(filter.path_relevant("/mnt/test/data"));
        assert!(!filter.path_relevant("/mnt/test/.journal0"));
    }

    #[test]
    fn dup_inherits_fd_provenance() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test/f", 3),
            ev("dup", vec![ArgValue::Fd(3)], 7),
            ev(
                "write",
                vec![ArgValue::Fd(7), ArgValue::Ptr(1), ArgValue::UInt(4)],
                4,
            ),
            open_ev("/etc/hosts", 8),
            ev("dup", vec![ArgValue::Fd(8)], 9),
            ev(
                "write",
                vec![ArgValue::Fd(9), ArgValue::Ptr(1), ArgValue::UInt(4)],
                4,
            ),
        ]);
        let (kept, stats) = filter.apply(&trace);
        let names: Vec<&str> = kept.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["open", "dup", "write"]);
        assert_eq!(stats.dropped, 3);
    }

    #[test]
    fn dup2_write_via_duped_fd_is_attributed() {
        // The acceptance scenario: open → dup2 → write via the duplicate.
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test/f", 3),
            ev("dup2", vec![ArgValue::Fd(3), ArgValue::Fd(10)], 10),
            ev(
                "write",
                vec![ArgValue::Fd(10), ArgValue::Ptr(1), ArgValue::UInt(8)],
                8,
            ),
            ev("close", vec![ArgValue::Fd(3)], 0),
            // The duplicate outlives the original's close.
            ev(
                "write",
                vec![ArgValue::Fd(10), ArgValue::Ptr(1), ArgValue::UInt(8)],
                8,
            ),
        ]);
        let (kept, stats) = filter.apply(&trace);
        assert_eq!(kept.len(), 5, "every event rides the duped provenance");
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn dup2_overwrites_target_fd_provenance() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test/f", 3),
            open_ev("/etc/hosts", 4),
            // dup2 noise over the relevant number: 3 now aliases /etc/hosts.
            ev("dup2", vec![ArgValue::Fd(4), ArgValue::Fd(3)], 3),
            ev(
                "write",
                vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(1)],
                1,
            ),
        ]);
        let (kept, _) = filter.apply(&trace);
        let names: Vec<&str> = kept.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["open"], "write through the redirected fd is noise");
    }

    #[test]
    fn failed_dup_tracks_nothing() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test/f", 3),
            ev("dup", vec![ArgValue::Fd(3)], -24), // EMFILE
            ev(
                "write",
                vec![ArgValue::Fd(22), ArgValue::Ptr(1), ArgValue::UInt(1)],
                1,
            ),
        ]);
        let (kept, _) = filter.apply(&trace);
        assert_eq!(
            kept.len(),
            2,
            "failed dup is itself relevant but tracks no fd"
        );
    }

    #[test]
    fn rename_into_mount_point_is_kept() {
        // The acceptance scenario: a rename whose *destination* is under
        // the mount point must be kept even though the source is not.
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            ev(
                "rename",
                vec![
                    ArgValue::Path("/tmp/staging".into()),
                    ArgValue::Path("/mnt/test/final".into()),
                ],
                0,
            ),
            ev(
                "rename",
                vec![
                    ArgValue::Path("/mnt/test/old".into()),
                    ArgValue::Path("/tmp/outside".into()),
                ],
                0,
            ),
            ev(
                "rename",
                vec![
                    ArgValue::Path("/tmp/a".into()),
                    ArgValue::Path("/tmp/b".into()),
                ],
                0,
            ),
        ]);
        let (kept, stats) = filter.apply(&trace);
        assert_eq!(
            kept.len(),
            2,
            "either-side relevance keeps both mount renames"
        );
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn link_and_symlink_count_every_path() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            ev(
                "link",
                vec![
                    ArgValue::Path("/etc/hosts".into()),
                    ArgValue::Path("/mnt/test/hosts_link".into()),
                ],
                0,
            ),
            // symlink's first argument is the target *string*, not a
            // pathname; only the link path decides relevance.
            ev(
                "symlink",
                vec![
                    ArgValue::Str("/mnt/test/target".into()),
                    ArgValue::Path("/tmp/outside_link".into()),
                ],
                0,
            ),
        ]);
        let (kept, _) = filter.apply(&trace);
        let names: Vec<&str> = kept.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["link"]);
    }

    #[test]
    fn renameat_resolves_each_path_through_its_own_dirfd() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test", 5),
            open_ev("/tmp", 6),
            // Source under /tmp, destination under the mount point.
            ev(
                "renameat",
                vec![
                    ArgValue::Fd(6),
                    ArgValue::Path("staging".into()),
                    ArgValue::Fd(5),
                    ArgValue::Path("final".into()),
                ],
                0,
            ),
            // Both sides under /tmp: noise.
            ev(
                "renameat",
                vec![
                    ArgValue::Fd(6),
                    ArgValue::Path("a".into()),
                    ArgValue::Fd(6),
                    ArgValue::Path("b".into()),
                ],
                0,
            ),
        ]);
        let (kept, _) = filter.apply(&trace);
        let names: Vec<&str> = kept.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["open", "renameat"]);
    }

    #[test]
    fn per_pid_state_is_independent() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let mut noise = open_ev("/etc/hosts", 3);
        noise.pid = 2;
        let mut noise_write = ev(
            "write",
            vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(1)],
            1,
        );
        noise_write.pid = 2;
        let mut good = open_ev("/mnt/test/f", 3);
        good.pid = 1;
        let mut good_write = ev(
            "write",
            vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(1)],
            1,
        );
        good_write.pid = 1;
        let trace = Trace::from_events(vec![noise, good, noise_write, good_write]);
        let (kept, _) = filter.apply(&trace);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|e| e.pid == 1));
    }
}
