//! The unified analysis pipeline: one builder, every execution shape.
//!
//! Four PRs of growth forked the paper's single §3 pipeline into a
//! matrix of hand-wired paths — strict vs. lossy decode, JSONL vs.
//! `.iotb`, serial vs. pooled, batch vs. checkpointed — each duplicated
//! at its call sites. This module collapses the matrix into two
//! orthogonal stages:
//!
//! ```text
//!   EventSource (iocov_trace::source)         Executor (this module)
//!  ┌───────────────────────────────┐   ┌─────────────────────────────┐
//!  │ open_source(path, options)    │   │ SerialExecutor              │
//!  │   ├─ JsonlSource (strict/lossy│   │   supervised in-thread scan │
//!  │   │   via ReadOptions)        │──▶│ PoolExecutor                │
//!  │   ├─ IotbSource  (strict/lossy│   │   pid-sharded worker pool   │
//!  │   │   via ReadOptions)        │   │   (ParallelStreamingAnalyzer│
//!  │   └─ IotbBlockSource (v2 only;│   │    + rotation at checkpoint │
//!  │       parallel block decode)  │   │    cuts)                    │
//!  │ next_batch / position /       │   │                             │
//!  │ skip_ledger                   │   │                             │
//!  └───────────────────────────────┘   └─────────────────────────────┘
//!                   │                                 │
//!                   └───────── Pipeline::run ─────────┘
//!                     (chunking, checkpoint cuts, stop-after,
//!                      parse-skip metrics, resume seeding)
//! ```
//!
//! A [`Pipeline`] is built from a [`PipelineBuilder`] and pulls batches
//! from any [`EventSource`], so every flag combination — any source ×
//! any worker count × checkpointing × metrics — runs the same loop.
//! The non-negotiable invariant, inherited from the analyzers
//! underneath: the serialized report is **byte-identical** across every
//! cell of that matrix to a plain serial run over the same events.
//!
//! Parallelism therefore layers at *two* independent stages. Upstream,
//! a block-indexed `.iotb` v2 container opened with
//! `SourceOptions::decode_jobs > 1` decodes blocks on worker threads
//! inside `IotbBlockSource`, but reassembles them in file order before
//! `next_batch` returns — so to this module it is indistinguishable
//! from a serial source. Downstream, [`PoolExecutor`] shards the
//! decoded events by pid. Byte-identity composes because each stage
//! preserves event order at its boundary; no cell of the matrix (any
//! decode-jobs × any analysis-jobs) can perturb the report.
//!
//! # Checkpoint cuts
//!
//! [`Executor::cut`] returns the *cumulative* `(report, pid states)`
//! pair a [`CheckpointDoc`] needs. The serial executor rotates its
//! incarnation (finish, merge into the running base, restart from the
//! captured states — the exact resume invariant the checkpoint tests
//! prove); the pool executor drains the worker pool the same way and
//! seeds its successor with
//! [`ParallelStreamingAnalyzer::with_base_states`]. Rotation is also
//! what makes resume seeding free: a resumed run is just a pipeline
//! whose executor starts from the checkpoint's `(report, states)`
//! instead of empty ones.

use std::collections::BTreeMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use iocov_trace::{EventBatch, EventSource, SkippedLine, StrInterner, TraceEvent, TraceIoError};

use crate::checkpoint::{CheckpointDoc, PidStateSnapshot};
use crate::coverage::AnalysisReport;
use crate::filter::TraceFilter;
use crate::metrics::{PipelineMetrics, ShardFailureRecord};
use crate::parallel::{
    panic_message, ParallelStreamingAnalyzer, ShardError, ShardHook, SupervisedScanGuard,
    SupervisorPolicy,
};
use crate::session::{AnalysisSession, Driver};
use crate::streaming::StreamingAnalyzer;

/// Default batch size pulled from the source per executor push.
pub const DEFAULT_CHUNK: usize = 4096;

/// An execution strategy for the analysis stage: consumes columnar
/// event batches, yields cumulative state at checkpoint cuts, and
/// produces the final report plus a shard-failure manifest.
///
/// Both implementations are *supervised*: a panicking scan is replayed
/// from retained batches per [`SupervisorPolicy`], and exhausting the
/// restart budget degrades to a partial report instead of aborting.
pub trait Executor {
    /// Feeds one owned columnar batch of events.
    fn push(&mut self, batch: EventBatch);

    /// A checkpoint cut: the cumulative report and per-pid relevance
    /// states over everything pushed so far. The executor may rotate
    /// internal state; subsequent pushes continue seamlessly.
    fn cut(&mut self) -> (AnalysisReport, BTreeMap<u32, PidStateSnapshot>);

    /// Drains the executor, returning the final report and the
    /// shard-failure manifest (empty on a fault-free run).
    fn finish(self: Box<Self>) -> (AnalysisReport, Vec<ShardFailureRecord>);
}

/// In-thread supervised execution — the `--jobs 1` path, with the same
/// restart-on-panic semantics as a one-worker pool but zero thread or
/// channel overhead (it IS a [`StreamingAnalyzer`] scan wrapped in
/// `catch_unwind` + batch replay).
pub struct SerialExecutor {
    filter: TraceFilter,
    metrics: Option<Arc<PipelineMetrics>>,
    policy: SupervisorPolicy,
    hook: Option<ShardHook>,
    interner: Arc<StrInterner>,
    /// Current incarnation; `None` before the first push, after a
    /// panic (until the replay respawns it), and once `gave_up`.
    analyzer: Option<StreamingAnalyzer>,
    /// The incarnation's private metrics, absorbed into the shared
    /// instance only on clean completion (cut or finish) — exactly-once
    /// across restarts, like the pool.
    local: Option<Arc<PipelineMetrics>>,
    /// Batches fed since the last cut, retained (`Arc`-shared) as the
    /// replay log for restarts.
    log: Vec<Arc<EventBatch>>,
    /// Log batches the current incarnation has consumed.
    seen: usize,
    /// Reports merged out of previous cuts (and a resumed checkpoint).
    base_report: AnalysisReport,
    /// Cumulative pid states at the last cut (or resume), the seed for
    /// every incarnation.
    base_states: BTreeMap<u32, PidStateSnapshot>,
    restarts: u32,
    gave_up: bool,
    last_error: Option<String>,
}

impl SerialExecutor {
    /// A serial executor; `resume` seeds the cumulative report and pid
    /// states from a checkpoint.
    #[must_use]
    pub fn new(
        filter: TraceFilter,
        metrics: Option<Arc<PipelineMetrics>>,
        policy: SupervisorPolicy,
        hook: Option<ShardHook>,
        resume: Option<(AnalysisReport, BTreeMap<u32, PidStateSnapshot>)>,
    ) -> Self {
        let (base_report, base_states) = resume.unwrap_or_default();
        SerialExecutor {
            filter,
            metrics,
            policy,
            hook,
            interner: Arc::new(StrInterner::new()),
            analyzer: None,
            local: None,
            log: Vec::new(),
            seen: 0,
            base_report,
            base_states,
            restarts: 0,
            gave_up: false,
            last_error: None,
        }
    }

    /// Spawns a fresh incarnation seeded with the base states.
    fn incarnate(&mut self) {
        let local = self
            .metrics
            .as_ref()
            .map(|_| Arc::new(PipelineMetrics::default()));
        let mut analyzer =
            StreamingAnalyzer::with_interner(self.filter.clone(), Arc::clone(&self.interner));
        if let Some(m) = &local {
            analyzer = analyzer.with_metrics(Arc::clone(m));
        }
        analyzer.restore_pid_states(&self.base_states);
        self.analyzer = Some(analyzer);
        self.local = local;
        self.seen = 0;
    }

    /// Drives the current incarnation through every unconsumed log
    /// batch, restarting (fresh incarnation, full replay) on panic up
    /// to the policy's budget.
    fn drive(&mut self) {
        while !self.gave_up && (self.seen < self.log.len() || self.analyzer.is_none()) {
            if self.analyzer.is_none() {
                self.incarnate();
                continue;
            }
            let idx = self.seen;
            let Some(batch) = self.log.get(idx).map(Arc::clone) else {
                return;
            };
            let mut analyzer = self.analyzer.take().expect("incarnation exists");
            let hook = self.hook.clone();
            let local = self.local.clone();
            let tick = idx as u64;
            let result = catch_unwind(AssertUnwindSafe(move || {
                let _supervised = SupervisedScanGuard::enter();
                let _timer = local.as_deref().map(|m| m.time_stage("analyze"));
                if let Some(hook) = &hook {
                    hook(0, tick);
                }
                for event in batch.iter() {
                    analyzer.push(&event);
                }
                analyzer
            }));
            match result {
                Ok(analyzer) => {
                    self.analyzer = Some(analyzer);
                    self.seen = idx + 1;
                }
                Err(payload) => {
                    self.last_error =
                        Some(ShardError::Panicked(panic_message(payload.as_ref())).to_string());
                    // The panic poisoned the incarnation mid-batch; its
                    // half-counted private metrics die with it.
                    self.local = None;
                    if self.restarts >= self.policy.max_restarts {
                        self.gave_up = true;
                        return;
                    }
                    self.restarts += 1;
                    if let Some(metrics) = &self.metrics {
                        metrics.record_shard_restart();
                    }
                    std::thread::sleep(self.policy.backoff(self.restarts));
                }
            }
        }
    }

    /// Completes the current incarnation: merges its report into the
    /// base, captures its pid states, absorbs its private metrics, and
    /// clears the replay log.
    fn rotate(&mut self) {
        self.drive();
        if let Some(analyzer) = self.analyzer.take() {
            self.base_states = analyzer.pid_states();
            self.base_report.merge(&analyzer.finish());
            if let (Some(shared), Some(local)) = (&self.metrics, self.local.take()) {
                shared.absorb(&local.snapshot());
                shared.absorb_stage_timings(&local.stage_timings());
            }
        }
        self.log.clear();
        self.seen = 0;
    }

    fn manifest(&self) -> Vec<ShardFailureRecord> {
        if self.restarts > 0 || self.gave_up {
            vec![ShardFailureRecord {
                shard: 0,
                restarts: self.restarts,
                gave_up: self.gave_up,
                last_error: self.last_error.clone().unwrap_or_default(),
            }]
        } else {
            Vec::new()
        }
    }
}

impl Executor for SerialExecutor {
    fn push(&mut self, batch: EventBatch) {
        if self.gave_up {
            return;
        }
        self.log.push(Arc::new(batch));
        self.drive();
    }

    fn cut(&mut self) -> (AnalysisReport, BTreeMap<u32, PidStateSnapshot>) {
        self.rotate();
        (self.base_report.clone(), self.base_states.clone())
    }

    fn finish(mut self: Box<Self>) -> (AnalysisReport, Vec<ShardFailureRecord>) {
        self.rotate();
        let failures = self.manifest();
        if let Some(metrics) = &self.metrics {
            for failure in &failures {
                metrics.record_shard_failure(failure.clone());
            }
        }
        (self.base_report, failures)
    }
}

/// Pool execution over the supervised pid-sharded worker pool. A
/// checkpoint cut drains the live pool (absorbing its counters and
/// collecting its per-shard pid states) and lazily spawns a successor
/// seeded with those states — the pool analogue of the serial
/// executor's rotation.
pub struct PoolExecutor {
    filter: TraceFilter,
    workers: usize,
    metrics: Option<Arc<PipelineMetrics>>,
    policy: SupervisorPolicy,
    hook: Option<ShardHook>,
    /// Live pool; spawned lazily on the first push after construction
    /// or a cut.
    pool: Option<ParallelStreamingAnalyzer>,
    base_report: AnalysisReport,
    base_states: BTreeMap<u32, PidStateSnapshot>,
    /// Failure manifest accumulated across pool rotations, keyed by
    /// shard.
    failures: BTreeMap<usize, ShardFailureRecord>,
}

impl PoolExecutor {
    /// A pool executor; `resume` seeds the cumulative report and pid
    /// states from a checkpoint.
    #[must_use]
    pub fn new(
        filter: TraceFilter,
        workers: usize,
        metrics: Option<Arc<PipelineMetrics>>,
        policy: SupervisorPolicy,
        hook: Option<ShardHook>,
        resume: Option<(AnalysisReport, BTreeMap<u32, PidStateSnapshot>)>,
    ) -> Self {
        let (base_report, base_states) = resume.unwrap_or_default();
        PoolExecutor {
            filter,
            workers,
            metrics,
            policy,
            hook,
            pool: None,
            base_report,
            base_states,
            failures: BTreeMap::new(),
        }
    }

    fn make_pool(&self) -> ParallelStreamingAnalyzer {
        let mut pool = ParallelStreamingAnalyzer::new(self.filter.clone(), self.workers)
            .with_policy(self.policy);
        if let Some(hook) = &self.hook {
            pool = pool.with_hook(Arc::clone(hook));
        }
        if let Some(metrics) = &self.metrics {
            pool = pool.with_metrics(Arc::clone(metrics));
        }
        if !self.base_states.is_empty() {
            pool = pool.with_base_states(self.base_states.clone());
        }
        pool
    }

    /// Drains the live pool into the cumulative base, if one exists.
    fn rotate(&mut self) {
        if let Some(pool) = self.pool.take() {
            let (report, failures, states) = pool.finish_with_states();
            self.base_report.merge(&report);
            self.base_states = states;
            for f in failures {
                let entry = self
                    .failures
                    .entry(f.shard)
                    .or_insert_with(|| ShardFailureRecord {
                        shard: f.shard,
                        restarts: 0,
                        gave_up: false,
                        last_error: String::new(),
                    });
                entry.restarts += f.restarts;
                entry.gave_up |= f.gave_up;
                if !f.last_error.is_empty() {
                    entry.last_error = f.last_error;
                }
            }
        }
    }
}

impl Executor for PoolExecutor {
    fn push(&mut self, batch: EventBatch) {
        if self.pool.is_none() {
            self.pool = Some(self.make_pool());
        }
        self.pool
            .as_mut()
            .expect("pool just created")
            .push_shared(batch);
    }

    fn cut(&mut self) -> (AnalysisReport, BTreeMap<u32, PidStateSnapshot>) {
        self.rotate();
        (self.base_report.clone(), self.base_states.clone())
    }

    fn finish(mut self: Box<Self>) -> (AnalysisReport, Vec<ShardFailureRecord>) {
        self.rotate();
        (self.base_report, self.failures.into_values().collect())
    }
}

/// When (and where) to persist resumable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Write a checkpoint every this many events.
    pub every: u64,
    /// Checkpoint file path.
    pub path: PathBuf,
}

/// Why a pipeline run failed.
#[derive(Debug)]
pub enum PipelineError {
    /// The event source failed (open, decode, or I/O).
    Source(TraceIoError),
    /// Persisting a checkpoint failed.
    Checkpoint {
        /// The checkpoint path being written.
        path: PathBuf,
        /// The underlying I/O error.
        error: io::Error,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Source(e) => write!(f, "{e}"),
            PipelineError::Checkpoint { path, error } => {
                write!(f, "cannot write checkpoint {}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Source(e) => Some(e),
            PipelineError::Checkpoint { error, .. } => Some(error),
        }
    }
}

/// Outcome of a pipeline run.
#[derive(Debug)]
pub struct PipelineRun {
    /// The merged coverage report (default/empty when `stopped`).
    pub report: AnalysisReport,
    /// Shard-failure manifest (empty on a fault-free run or when
    /// `stopped`).
    pub failures: Vec<ShardFailureRecord>,
    /// The source's lossy-skip ledger, including any skips restored
    /// from a resumed checkpoint.
    pub skipped: Vec<SkippedLine>,
    /// Events consumed, counted from the start of the trace (a resumed
    /// run starts at the checkpoint's count).
    pub events: u64,
    /// Whether `stop_after` ended the run before end-of-input
    /// (simulated kill: no report is produced).
    pub stopped: bool,
}

/// Configures and builds a [`Pipeline`].
pub struct PipelineBuilder {
    filter: TraceFilter,
    mount: Option<String>,
    jobs: usize,
    chunk: usize,
    policy: SupervisorPolicy,
    hook: Option<ShardHook>,
    metrics: Option<Arc<PipelineMetrics>>,
    checkpoint: Option<CheckpointPolicy>,
    resume: Option<CheckpointDoc>,
    stop_after: Option<u64>,
}

impl PipelineBuilder {
    /// A builder over `filter` with serial execution and no
    /// checkpointing.
    #[must_use]
    pub fn new(filter: TraceFilter) -> Self {
        PipelineBuilder {
            filter,
            mount: None,
            jobs: 1,
            chunk: DEFAULT_CHUNK,
            policy: SupervisorPolicy::default(),
            hook: None,
            metrics: None,
            checkpoint: None,
            resume: None,
            stop_after: None,
        }
    }

    /// Records the mount point the filter was built from, for
    /// checkpoint provenance.
    #[must_use]
    pub fn mount(mut self, mount: Option<String>) -> Self {
        self.mount = mount;
        self
    }

    /// Worker count (1 = in-thread serial execution).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Events pulled from the source per executor push.
    #[must_use]
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Supervision policy for the executor.
    #[must_use]
    pub fn policy(mut self, policy: SupervisorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Worker progress hook (fault injection).
    #[must_use]
    pub fn hook(mut self, hook: ShardHook) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Shared pipeline metrics.
    #[must_use]
    pub fn metrics(mut self, metrics: Arc<PipelineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Periodic checkpointing policy.
    #[must_use]
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Seeds the run from a loaded checkpoint (the caller opens the
    /// source at the matching position).
    #[must_use]
    pub fn resume(mut self, doc: CheckpointDoc) -> Self {
        self.resume = Some(doc);
        self
    }

    /// Stop (simulating a kill) after this many events.
    #[must_use]
    pub fn stop_after(mut self, events: u64) -> Self {
        self.stop_after = Some(events);
        self
    }

    /// Builds the resident session alone: routes to the serial or pool
    /// executor and seeds it (and the metrics) from any resume
    /// checkpoint. This is the entry point for callers that feed
    /// events themselves (`iocov serve`, incremental oracles); batch
    /// callers use [`build`](Self::build).
    #[must_use]
    pub fn build_session(self) -> AnalysisSession {
        let events = self.resume.as_ref().map_or(0, |doc| doc.cursor.events);
        let seed = self.resume.map(|doc| {
            // The checkpointed snapshot carries the counters for
            // everything before the cursor; live metrics continue from
            // there.
            if let Some(m) = &self.metrics {
                m.absorb(&doc.metrics);
            }
            (doc.report, doc.pid_states)
        });
        // The stall watchdog lives in the pooled pipeline, so a shard
        // timeout routes through it even at one worker.
        let executor: Box<dyn Executor> = if self.jobs > 1 || self.policy.shard_timeout.is_some() {
            Box::new(PoolExecutor::new(
                self.filter,
                self.jobs,
                self.metrics.clone(),
                self.policy,
                self.hook,
                seed,
            ))
        } else {
            Box::new(SerialExecutor::new(
                self.filter,
                self.metrics.clone(),
                self.policy,
                self.hook,
                seed,
            ))
        };
        AnalysisSession::new(executor, self.mount, self.metrics, self.checkpoint, events)
    }

    /// Builds the pipeline: a [`build_session`](Self::build_session)
    /// session paired with the batch driver's chunk and stop-after
    /// configuration.
    #[must_use]
    pub fn build(self) -> Pipeline {
        let chunk = self.chunk;
        let stop_after = self.stop_after;
        Pipeline {
            session: self.build_session(),
            chunk,
            stop_after,
        }
    }
}

/// A configured analysis pipeline: an [`AnalysisSession`] paired with
/// the batch [`Driver`]'s configuration. Drive it from an
/// [`EventSource`] with [`run`](Self::run), or push in-memory events
/// directly with [`push_owned`](Self::push_owned) +
/// [`finish`](Self::finish) (the workload/bench path).
pub struct Pipeline {
    session: AnalysisSession,
    chunk: usize,
    stop_after: Option<u64>,
}

impl Pipeline {
    /// Feeds one owned chunk of in-memory events, packing it into a
    /// columnar batch (no source, no checkpointing counters).
    pub fn push_owned(&mut self, events: Vec<TraceEvent>) {
        self.session.feed_owned(events);
    }

    /// Feeds one columnar batch directly (no source, no checkpointing
    /// counters) — the allocation-free twin of
    /// [`push_owned`](Self::push_owned).
    pub fn push_batch(&mut self, batch: EventBatch) {
        self.session.feed(batch);
    }

    /// The resident session underneath, for mid-stream cuts.
    pub fn session_mut(&mut self) -> &mut AnalysisSession {
        &mut self.session
    }

    /// Unwraps the resident session, discarding the driver
    /// configuration.
    #[must_use]
    pub fn into_session(self) -> AnalysisSession {
        self.session
    }

    /// Drains the executor: the final report and failure manifest.
    #[must_use]
    pub fn finish(self) -> (AnalysisReport, Vec<ShardFailureRecord>) {
        self.session.finish()
    }

    /// Pulls the source to end-of-input (or `stop_after`) through the
    /// batch [`Driver`], pushing batches through the executor, cutting
    /// checkpoints at every `checkpoint.every` boundary, and accounting
    /// lossy parse skips to the metrics.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Source`] on a read/decode failure,
    /// [`PipelineError::Checkpoint`] when a checkpoint cannot be
    /// persisted.
    pub fn run(self, source: &mut dyn EventSource) -> Result<PipelineRun, PipelineError> {
        Driver::new(self.session, self.chunk, self.stop_after).run(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use iocov_trace::{ArgValue, JsonlSource, ReadOptions, Trace};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn multi_pid_trace(pids: u32, per_pid: usize) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for round in 0..per_pid {
            for pid in 0..pids {
                let fd = 3 + round as i32;
                let root = if pid % 2 == 0 { "/mnt/test" } else { "/noise" };
                let mut step = vec![
                    TraceEvent::build(
                        "open",
                        2,
                        vec![
                            ArgValue::Path(format!("{root}/f{round}")),
                            ArgValue::Flags(0o101),
                            ArgValue::Mode(0o644),
                        ],
                        i64::from(fd),
                    ),
                    TraceEvent::build(
                        "dup2",
                        33,
                        vec![ArgValue::Fd(fd), ArgValue::Fd(fd + 64)],
                        i64::from(fd + 64),
                    ),
                    TraceEvent::build(
                        "write",
                        1,
                        vec![
                            ArgValue::Fd(fd + 64),
                            ArgValue::Ptr(1),
                            ArgValue::UInt(1 << (round % 16)),
                        ],
                        1 << (round % 16),
                    ),
                    TraceEvent::build("close", 3, vec![ArgValue::Fd(fd)], 0),
                ];
                for event in &mut step {
                    event.pid = pid;
                }
                events.extend(step);
            }
        }
        events
    }

    fn filter() -> TraceFilter {
        TraceFilter::mount_point("/mnt/test").unwrap()
    }

    fn fast_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            max_restarts: 3,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(2),
            shard_timeout: None,
        }
    }

    fn panic_hook(shard: usize, tick: u64, times: u64) -> ShardHook {
        let fired = Arc::new(AtomicU64::new(0));
        Arc::new(move |w, t| {
            if w == shard && t == tick && fired.fetch_add(1, Ordering::SeqCst) < times {
                panic!("injected pipeline panic (shard {w}, tick {t})");
            }
        })
    }

    #[test]
    fn builder_matches_serial_analyzer_at_every_job_count() {
        let events = multi_pid_trace(5, 6);
        let trace = Trace::from_events(events.clone());
        let serial = serde_json::to_string(&Analyzer::new(filter()).analyze(&trace)).unwrap();
        for jobs in [1, 2, 4] {
            let mut pipeline = PipelineBuilder::new(filter()).jobs(jobs).build();
            for chunk in events.chunks(7) {
                pipeline.push_owned(chunk.to_vec());
            }
            let (report, failures) = pipeline.finish();
            assert!(failures.is_empty());
            assert_eq!(
                serial,
                serde_json::to_string(&report).unwrap(),
                "diverged at {jobs} jobs"
            );
        }
    }

    #[test]
    fn run_over_source_matches_in_memory_push() {
        let events = multi_pid_trace(4, 5);
        let trace = Trace::from_events(events.clone());
        let mut bytes = Vec::new();
        iocov_trace::write_jsonl(&mut bytes, &trace).unwrap();
        let expected = Analyzer::new(filter()).analyze(&trace);
        let mut source = JsonlSource::new(&bytes[..], ReadOptions::default());
        let run = PipelineBuilder::new(filter())
            .chunk(13)
            .build()
            .run(&mut source)
            .unwrap();
        assert_eq!(run.events, events.len() as u64);
        assert!(!run.stopped);
        assert_eq!(expected, run.report);
    }

    #[test]
    fn serial_executor_panic_recovers_byte_identical() {
        let events = multi_pid_trace(3, 8);
        let trace = Trace::from_events(events.clone());
        let serial = serde_json::to_string(&Analyzer::new(filter()).analyze(&trace)).unwrap();
        let mut pipeline = PipelineBuilder::new(filter())
            .policy(fast_policy())
            .hook(panic_hook(0, 1, 1))
            .build();
        for chunk in events.chunks(events.len() / 3) {
            pipeline.push_owned(chunk.to_vec());
        }
        let (report, failures) = pipeline.finish();
        assert_eq!(serial, serde_json::to_string(&report).unwrap());
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].shard, 0);
        assert_eq!(failures[0].restarts, 1);
        assert!(!failures[0].gave_up);
    }

    #[test]
    fn serial_executor_exhausted_budget_degrades() {
        let events = multi_pid_trace(3, 2);
        let metrics = Arc::new(PipelineMetrics::default());
        let mut pipeline = PipelineBuilder::new(filter())
            .policy(fast_policy())
            .metrics(Arc::clone(&metrics))
            .hook(panic_hook(0, 0, u64::MAX))
            .build();
        pipeline.push_owned(events);
        let (report, failures) = pipeline.finish();
        assert_eq!(report, AnalysisReport::default());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].gave_up);
        assert_eq!(failures[0].restarts, fast_policy().max_restarts);
        let snap = metrics.snapshot();
        assert_eq!(snap.shard_restarts, u64::from(fast_policy().max_restarts));
        assert_eq!(snap.shard_failures.len(), 1);
        // No half-counted incarnation leaked into the shared counters.
        assert_eq!(snap.events_read, 0);
    }

    #[test]
    fn checkpoint_cuts_preserve_byte_identity_serial_and_pool() {
        // Rotating the executor at checkpoint cuts (the new pool
        // snapshot path included) must not disturb the final report.
        let events = multi_pid_trace(5, 6);
        let trace = Trace::from_events(events.clone());
        let serial = serde_json::to_string(&Analyzer::new(filter()).analyze(&trace)).unwrap();
        for jobs in [1, 2, 4] {
            let mut pipeline = PipelineBuilder::new(filter()).jobs(jobs).build();
            let mut states_at_cuts = Vec::new();
            for chunk in events.chunks(11) {
                pipeline.push_owned(chunk.to_vec());
                states_at_cuts.push(pipeline.session_mut().cut());
            }
            let (report, failures) = pipeline.finish();
            assert!(failures.is_empty());
            assert_eq!(
                serial,
                serde_json::to_string(&report).unwrap(),
                "diverged at {jobs} jobs"
            );
            // The last cut already carries the full report.
            let (last_report, _) = states_at_cuts.last().unwrap();
            assert_eq!(serial, serde_json::to_string(last_report).unwrap());
        }
    }

    #[test]
    fn resume_from_cut_matches_uninterrupted_for_both_executors() {
        let events = multi_pid_trace(4, 6);
        let trace = Trace::from_events(events.clone());
        let serial = serde_json::to_string(&Analyzer::new(filter()).analyze(&trace)).unwrap();
        let cut_at = events.len() / 2;
        for jobs in [1, 3] {
            let mut head = PipelineBuilder::new(filter()).jobs(jobs).build();
            head.push_owned(events[..cut_at].to_vec());
            let (head_report, head_states) = head.session_mut().cut();
            let doc = CheckpointDoc {
                report: head_report,
                pid_states: head_states,
                ..CheckpointDoc::default()
            };
            // Round-trip through serialization like a real resume.
            let doc: CheckpointDoc =
                serde_json::from_str(&serde_json::to_string(&doc).unwrap()).unwrap();
            let mut tail = PipelineBuilder::new(filter())
                .jobs(jobs)
                .resume(doc)
                .build();
            tail.push_owned(events[cut_at..].to_vec());
            let (report, _) = tail.finish();
            assert_eq!(
                serial,
                serde_json::to_string(&report).unwrap(),
                "diverged at {jobs} jobs"
            );
        }
    }

    #[test]
    fn run_writes_checkpoints_and_stop_simulates_kill() {
        let events = multi_pid_trace(2, 3);
        let trace = Trace::from_events(events.clone());
        let mut bytes = Vec::new();
        iocov_trace::write_jsonl(&mut bytes, &trace).unwrap();
        let path =
            std::env::temp_dir().join(format!("iocov-pipeline-test-{}.iockpt", std::process::id()));
        let mut source = JsonlSource::new(&bytes[..], ReadOptions::default());
        let run = PipelineBuilder::new(filter())
            .checkpoint(CheckpointPolicy {
                every: 4,
                path: path.clone(),
            })
            .stop_after(10)
            .build()
            .run(&mut source)
            .unwrap();
        assert!(run.stopped);
        assert_eq!(run.events, 10);
        let doc = crate::checkpoint::read_checkpoint(&path).unwrap();
        assert_eq!(doc.cursor.events, 8, "last boundary before the stop");

        // Resume from the checkpoint over a cursor seeked to its
        // offset: byte-identical to an uninterrupted run.
        let full = serde_json::to_string(&Analyzer::new(filter()).analyze(&trace)).unwrap();
        let offset = usize::try_from(doc.cursor.byte_offset).unwrap();
        let mut source =
            JsonlSource::resume(&bytes[offset..], ReadOptions::default(), doc.cursor.clone());
        let resumed = PipelineBuilder::new(filter())
            .resume(doc)
            .build()
            .run(&mut source)
            .unwrap();
        assert_eq!(full, serde_json::to_string(&resumed.report).unwrap());
        let _ = std::fs::remove_file(&path);
    }
}
