//! Per-process relevance state, shared by the batch filter and the
//! streaming analyzer.
//!
//! [`TraceFilter::apply`](crate::TraceFilter::apply) and
//! [`StreamingAnalyzer::push`](crate::StreamingAnalyzer::push) must make
//! the same keep/drop decision for every event, or chunked analysis
//! diverges from batch analysis. Both therefore call into this module:
//! [`event_drop_reason`] decides whether one event touches the mount
//! point (and why not, for the metrics layer), and [`update_state`]
//! propagates descriptor and cwd provenance after the decision.
//!
//! Provenance rules:
//!
//! * `open`/`openat`/`openat2`/`creat` — the returned descriptor
//!   inherits the relevance of the opened path.
//! * `dup`/`dup2`/`dup3` — the new descriptor inherits the *source*
//!   descriptor's provenance, so I/O through a duplicated descriptor is
//!   attributed exactly like I/O through the original.
//! * `close` — forgets the descriptor (a later reuse of the number by an
//!   unrelated `open` must not inherit stale provenance).
//! * `chdir`/`fchdir` — update whether the cwd is under the mount point,
//!   which decides relative-path relevance.
//!
//! Relevance rules:
//!
//! * An event with pathname arguments is relevant when **any** of them
//!   resolves under the mount point — two-path syscalls (`rename`,
//!   `link`, `symlink` and their `*at` variants) count either side, so a
//!   rename *into* the mount point is kept even though its source is
//!   outside. A relative pathname resolves through the immediately
//!   preceding descriptor argument when there is one (the `*at` dirfd
//!   convention), and through the cwd otherwise.
//! * An event with no pathname argument is relevant when its leading
//!   descriptor argument is.

use std::collections::HashMap;

use iocov_trace::{ArgView, EventView};

use crate::filter::TraceFilter;
use crate::metrics::DropReason;

/// `AT_FDCWD` without depending on the vfs crate directly.
pub(crate) const AT_FDCWD: i32 = -100;

/// Per-process relevance state while walking a trace.
#[derive(Debug, Default, Clone)]
pub(crate) struct PidState {
    /// Descriptor → does it originate under the mount point?
    fds: HashMap<i32, bool>,
    /// Whether the process cwd is under the mount point.
    cwd_relevant: bool,
}

impl PidState {
    /// Relevance of a descriptor, treating `AT_FDCWD` as the cwd.
    fn fd_relevant(&self, fd: i32) -> bool {
        if fd == AT_FDCWD {
            self.cwd_relevant
        } else {
            self.fds.get(&fd).copied().unwrap_or(false)
        }
    }

    /// A deterministic, serializable copy of this state (for
    /// checkpointing).
    pub(crate) fn snapshot(&self) -> crate::checkpoint::PidStateSnapshot {
        crate::checkpoint::PidStateSnapshot {
            fds: self.fds.iter().map(|(&fd, &rel)| (fd, rel)).collect(),
            cwd_relevant: self.cwd_relevant,
        }
    }

    /// Reconstructs the state a snapshot was taken from.
    pub(crate) fn restore(snapshot: &crate::checkpoint::PidStateSnapshot) -> PidState {
        PidState {
            fds: snapshot.fds.iter().map(|(&fd, &rel)| (fd, rel)).collect(),
            cwd_relevant: snapshot.cwd_relevant,
        }
    }
}

/// Classifies one event: `None` when it is relevant to the mount point,
/// otherwise the [`DropReason`] the metrics layer should count.
pub(crate) fn event_drop_reason<E: EventView + ?Sized>(
    filter: &TraceFilter,
    state: &PidState,
    event: &E,
) -> Option<DropReason> {
    let mut saw_path = false;
    for i in 0..event.arg_count() {
        let Some(ArgView::Path(path)) = event.arg(i) else {
            continue;
        };
        saw_path = true;
        let relevant = if path.starts_with('/') {
            filter.path_relevant(path)
        } else {
            // Relative path: relevance flows from the base directory —
            // the dirfd argument directly before the path for `*at`
            // calls, the cwd for plain calls.
            match i.checked_sub(1).and_then(|j| event.arg(j)) {
                Some(ArgView::Fd(dirfd)) => state.fd_relevant(dirfd),
                _ => state.cwd_relevant,
            }
        };
        if relevant {
            return None;
        }
    }
    if saw_path {
        return Some(DropReason::WrongMount);
    }
    // No path: relevance flows from the descriptor argument.
    match event.arg(0) {
        Some(ArgView::Fd(fd)) if state.fd_relevant(fd) => None,
        _ => Some(DropReason::IrrelevantFd),
    }
}

/// Propagates descriptor/cwd provenance after the event.
pub(crate) fn update_state<E: EventView + ?Sized>(state: &mut PidState, event: &E, relevant: bool) {
    if event.retval() < 0 {
        return; // failed calls change no kernel state
    }
    match event.name() {
        "open" | "openat" | "creat" | "openat2" => {
            state.fds.insert(event.retval() as i32, relevant);
        }
        "dup" | "dup2" | "dup3" => {
            // The duplicate aliases the source's open file description,
            // so it inherits the source's provenance (dup2/dup3 also
            // implicitly close the target number; the insert overwrites
            // whatever the number previously tracked).
            if let Some(ArgView::Fd(oldfd)) = event.arg(0) {
                let provenance = state.fd_relevant(oldfd);
                state.fds.insert(event.retval() as i32, provenance);
            }
        }
        "close" => {
            if let Some(ArgView::Fd(fd)) = event.arg(0) {
                state.fds.remove(&fd);
            }
        }
        "chdir" => {
            state.cwd_relevant = relevant;
        }
        "fchdir" => {
            if let Some(ArgView::Fd(fd)) = event.arg(0) {
                state.cwd_relevant = state.fd_relevant(fd);
            }
        }
        _ => {}
    }
}
