//! Crash-resumable analysis checkpoints (the `.iockpt` format).
//!
//! A long streaming analysis holds three pieces of state: the input
//! cursor (byte offset + lossy-skip ledger, [`CursorState`]), the
//! per-process relevance states (descriptor provenance + cwd,
//! [`PidStateSnapshot`]), and the accumulated coverage
//! ([`AnalysisReport`] — every aggregate is an order-independent sum, so
//! a materialized prefix report merged with the report over the
//! remaining events is *identical* to an uninterrupted run). A
//! [`CheckpointDoc`] bundles all three plus the pipeline-metrics
//! snapshot, and [`write_checkpoint`] persists it so a killed run can
//! continue from the last checkpoint instead of starting over.
//!
//! # On-disk layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"IOCKPT\r\n"  (CRLF translation detector)
//! 8       4     format version, u32 LE
//! 12      8     payload length, u64 LE
//! 20      n     payload: CheckpointDoc as JSON
//! 20+n    8     FNV-1a 64 checksum of the payload, u64 LE
//! ```
//!
//! Durability contract: the document is written to a sibling temporary
//! file, fsynced, and atomically renamed over the target, so the file at
//! the checkpoint path is always *some* complete checkpoint — a crash
//! mid-write can lose the newest checkpoint but never corrupt the
//! previous one. The checksum catches torn or bit-rotted payloads at
//! load time; [`read_checkpoint`] refuses anything that does not verify,
//! so a resume either starts from a provably intact state or fails with
//! a structured [`CheckpointError`] (and the caller falls back to a full
//! re-run).

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use iocov_trace::{CursorState, SourceFormat};
use serde::{Deserialize, Serialize};

use crate::coverage::AnalysisReport;
use crate::metrics::MetricsSnapshot;

/// The eight-byte `.iockpt` file signature. The `\r\n` tail detects
/// line-ending translation by transfer tools, like PNG's signature.
pub const IOCKPT_MAGIC: [u8; 8] = *b"IOCKPT\r\n";

/// Current checkpoint format version.
pub const IOCKPT_VERSION: u32 = 1;

/// Serializable per-process relevance state: which descriptors trace to
/// the mount point, and whether the cwd does. Maps are `BTreeMap` so a
/// checkpoint of the same state is always the same bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PidStateSnapshot {
    /// Descriptor → does it originate under the mount point?
    pub fds: BTreeMap<i32, bool>,
    /// Whether the process cwd is under the mount point.
    pub cwd_relevant: bool,
}

/// Everything needed to resume an interrupted streaming analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckpointDoc {
    /// The mount point the run filters to (`None` = keep-all). Resume
    /// refuses a checkpoint taken under a different filter — the
    /// restored provenance states would be meaningless.
    pub mount: Option<String>,
    /// Input position: byte offset, line count, lossy-skip ledger.
    pub cursor: CursorState,
    /// Per-pid relevance states at the cursor position.
    pub pid_states: BTreeMap<u32, PidStateSnapshot>,
    /// Coverage accumulated over everything before the cursor.
    pub report: AnalysisReport,
    /// Pipeline-metrics totals at the cursor position.
    #[serde(default)]
    pub metrics: MetricsSnapshot,
    /// Container format of the trace the cursor indexes into. Defaults
    /// to JSONL so checkpoints written before the field existed (which
    /// were JSONL-only) still load.
    #[serde(default)]
    pub format: SourceFormat,
}

/// Why a checkpoint file could not be loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading the file failed.
    Io(io::Error),
    /// The file does not start with [`IOCKPT_MAGIC`].
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ends before the declared payload + checksum.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present after the header.
        found: u64,
    },
    /// The payload checksum does not verify (torn write or corruption).
    ChecksumMismatch {
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum of the payload as read.
        found: u64,
    },
    /// The payload is intact but not a valid [`CheckpointDoc`].
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => {
                write!(f, "not an .iockpt file (bad magic)")
            }
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (max {IOCKPT_VERSION})"
                )
            }
            CheckpointError::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated checkpoint: expected {expected} payload bytes, found {found}"
                )
            }
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: stored {expected:#018x}, computed {found:#018x}"
            ),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint payload: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes` — small, dependency-free, and more than
/// enough to catch torn writes and bit rot in a local checkpoint file.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The sibling temporary path used for atomic replacement.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The sibling `.prev` path where [`write_checkpoint`] rotates the
/// previous good checkpoint, and where
/// [`read_checkpoint_with_fallback`] looks when the primary does not
/// verify.
#[must_use]
pub fn prev_checkpoint_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".prev");
    path.with_file_name(name)
}

/// Parent-directory fsync counter, observable from the durability test:
/// file data survives a power loss only if the rename itself reached
/// the directory.
#[cfg(all(unix, test))]
static DIR_SYNCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Fsyncs the directory containing `path`, making a completed rename
/// durable. A rename only updates the directory entry; without this, a
/// power loss after [`write_checkpoint`] returns could roll the entry
/// back and lose a checkpoint the caller was told is safe.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        File::open(parent)?.sync_all()?;
        #[cfg(test)]
        DIR_SYNCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Serializes `doc` into a complete `.iockpt` image (header, JSON
/// payload, checksum trailer) — the bytes [`write_checkpoint`] persists
/// and the distributed worker protocol ships in checkpoint frames.
///
/// # Errors
///
/// Serialization failure only (surfaced as `io::Error::other`).
pub fn encode_checkpoint(doc: &CheckpointDoc) -> io::Result<Vec<u8>> {
    let payload = serde_json::to_string(doc)
        .map_err(|e| io::Error::other(format!("serialize checkpoint: {e}")))?;
    let payload = payload.as_bytes();
    let mut buf = Vec::with_capacity(IOCKPT_MAGIC.len() + 20 + payload.len());
    buf.extend_from_slice(&IOCKPT_MAGIC);
    buf.extend_from_slice(&IOCKPT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    Ok(buf)
}

/// Serializes `doc` and atomically replaces the file at `path` with it
/// (write sibling `.tmp`, fsync, rotate the old checkpoint to `.prev`,
/// rename, fsync the parent directory). The rotation keeps one known-
/// good generation on disk: if the newest checkpoint is torn by a crash
/// mid-write, resume falls back to `.prev` instead of starting over.
///
/// # Errors
///
/// Any I/O failure; the target file is untouched unless the final
/// rename succeeded.
pub fn write_checkpoint(path: &Path, doc: &CheckpointDoc) -> io::Result<()> {
    let buf = encode_checkpoint(doc)?;
    let tmp = tmp_path(path);
    let mut file = File::create(&tmp)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    drop(file);
    match std::fs::rename(path, prev_checkpoint_path(path)) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

/// Atomically replaces the file at `path` with `bytes` under the same
/// durability discipline as [`write_checkpoint`], minus the `.prev`
/// rotation: sibling `.tmp`, write, fsync, rename, fsync the parent
/// directory. A reader never observes a torn file. `iocov serve` uses
/// this for its merged snapshot and status documents.
///
/// # Errors
///
/// Any I/O failure; the target file is untouched unless the final
/// rename succeeded.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

/// Loads and verifies a checkpoint file.
///
/// # Errors
///
/// [`CheckpointError`] describing exactly what failed — I/O, magic,
/// version, truncation, checksum, or payload shape.
pub fn read_checkpoint(path: &Path) -> Result<CheckpointDoc, CheckpointError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    parse_checkpoint(&bytes)
}

/// Loads a checkpoint, falling back to the rotated `.prev` sibling when
/// the primary fails to verify (torn write, bit rot, or a crash between
/// the two renames). Returns the document plus `true` when the fallback
/// generation was used, so callers can log a warning — the resume then
/// simply replays a little more of the trace.
///
/// # Errors
///
/// The *primary* path's [`CheckpointError`] when neither generation
/// verifies, so diagnostics always describe the file the user named.
pub fn read_checkpoint_with_fallback(
    path: &Path,
) -> Result<(CheckpointDoc, bool), CheckpointError> {
    match read_checkpoint(path) {
        Ok(doc) => Ok((doc, false)),
        Err(primary) => match read_checkpoint(&prev_checkpoint_path(path)) {
            Ok(doc) => Ok((doc, true)),
            Err(_) => Err(primary),
        },
    }
}

/// Verifies and decodes checkpoint `bytes` (see module docs for the
/// layout).
///
/// # Errors
///
/// Same classification as [`read_checkpoint`], minus I/O.
pub fn parse_checkpoint(bytes: &[u8]) -> Result<CheckpointDoc, CheckpointError> {
    if bytes.len() < IOCKPT_MAGIC.len() || bytes[..IOCKPT_MAGIC.len()] != IOCKPT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let rest = &bytes[IOCKPT_MAGIC.len()..];
    if rest.len() < 12 {
        return Err(CheckpointError::Truncated {
            expected: 12,
            found: rest.len() as u64,
        });
    }
    let version = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
    if version > IOCKPT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let len = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
    let body = &rest[12..];
    let expected = len.checked_add(8).ok_or(CheckpointError::Truncated {
        expected: u64::MAX,
        found: body.len() as u64,
    })?;
    if (body.len() as u64) < expected {
        return Err(CheckpointError::Truncated {
            expected,
            found: body.len() as u64,
        });
    }
    let payload = &body[..usize::try_from(len).map_err(|_| CheckpointError::Truncated {
        expected,
        found: body.len() as u64,
    })?];
    let stored = u64::from_le_bytes(
        body[payload.len()..payload.len() + 8]
            .try_into()
            .expect("8 bytes"),
    );
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch {
            expected: stored,
            found: computed,
        });
    }
    let text =
        std::str::from_utf8(payload).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| CheckpointError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::StreamingAnalyzer;
    use crate::TraceFilter;
    use iocov_trace::{ArgValue, TraceEvent};

    fn sample_doc() -> CheckpointDoc {
        // Accumulate some real state so the round-trip exercises every
        // field, including non-empty pid states and a live report.
        let mut analyzer = StreamingAnalyzer::new(TraceFilter::mount_point("/mnt/test").unwrap());
        let mut open = TraceEvent::build(
            "open",
            2,
            vec![
                ArgValue::Path("/mnt/test/f".into()),
                ArgValue::Flags(0o101),
                ArgValue::Mode(0o644),
            ],
            3,
        );
        open.pid = 41;
        let mut chdir = TraceEvent::build("chdir", 80, vec![ArgValue::Path("/mnt/test".into())], 0);
        chdir.pid = 42;
        analyzer.push(&open);
        analyzer.push(&chdir);
        CheckpointDoc {
            mount: Some("/mnt/test".into()),
            cursor: CursorState {
                byte_offset: 321,
                lines: 2,
                events: 2,
                ..CursorState::default()
            },
            pid_states: analyzer.pid_states(),
            report: analyzer.report(),
            metrics: MetricsSnapshot::default(),
            format: SourceFormat::Jsonl,
        }
    }

    fn tmp_file(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iockpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_is_lossless() {
        let doc = sample_doc();
        let path = tmp_file("round_trip.iockpt");
        write_checkpoint(&path, &doc).unwrap();
        let back = read_checkpoint(&path).unwrap();
        assert_eq!(doc, back);
        // Two pids tracked: one via open, one via chdir.
        assert_eq!(back.pid_states.len(), 2);
        assert!(back.pid_states[&41].fds[&3]);
        assert!(back.pid_states[&42].cwd_relevant);
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let path = tmp_file("rewrite.iockpt");
        let mut doc = sample_doc();
        write_checkpoint(&path, &doc).unwrap();
        doc.cursor.byte_offset = 999;
        write_checkpoint(&path, &doc).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap().cursor.byte_offset, 999);
        assert!(!tmp_path(&path).exists(), "tmp file must not linger");
    }

    #[test]
    fn corruption_is_detected() {
        let doc = sample_doc();
        let path = tmp_file("corrupt.iockpt");
        write_checkpoint(&path, &doc).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();

        // Flip one payload bit → checksum mismatch.
        let mid = IOCKPT_MAGIC.len() + 12 + 5;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            parse_checkpoint(&bytes),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        bytes[mid] ^= 0x01;

        // Truncate → structured truncation error, not a panic.
        let torn = &bytes[..bytes.len() - 12];
        assert!(matches!(
            parse_checkpoint(torn),
            Err(CheckpointError::Truncated { .. })
        ));

        // Wrong magic.
        assert!(matches!(
            parse_checkpoint(b"NOTCKPT\n rest"),
            Err(CheckpointError::BadMagic)
        ));

        // Future version.
        let mut future = bytes.clone();
        future[IOCKPT_MAGIC.len()..IOCKPT_MAGIC.len() + 4]
            .copy_from_slice(&(IOCKPT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            parse_checkpoint(&future),
            Err(CheckpointError::UnsupportedVersion(_))
        ));

        // Untouched bytes still verify.
        assert_eq!(parse_checkpoint(&bytes).unwrap(), doc);
    }

    #[cfg(unix)]
    #[test]
    fn checkpoint_write_syncs_parent_directory() {
        use std::sync::atomic::Ordering;
        let before = DIR_SYNCS.load(Ordering::Relaxed);
        write_checkpoint(&tmp_file("dirsync.iockpt"), &sample_doc()).unwrap();
        assert!(
            DIR_SYNCS.load(Ordering::Relaxed) > before,
            "write_checkpoint must fsync the parent directory after the rename"
        );
    }

    #[test]
    fn rotation_keeps_previous_generation() {
        let path = tmp_file("rotate.iockpt");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(prev_checkpoint_path(&path));
        let mut gen1 = sample_doc();
        gen1.cursor.byte_offset = 100;
        write_checkpoint(&path, &gen1).unwrap();
        assert!(
            !prev_checkpoint_path(&path).exists(),
            "first write has nothing to rotate"
        );
        let mut gen2 = sample_doc();
        gen2.cursor.byte_offset = 200;
        write_checkpoint(&path, &gen2).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), gen2);
        assert_eq!(
            read_checkpoint(&prev_checkpoint_path(&path)).unwrap(),
            gen1,
            "replaced checkpoint must survive as .prev"
        );
        // With an intact primary the fallback reader never falls back.
        let (doc, fell_back) = read_checkpoint_with_fallback(&path).unwrap();
        assert!(!fell_back);
        assert_eq!(doc, gen2);
    }

    #[test]
    fn torn_primary_falls_back_to_prev() {
        use iocov_faults::{FaultPlan, FaultyWrite};
        let path = tmp_file("torn_fallback.iockpt");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(prev_checkpoint_path(&path));
        let mut gen1 = sample_doc();
        gen1.cursor.byte_offset = 100;
        write_checkpoint(&path, &gen1).unwrap();
        let mut gen2 = sample_doc();
        gen2.cursor.byte_offset = 200;
        write_checkpoint(&path, &gen2).unwrap();

        // Tear a third generation over the primary under a seeded fault
        // schedule: short transfers, then the disk dies. Whatever prefix
        // lands, resume must verify it, reject it, and recover from the
        // rotated generation.
        let mut gen3 = sample_doc();
        gen3.cursor.byte_offset = 300;
        let image = encode_checkpoint(&gen3).unwrap();
        for seed in 0..8u64 {
            let plan = FaultPlan::new(seed)
                .with_rates(200, 100, 700)
                .with_hard_error_after(1);
            let mut w = FaultyWrite::new(File::create(&path).unwrap(), plan);
            let mut off = 0;
            loop {
                match w.write(&image[off..]) {
                    Ok(n) => off += n,
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
                        ) => {}
                    Err(_) => break,
                }
            }
            assert!(
                off < image.len(),
                "seed {seed}: torn write must not complete"
            );
            assert!(
                read_checkpoint(&path).is_err(),
                "seed {seed}: torn primary must not verify"
            );
            let (doc, fell_back) = read_checkpoint_with_fallback(&path).unwrap();
            assert!(fell_back, "seed {seed}");
            assert_eq!(
                doc, gen1,
                "seed {seed}: fallback must be the rotated generation"
            );
        }

        // Neither generation intact → the primary's error surfaces.
        std::fs::write(prev_checkpoint_path(&path), b"garbage").unwrap();
        assert!(read_checkpoint_with_fallback(&path).is_err());
    }

    #[test]
    fn resume_from_pid_states_matches_uninterrupted() {
        // The crash-resume invariant at the analyzer level: splitting a
        // stream at an arbitrary event boundary, checkpointing, and
        // resuming into a fresh analyzer yields a byte-identical merged
        // report.
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let mut events = Vec::new();
        for pid in 0..4u32 {
            let mut open = TraceEvent::build(
                "open",
                2,
                vec![
                    ArgValue::Path(format!("/mnt/test/f{pid}")),
                    ArgValue::Flags(0o2),
                    ArgValue::Mode(0o600),
                ],
                3,
            );
            open.pid = pid;
            let mut dup = TraceEvent::build("dup", 32, vec![ArgValue::Fd(3)], 8);
            dup.pid = pid;
            let mut write = TraceEvent::build(
                "write",
                1,
                vec![ArgValue::Fd(8), ArgValue::Ptr(1), ArgValue::UInt(64)],
                64,
            );
            write.pid = pid;
            events.extend([open, dup, write]);
        }
        let mut full = StreamingAnalyzer::new(filter.clone());
        full.push_all(&events);
        let full_report = serde_json::to_string(&full.finish()).unwrap();

        for cut in 0..=events.len() {
            let mut head = StreamingAnalyzer::new(filter.clone());
            head.push_all(&events[..cut]);
            // Round-trip the resume state through the serialized doc.
            let doc = CheckpointDoc {
                mount: Some("/mnt/test".into()),
                pid_states: head.pid_states(),
                report: head.report(),
                ..CheckpointDoc::default()
            };
            let doc: CheckpointDoc =
                serde_json::from_str(&serde_json::to_string(&doc).unwrap()).unwrap();
            let mut tail = StreamingAnalyzer::new(filter.clone());
            tail.restore_pid_states(&doc.pid_states);
            tail.push_all(&events[cut..]);
            let mut merged = doc.report;
            merged.merge(&tail.finish());
            assert_eq!(
                full_report,
                serde_json::to_string(&merged).unwrap(),
                "cut={cut}"
            );
        }
    }
}
