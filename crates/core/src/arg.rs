//! The tracked syscall arguments and their classification.
//!
//! IOCov classifies syscall arguments into four classes — identifiers,
//! bitmaps, numerics, and categoricals (§3 of the paper) — and currently
//! measures input coverage for **14 distinct arguments** across the 27
//! syscalls. This module names those arguments and carries their decoded
//! values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The four argument classes of the paper's input-space partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArgClass {
    /// File descriptors, path names (partitioned structurally).
    Identifier,
    /// Flag words that can be OR-ed together (`open` flags, mode bits).
    Bitmap,
    /// Byte counts, offsets, lengths.
    Numeric,
    /// Fixed value sets (`lseek` whence).
    Categorical,
}

impl fmt::Display for ArgClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArgClass::Identifier => "identifier",
            ArgClass::Bitmap => "bitmap",
            ArgClass::Numeric => "numeric",
            ArgClass::Categorical => "categorical",
        };
        f.write_str(s)
    }
}

/// The 14 tracked arguments (after variant merging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ArgName {
    /// `open` flags word (all four open variants).
    OpenFlags,
    /// `open` creation mode.
    OpenMode,
    /// `read` byte count (`read`, `pread64`, `readv` total).
    ReadCount,
    /// `pread64` file offset.
    ReadOffset,
    /// `write` byte count (`write`, `pwrite64`, `writev` total).
    WriteCount,
    /// `pwrite64` file offset.
    WriteOffset,
    /// `lseek` offset.
    LseekOffset,
    /// `lseek` whence selector.
    LseekWhence,
    /// `truncate`/`ftruncate` length.
    TruncateLength,
    /// `mkdir`/`mkdirat` mode.
    MkdirMode,
    /// `chmod`/`fchmod`/`fchmodat` mode.
    ChmodMode,
    /// `setxattr` value size.
    SetxattrSize,
    /// `setxattr` flags (`XATTR_CREATE`/`XATTR_REPLACE`).
    SetxattrFlags,
    /// `getxattr` buffer size.
    GetxattrSize,
}

impl ArgName {
    /// All 14 tracked arguments.
    pub const ALL: [ArgName; 14] = [
        ArgName::OpenFlags,
        ArgName::OpenMode,
        ArgName::ReadCount,
        ArgName::ReadOffset,
        ArgName::WriteCount,
        ArgName::WriteOffset,
        ArgName::LseekOffset,
        ArgName::LseekWhence,
        ArgName::TruncateLength,
        ArgName::MkdirMode,
        ArgName::ChmodMode,
        ArgName::SetxattrSize,
        ArgName::SetxattrFlags,
        ArgName::GetxattrSize,
    ];

    /// A stable display name, e.g. `"open.flags"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ArgName::OpenFlags => "open.flags",
            ArgName::OpenMode => "open.mode",
            ArgName::ReadCount => "read.count",
            ArgName::ReadOffset => "read.offset",
            ArgName::WriteCount => "write.count",
            ArgName::WriteOffset => "write.offset",
            ArgName::LseekOffset => "lseek.offset",
            ArgName::LseekWhence => "lseek.whence",
            ArgName::TruncateLength => "truncate.length",
            ArgName::MkdirMode => "mkdir.mode",
            ArgName::ChmodMode => "chmod.mode",
            ArgName::SetxattrSize => "setxattr.size",
            ArgName::SetxattrFlags => "setxattr.flags",
            ArgName::GetxattrSize => "getxattr.size",
        }
    }

    /// The argument's class in the paper's four-way taxonomy.
    #[must_use]
    pub fn class(self) -> ArgClass {
        match self {
            ArgName::OpenFlags
            | ArgName::OpenMode
            | ArgName::MkdirMode
            | ArgName::ChmodMode
            | ArgName::SetxattrFlags => ArgClass::Bitmap,
            ArgName::ReadCount
            | ArgName::ReadOffset
            | ArgName::WriteCount
            | ArgName::WriteOffset
            | ArgName::LseekOffset
            | ArgName::TruncateLength
            | ArgName::SetxattrSize
            | ArgName::GetxattrSize => ArgClass::Numeric,
            ArgName::LseekWhence => ArgClass::Categorical,
        }
    }
}

impl fmt::Display for ArgName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A decoded argument value, carried from the variant handler to the
/// partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackedValue {
    /// An unsigned quantity (sizes, counts).
    Unsigned(u64),
    /// A signed quantity (offsets, lengths).
    Signed(i64),
    /// A raw bit pattern (flag and mode words).
    Bits(u32),
}

impl TrackedValue {
    /// The value as an i128 for ordering/bucketing.
    #[must_use]
    pub fn as_i128(self) -> i128 {
        match self {
            TrackedValue::Unsigned(v) => i128::from(v),
            TrackedValue::Signed(v) => i128::from(v),
            TrackedValue::Bits(v) => i128::from(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_tracked_arguments() {
        assert_eq!(ArgName::ALL.len(), 14, "the paper tracks 14 arguments");
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<&str> = ArgName::ALL.iter().map(|a| a.name()).collect();
        assert!(names.iter().all(|n| n.contains('.')));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn classes_cover_three_of_four_kinds() {
        // Identifier coverage (fds, paths) is future work in the paper;
        // the 14 tracked args span the other three classes.
        use std::collections::HashSet;
        let classes: HashSet<ArgClass> = ArgName::ALL.iter().map(|a| a.class()).collect();
        assert!(classes.contains(&ArgClass::Bitmap));
        assert!(classes.contains(&ArgClass::Numeric));
        assert!(classes.contains(&ArgClass::Categorical));
        assert!(!classes.contains(&ArgClass::Identifier));
    }

    #[test]
    fn tracked_value_ordering_view() {
        assert_eq!(TrackedValue::Unsigned(5).as_i128(), 5);
        assert_eq!(TrackedValue::Signed(-3).as_i128(), -3);
        assert_eq!(TrackedValue::Bits(0o644).as_i128(), 0o644);
    }

    #[test]
    fn display_impls() {
        assert_eq!(ArgName::OpenFlags.to_string(), "open.flags");
        assert_eq!(ArgClass::Bitmap.to_string(), "bitmap");
    }
}
