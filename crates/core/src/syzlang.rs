//! Syzkaller-log adapter — the paper's §6 plan to "evaluate fuzzing
//! systems" with IOCov.
//!
//! Syzkaller does not run under a tracer; it *logs* the programs it
//! executes in its declarative syntax, e.g.
//!
//! ```text
//! r0 = openat$tmp(0xffffffffffffff9c, &(0x7f0000000040)='./file0\x00', 0x42, 0x1ff) # 3
//! write(r0, &(0x7f0000000080)="68656c6c6f", 0x5) # 5
//! close(r0) # 0
//! ```
//!
//! This module parses such logs into [`iocov_trace::Trace`] events so the
//! ordinary IOCov pipeline (variant merging, partitioning, coverage)
//! applies unchanged:
//!
//! * `$variant` suffixes are stripped (`openat$tmp` → `openat`);
//! * `rN` resource variables are resolved to the descriptor returned by
//!   the call that defined them;
//! * pointer expressions `&(0xADDR)=…` contribute their pointed-to value
//!   (string or byte-blob length) and null pointers stay null;
//! * the trailing `# RET` comment — written by executors that report
//!   results — becomes the event's return value (calls without one get
//!   retval 0, which keeps input coverage exact and leaves output
//!   coverage to executors that log results).

use std::collections::HashMap;
use std::fmt;

use iocov_syscalls::Sysno;
use iocov_trace::{ArgValue, Trace, TraceEvent};

/// An error while parsing a Syzkaller log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyzParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SyzParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syz parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SyzParseError {}

/// One parsed argument of a syz call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyzArg {
    /// A numeric constant (`0x42`, `7`).
    Const(u64),
    /// A resource reference (`r0`).
    Resource(String),
    /// A pointer expression with a string payload
    /// (`&(0x7f00...)='./file0\x00'`).
    StrPtr(String),
    /// A pointer expression with a hex-blob payload
    /// (`&(0x7f00...)="6865..."`); carries the decoded byte length.
    BlobPtr(u64),
    /// A bare pointer without payload, or an explicit null (`0x0`
    /// in a pointer position is still parsed as `Const`).
    Ptr(u64),
}

/// One parsed call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyzCall {
    /// The variable the result is bound to (`r0`), if any.
    pub result_var: Option<String>,
    /// The syscall name with any `$variant` suffix stripped.
    pub name: String,
    /// Arguments in order.
    pub args: Vec<SyzArg>,
    /// The return value from a trailing `# N` comment, if present.
    pub retval: Option<i64>,
}

/// A parsed program: a sequence of calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyzProgram {
    /// The calls in execution order.
    pub calls: Vec<SyzCall>,
}

/// Parses a full Syzkaller log (one call per line; blank lines and `#`
/// comment lines are skipped).
///
/// # Errors
///
/// Returns [`SyzParseError`] with the offending line number for
/// malformed calls.
pub fn parse_program(text: &str) -> Result<SyzProgram, SyzParseError> {
    let mut calls = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        calls.push(parse_call(line, idx + 1)?);
    }
    Ok(SyzProgram { calls })
}

fn parse_call(line: &str, lineno: usize) -> Result<SyzCall, SyzParseError> {
    let err = |message: &str| SyzParseError {
        line: lineno,
        message: message.to_owned(),
    };

    // Split a trailing "# ret" comment (not inside quotes — the payload
    // quoting never contains '#' followed by a number at line end in syz
    // logs; we take the last '#' outside quotes).
    let (body, retval) = split_ret_comment(line);
    let retval = match retval {
        Some(text) => {
            Some(parse_i64(text.trim()).ok_or_else(|| err("malformed return-value comment"))?)
        }
        None => None,
    };

    // Optional "rN = " binding.
    let (result_var, rest) = match body.split_once('=') {
        Some((lhs, rhs)) if is_resource(lhs.trim()) && !lhs.contains('(') => {
            (Some(lhs.trim().to_owned()), rhs.trim())
        }
        _ => (None, body.trim()),
    };

    // "name(args)"
    let open_paren = rest.find('(').ok_or_else(|| err("missing '('"))?;
    if !rest.ends_with(')') {
        return Err(err("missing closing ')'"));
    }
    let raw_name = &rest[..open_paren];
    let name = raw_name
        .split('$')
        .next()
        .unwrap_or(raw_name)
        .trim()
        .to_owned();
    if name.is_empty() {
        return Err(err("empty syscall name"));
    }
    let args_text = &rest[open_paren + 1..rest.len() - 1];
    let args = split_args(args_text)
        .into_iter()
        .map(|a| parse_arg(a.trim(), lineno))
        .collect::<Result<Vec<_>, _>>()?;

    Ok(SyzCall {
        result_var,
        name,
        args,
        retval,
    })
}

fn split_ret_comment(line: &str) -> (&str, Option<&str>) {
    let mut in_squote = false;
    let mut in_dquote = false;
    for (i, c) in line.char_indices() {
        match c {
            '\'' if !in_dquote => in_squote = !in_squote,
            '"' if !in_squote => in_dquote = !in_dquote,
            '#' if !in_squote && !in_dquote => {
                return (&line[..i], Some(&line[i + 1..]));
            }
            _ => {}
        }
    }
    (line, None)
}

fn is_resource(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next() == Some('r') && !s[1..].is_empty() && s[1..].chars().all(|c| c.is_ascii_digit())
}

/// Splits a comma-separated argument list, respecting nesting and
/// quoting.
fn split_args(text: &str) -> Vec<&str> {
    let mut args = Vec::new();
    let mut depth = 0usize;
    let mut in_squote = false;
    let mut in_dquote = false;
    let mut start = 0usize;
    let mut saw_any = false;
    for (i, c) in text.char_indices() {
        saw_any = true;
        match c {
            '\'' if !in_dquote => in_squote = !in_squote,
            '"' if !in_squote => in_dquote = !in_dquote,
            '(' | '{' | '[' if !in_squote && !in_dquote => depth += 1,
            ')' | '}' | ']' if !in_squote && !in_dquote => depth = depth.saturating_sub(1),
            ',' if depth == 0 && !in_squote && !in_dquote => {
                args.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if saw_any {
        args.push(&text[start..]);
    }
    args
}

fn parse_u64(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = text.strip_prefix("0o") {
        u64::from_str_radix(oct, 8).ok()
    } else {
        text.parse().ok()
    }
}

fn parse_i64(text: &str) -> Option<i64> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix('-') {
        parse_u64(rest).map(|v| -(v as i64))
    } else {
        parse_u64(text).map(|v| v as i64)
    }
}

fn parse_arg(text: &str, lineno: usize) -> Result<SyzArg, SyzParseError> {
    let err = |message: String| SyzParseError {
        line: lineno,
        message,
    };
    if is_resource(text) {
        return Ok(SyzArg::Resource(text.to_owned()));
    }
    if let Some(rest) = text.strip_prefix("&(") {
        // &(0xADDR) or &(0xADDR)='...' or &(0xADDR)="hex"
        let close = rest
            .find(')')
            .ok_or_else(|| err("unclosed pointer expression".into()))?;
        let addr = parse_u64(&rest[..close])
            .ok_or_else(|| err(format!("bad pointer address `{}`", &rest[..close])))?;
        let payload = rest[close + 1..].trim();
        if let Some(payload) = payload.strip_prefix('=') {
            let payload = payload.trim();
            if payload.starts_with('\'') && payload.ends_with('\'') && payload.len() >= 2 {
                let inner = &payload[1..payload.len() - 1];
                return Ok(SyzArg::StrPtr(decode_syz_string(inner)));
            }
            if payload.starts_with('"') && payload.ends_with('"') && payload.len() >= 2 {
                let hex = &payload[1..payload.len() - 1];
                return Ok(SyzArg::BlobPtr((hex.len() / 2) as u64));
            }
            return Err(err(format!("unsupported pointer payload `{payload}`")));
        }
        return Ok(SyzArg::Ptr(addr));
    }
    parse_u64(text)
        .map(SyzArg::Const)
        .ok_or_else(|| err(format!("unparsable argument `{text}`")))
}

/// Decodes syz string escapes (`\x00` etc.) and strips a trailing NUL.
fn decode_syz_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\\' && chars.peek() == Some(&'x') {
            chars.next();
            let hi = chars.next().unwrap_or('0');
            let lo = chars.next().unwrap_or('0');
            let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).unwrap_or(0);
            if byte != 0 {
                out.push(byte as char);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Converts a parsed program to a trace the IOCov analyzer understands.
///
/// Resource variables are resolved through the return values recorded in
/// the log (`r0` used as an fd becomes `ArgValue::Fd(<retval of the
/// defining call>)`); unresolved resources become fd −1. Calls without a
/// recorded return value are given retval 0 — correct for input
/// coverage, conservative for output coverage.
#[must_use]
pub fn program_to_trace(program: &SyzProgram) -> Trace {
    let mut resources: HashMap<&str, i64> = HashMap::new();
    let mut trace = Trace::new();
    for call in &program.calls {
        let retval = call.retval.unwrap_or(0);
        if let Some(var) = &call.result_var {
            resources.insert(var, retval);
        }
        let sysno = Sysno::from_name(&call.name);
        let args: Vec<ArgValue> = call
            .args
            .iter()
            .enumerate()
            .map(|(pos, arg)| syz_arg_to_value(&call.name, pos, arg, &resources))
            .collect();
        let number = sysno.map_or(0, Sysno::number);
        trace.push(TraceEvent::build(&call.name, number, args, retval));
    }
    trace
}

/// Maps one syz argument to the trace representation, using the syscall
/// prototype position to pick the semantic kind (the same positions the
/// variant handler expects).
fn syz_arg_to_value(
    name: &str,
    pos: usize,
    arg: &SyzArg,
    resources: &HashMap<&str, i64>,
) -> ArgValue {
    match arg {
        SyzArg::Resource(var) => {
            let fd = resources.get(var.as_str()).copied().unwrap_or(-1);
            ArgValue::Fd(i32::try_from(fd).unwrap_or(-1))
        }
        SyzArg::StrPtr(s) => {
            // Path positions hold paths; xattr-name positions hold names.
            let is_name_pos = matches!(
                (name, pos),
                ("setxattr" | "lsetxattr" | "getxattr" | "lgetxattr", 1)
                    | ("fsetxattr" | "fgetxattr", 1)
            );
            if is_name_pos {
                ArgValue::Str(s.clone())
            } else {
                ArgValue::Path(s.clone())
            }
        }
        SyzArg::BlobPtr(len) => {
            // A data buffer: the pointer is non-null; its length often
            // duplicates the following count argument.
            let _ = len;
            ArgValue::Ptr(1)
        }
        SyzArg::Ptr(addr) => ArgValue::Ptr(u64::from(*addr != 0)),
        SyzArg::Const(v) => const_to_value(name, pos, *v),
    }
}

/// Chooses the semantic wrapper for a constant by prototype position.
fn const_to_value(name: &str, pos: usize, v: u64) -> ArgValue {
    let as_fd = || ArgValue::Fd(v as i64 as i32);
    match (name, pos) {
        ("open", 1) | ("openat" | "openat2", 2) => ArgValue::Flags(v as u32),
        ("open", 2)
        | ("openat" | "openat2", 3)
        | ("creat" | "mkdir" | "chmod", 1)
        | ("fchmod", 1)
        | ("mkdirat" | "fchmodat", 2) => ArgValue::Mode(v as u32),
        ("openat2", 4) | ("fchmodat", 3) => ArgValue::Flags(v as u32),
        ("openat" | "openat2" | "mkdirat" | "fchmodat", 0) => as_fd(),
        ("read" | "write" | "readv" | "writev" | "pread64" | "pwrite64", 0) => as_fd(),
        ("close" | "ftruncate" | "fchdir" | "fchmod" | "fsetxattr" | "fgetxattr", 0) => as_fd(),
        ("lseek", 0) => as_fd(),
        ("lseek", 1) => ArgValue::Int(v as i64),
        ("lseek", 2) => ArgValue::Whence(v as u32),
        ("truncate" | "ftruncate", 1) => ArgValue::Int(v as i64),
        ("pread64" | "pwrite64", 3) => ArgValue::Int(v as i64),
        ("setxattr" | "lsetxattr" | "fsetxattr", 4) => ArgValue::Flags(v as u32),
        _ => ArgValue::UInt(v),
    }
}

/// Convenience: parse a log and convert it in one step.
///
/// # Errors
///
/// Propagates [`SyzParseError`].
pub fn parse_to_trace(text: &str) -> Result<Trace, SyzParseError> {
    Ok(program_to_trace(&parse_program(text)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArgName, InputPartition, Iocov};

    const SAMPLE: &str = r#"
# a syzkaller-style program with executor-reported results
r0 = openat$tmp(0xffffffffffffff9c, &(0x7f0000000040)='./file0\x00', 0x42, 0x1ff) # 3
write(r0, &(0x7f0000000080)="68656c6c6f", 0x5) # 5
lseek(r0, 0x0, 0x0) # 0
read(r0, &(0x7f0000000100)="00", 0x400) # 5
close(r0) # 0
open(&(0x7f0000000140)='/etc/passwd\x00', 0x0, 0x0) # -13
"#;

    #[test]
    fn parses_sample_program() {
        let prog = parse_program(SAMPLE).unwrap();
        assert_eq!(prog.calls.len(), 6);
        let first = &prog.calls[0];
        assert_eq!(first.result_var.as_deref(), Some("r0"));
        assert_eq!(first.name, "openat", "variant suffix stripped");
        assert_eq!(first.retval, Some(3));
        assert_eq!(first.args.len(), 4);
        assert_eq!(first.args[0], SyzArg::Const(0xffffffffffffff9c));
        assert_eq!(first.args[1], SyzArg::StrPtr("./file0".into()));
        assert_eq!(first.args[2], SyzArg::Const(0x42));
    }

    #[test]
    fn resources_resolve_to_defining_retval() {
        let trace = parse_to_trace(SAMPLE).unwrap();
        let write = trace.iter().find(|e| e.name == "write").unwrap();
        assert_eq!(write.args[0], ArgValue::Fd(3));
        assert_eq!(write.retval, 5);
        let close = trace.iter().find(|e| e.name == "close").unwrap();
        assert_eq!(close.args[0], ArgValue::Fd(3));
    }

    #[test]
    fn positions_map_to_semantic_kinds() {
        let trace = parse_to_trace(SAMPLE).unwrap();
        let openat = &trace.events()[0];
        assert_eq!(openat.args[2], ArgValue::Flags(0x42));
        assert_eq!(openat.args[3], ArgValue::Mode(0x1ff));
        assert_eq!(openat.primary_path(), Some("./file0"));
        let lseek = trace.iter().find(|e| e.name == "lseek").unwrap();
        assert_eq!(lseek.args[2], ArgValue::Whence(0));
    }

    #[test]
    fn analyzer_consumes_syz_traces() {
        let trace = parse_to_trace(SAMPLE).unwrap();
        let report = Iocov::new().analyze(&trace);
        let flags = report.input_coverage(ArgName::OpenFlags);
        // 0x42 = O_CREAT|O_RDWR; plus the plain O_RDONLY open.
        assert_eq!(flags.count(&InputPartition::Flag("O_CREAT".into())), 1);
        assert_eq!(flags.count(&InputPartition::Flag("O_RDWR".into())), 1);
        assert_eq!(flags.count(&InputPartition::Flag("O_RDONLY".into())), 1);
        let open_out = report.output_coverage(iocov_syscalls::BaseSyscall::Open);
        assert_eq!(open_out.errno_count("EACCES"), 1, "-13 from the log");
        let wc = report.input_coverage(ArgName::WriteCount);
        assert_eq!(wc.calls, 1);
    }

    #[test]
    fn calls_without_results_default_retval_zero() {
        let trace = parse_to_trace("close(0x3)").unwrap();
        assert_eq!(trace.events()[0].retval, 0);
        assert_eq!(trace.events()[0].args[0], ArgValue::Fd(3));
    }

    #[test]
    fn unknown_resources_become_invalid_fds() {
        let trace = parse_to_trace("write(r9, &(0x7f0000000000)=\"00\", 0x1)").unwrap();
        assert_eq!(trace.events()[0].args[0], ArgValue::Fd(-1));
    }

    #[test]
    fn nested_and_quoted_arguments_split_correctly() {
        let prog = parse_program(
            "r1 = openat2(0xffffffffffffff9c, &(0x7f0000000000)='./a,b\\x00', 0x0, 0x0, 0x8)",
        )
        .unwrap();
        assert_eq!(prog.calls[0].args.len(), 5);
        assert_eq!(prog.calls[0].args[1], SyzArg::StrPtr("./a,b".into()));
    }

    #[test]
    fn negative_and_decimal_retvals() {
        let prog = parse_program("open(&(0x7f0000000000)='/x\\x00', 0x0, 0x0) # -2").unwrap();
        assert_eq!(prog.calls[0].retval, Some(-2));
        let prog = parse_program("write(0x3, 0x0, 0x10) # 16").unwrap();
        assert_eq!(prog.calls[0].retval, Some(16));
    }

    #[test]
    fn hash_inside_quotes_is_not_a_comment() {
        let prog = parse_program("open(&(0x7f0000000000)='/dir#1\\x00', 0x0, 0x0) # 4").unwrap();
        assert_eq!(prog.calls[0].retval, Some(4));
        assert_eq!(prog.calls[0].args[0], SyzArg::StrPtr("/dir#1".into()));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_program("open(&(0x7f0000000000='/x', 0x0)").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_program("\n\nnot_a_call").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn non_fs_syscalls_pass_through_as_noise() {
        // The analyzer's variant handler drops them, like trace noise.
        let trace = parse_to_trace("socket(0x2, 0x1, 0x0) # 5").unwrap();
        let report = Iocov::new().analyze(&trace);
        assert_eq!(report.total_calls(), 0);
    }

    #[test]
    fn null_pointer_payloads() {
        let trace = parse_to_trace("read(0x3, 0x0, 0x100) # -14").unwrap();
        let report = Iocov::new().analyze(&trace);
        assert_eq!(
            report
                .output_coverage(iocov_syscalls::BaseSyscall::Read)
                .errno_count("EFAULT"),
            1
        );
    }
}
