//! Identifier-argument coverage — the paper's future-work plan to
//! "support file descriptors and pointer arguments".
//!
//! Identifier arguments (file descriptors, pathnames) cannot be
//! partitioned by magnitude the way numerics can; their meaningful
//! structure is *kind*: which descriptor class a call used
//! (`AT_FDCWD`, stdio, a regular descriptor, garbage) and which
//! pathname shapes a suite exercised (absolute vs relative, deep vs
//! shallow, boundary-length names, `..` traversal, trailing slashes).
//! This module partitions those spaces and counts per-partition hits,
//! exactly like the core metrics do for the other three argument
//! classes.

use std::collections::BTreeMap;
use std::fmt;

use iocov_syscalls::Sysno;
use iocov_trace::{ArgValue, Trace};
use serde::{Deserialize, Serialize};

/// Descriptor-argument partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FdPartition {
    /// The `AT_FDCWD` sentinel (−100).
    AtFdcwd,
    /// Stdin/stdout/stderr (0–2) — unusual targets for fs testing.
    Stdio,
    /// An ordinary descriptor (≥ 3).
    Regular,
    /// −1, the classic error-propagation value.
    MinusOne,
    /// Any other negative value (garbage / fuzzed).
    OtherNegative,
}

impl FdPartition {
    /// All partitions in canonical order.
    pub const ALL: [FdPartition; 5] = [
        FdPartition::AtFdcwd,
        FdPartition::Stdio,
        FdPartition::Regular,
        FdPartition::MinusOne,
        FdPartition::OtherNegative,
    ];

    /// Buckets a descriptor value.
    #[must_use]
    pub fn of(fd: i32) -> FdPartition {
        match fd {
            -100 => FdPartition::AtFdcwd,
            0..=2 => FdPartition::Stdio,
            3.. => FdPartition::Regular,
            -1 => FdPartition::MinusOne,
            _ => FdPartition::OtherNegative,
        }
    }
}

impl fmt::Display for FdPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FdPartition::AtFdcwd => "AT_FDCWD",
            FdPartition::Stdio => "stdio(0-2)",
            FdPartition::Regular => "fd>=3",
            FdPartition::MinusOne => "fd=-1",
            FdPartition::OtherNegative => "fd<-1",
        };
        f.write_str(s)
    }
}

/// Pathname-argument partitions. One path can exercise several
/// (e.g. absolute *and* deep *and* containing `..`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PathPartition {
    /// The empty string (`ENOENT` probe).
    Empty,
    /// Starts with `/`.
    Absolute,
    /// Does not start with `/`.
    Relative,
    /// Contains a `..` component.
    DotDot,
    /// Ends with `/` (directory-demanding form).
    TrailingSlash,
    /// 1 component.
    Depth1,
    /// 2–3 components.
    Depth2To3,
    /// 4 or more components.
    Depth4Plus,
    /// Longest component below 16 bytes.
    ShortName,
    /// Longest component 16–254 bytes.
    MediumName,
    /// Longest component at the 255-byte `NAME_MAX` boundary.
    NameMaxBoundary,
    /// Longest component above `NAME_MAX` (must fail).
    OverNameMax,
}

impl PathPartition {
    /// All partitions in canonical order.
    pub const ALL: [PathPartition; 12] = [
        PathPartition::Empty,
        PathPartition::Absolute,
        PathPartition::Relative,
        PathPartition::DotDot,
        PathPartition::TrailingSlash,
        PathPartition::Depth1,
        PathPartition::Depth2To3,
        PathPartition::Depth4Plus,
        PathPartition::ShortName,
        PathPartition::MediumName,
        PathPartition::NameMaxBoundary,
        PathPartition::OverNameMax,
    ];

    /// The partitions a pathname exercises.
    #[must_use]
    pub fn of(path: &str) -> Vec<PathPartition> {
        if path.is_empty() {
            return vec![PathPartition::Empty];
        }
        let mut parts = Vec::with_capacity(4);
        parts.push(if path.starts_with('/') {
            PathPartition::Absolute
        } else {
            PathPartition::Relative
        });
        let components: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if components.contains(&"..") {
            parts.push(PathPartition::DotDot);
        }
        if path.len() > 1 && path.ends_with('/') {
            parts.push(PathPartition::TrailingSlash);
        }
        parts.push(match components.len() {
            0 | 1 => PathPartition::Depth1,
            2 | 3 => PathPartition::Depth2To3,
            _ => PathPartition::Depth4Plus,
        });
        let longest = components.iter().map(|c| c.len()).max().unwrap_or(0);
        parts.push(match longest {
            0..=15 => PathPartition::ShortName,
            16..=254 => PathPartition::MediumName,
            255 => PathPartition::NameMaxBoundary,
            _ => PathPartition::OverNameMax,
        });
        parts
    }
}

impl fmt::Display for PathPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PathPartition::Empty => "empty",
            PathPartition::Absolute => "absolute",
            PathPartition::Relative => "relative",
            PathPartition::DotDot => "contains-..",
            PathPartition::TrailingSlash => "trailing-/",
            PathPartition::Depth1 => "depth=1",
            PathPartition::Depth2To3 => "depth=2-3",
            PathPartition::Depth4Plus => "depth>=4",
            PathPartition::ShortName => "name<16",
            PathPartition::MediumName => "name=16-254",
            PathPartition::NameMaxBoundary => "name=255",
            PathPartition::OverNameMax => "name>255",
        };
        f.write_str(s)
    }
}

/// Identifier coverage over a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdentifierCoverage {
    /// Descriptor-partition hit counts.
    pub fd: BTreeMap<FdPartition, u64>,
    /// Pathname-partition hit counts.
    pub path: BTreeMap<PathPartition, u64>,
    /// Calls that contributed at least one identifier argument.
    pub calls: u64,
}

impl IdentifierCoverage {
    /// Scans a trace for the 27 modelled syscalls and partitions every
    /// fd and pathname argument.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let mut cov = IdentifierCoverage::default();
        for event in trace {
            if Sysno::from_name(&event.name).is_none() {
                continue;
            }
            let mut contributed = false;
            for arg in &event.args {
                match arg {
                    ArgValue::Fd(fd) => {
                        *cov.fd.entry(FdPartition::of(*fd)).or_insert(0) += 1;
                        contributed = true;
                    }
                    ArgValue::Path(path) => {
                        for p in PathPartition::of(path) {
                            *cov.path.entry(p).or_insert(0) += 1;
                        }
                        contributed = true;
                    }
                    _ => {}
                }
            }
            if contributed {
                cov.calls += 1;
            }
        }
        cov
    }

    /// Count for one descriptor partition.
    #[must_use]
    pub fn fd_count(&self, partition: FdPartition) -> u64 {
        self.fd.get(&partition).copied().unwrap_or(0)
    }

    /// Count for one pathname partition.
    #[must_use]
    pub fn path_count(&self, partition: PathPartition) -> u64 {
        self.path.get(&partition).copied().unwrap_or(0)
    }

    /// Untested descriptor partitions.
    #[must_use]
    pub fn untested_fd(&self) -> Vec<FdPartition> {
        FdPartition::ALL
            .into_iter()
            .filter(|p| self.fd_count(*p) == 0)
            .collect()
    }

    /// Untested pathname partitions.
    #[must_use]
    pub fn untested_path(&self) -> Vec<PathPartition> {
        PathPartition::ALL
            .into_iter()
            .filter(|p| self.path_count(*p) == 0)
            .collect()
    }

    /// Merges another identifier coverage.
    pub fn merge(&mut self, other: &IdentifierCoverage) {
        self.calls += other.calls;
        for (p, c) in &other.fd {
            *self.fd.entry(*p).or_insert(0) += c;
        }
        for (p, c) in &other.path {
            *self.path.entry(*p).or_insert(0) += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iocov_trace::TraceEvent;

    #[test]
    fn fd_partitioning() {
        assert_eq!(FdPartition::of(-100), FdPartition::AtFdcwd);
        assert_eq!(FdPartition::of(0), FdPartition::Stdio);
        assert_eq!(FdPartition::of(2), FdPartition::Stdio);
        assert_eq!(FdPartition::of(3), FdPartition::Regular);
        assert_eq!(FdPartition::of(1024), FdPartition::Regular);
        assert_eq!(FdPartition::of(-1), FdPartition::MinusOne);
        assert_eq!(FdPartition::of(-7), FdPartition::OtherNegative);
    }

    #[test]
    fn path_partitioning_shapes() {
        assert_eq!(PathPartition::of(""), vec![PathPartition::Empty]);
        let p = PathPartition::of("/mnt/test/file");
        assert!(p.contains(&PathPartition::Absolute));
        assert!(p.contains(&PathPartition::Depth2To3));
        assert!(p.contains(&PathPartition::ShortName));
        let p = PathPartition::of("a/../b/c/d/e");
        assert!(p.contains(&PathPartition::Relative));
        assert!(p.contains(&PathPartition::DotDot));
        assert!(p.contains(&PathPartition::Depth4Plus));
        let p = PathPartition::of("/dir/");
        assert!(p.contains(&PathPartition::TrailingSlash));
        assert!(p.contains(&PathPartition::Depth1));
    }

    #[test]
    fn name_length_boundaries() {
        let name254 = "x".repeat(254);
        let name255 = "x".repeat(255);
        let name256 = "x".repeat(256);
        assert!(PathPartition::of(&format!("/{name254}")).contains(&PathPartition::MediumName));
        assert!(PathPartition::of(&format!("/{name255}")).contains(&PathPartition::NameMaxBoundary));
        assert!(PathPartition::of(&format!("/{name256}")).contains(&PathPartition::OverNameMax));
    }

    #[test]
    fn from_trace_counts_fds_and_paths() {
        let trace = Trace::from_events(vec![
            TraceEvent::build(
                "openat",
                257,
                vec![
                    ArgValue::Fd(-100),
                    ArgValue::Path("rel/file".into()),
                    ArgValue::Flags(0),
                    ArgValue::Mode(0),
                ],
                3,
            ),
            TraceEvent::build("close", 3, vec![ArgValue::Fd(3)], 0),
            TraceEvent::build("close", 3, vec![ArgValue::Fd(-1)], -9),
            // Noise syscalls are ignored.
            TraceEvent::build("stat", 4, vec![ArgValue::Path("/x".into())], 0),
        ]);
        let cov = IdentifierCoverage::from_trace(&trace);
        assert_eq!(cov.calls, 3);
        assert_eq!(cov.fd_count(FdPartition::AtFdcwd), 1);
        assert_eq!(cov.fd_count(FdPartition::Regular), 1);
        assert_eq!(cov.fd_count(FdPartition::MinusOne), 1);
        assert_eq!(cov.path_count(PathPartition::Relative), 1);
        assert_eq!(cov.path_count(PathPartition::Absolute), 0, "stat is noise");
        assert_eq!(
            cov.untested_fd(),
            vec![FdPartition::Stdio, FdPartition::OtherNegative]
        );
        assert!(cov
            .untested_path()
            .contains(&PathPartition::NameMaxBoundary));
    }

    #[test]
    fn merge_and_serde() {
        let mut a = IdentifierCoverage::default();
        *a.fd.entry(FdPartition::Regular).or_insert(0) += 5;
        a.calls = 5;
        let mut b = IdentifierCoverage::default();
        *b.fd.entry(FdPartition::Regular).or_insert(0) += 2;
        *b.path.entry(PathPartition::Absolute).or_insert(0) += 2;
        b.calls = 2;
        a.merge(&b);
        assert_eq!(a.fd_count(FdPartition::Regular), 7);
        assert_eq!(a.calls, 7);
        let json = serde_json::to_string(&a).unwrap();
        let back: IdentifierCoverage = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn display_labels() {
        assert_eq!(FdPartition::AtFdcwd.to_string(), "AT_FDCWD");
        assert_eq!(PathPartition::NameMaxBoundary.to_string(), "name=255");
    }
}
