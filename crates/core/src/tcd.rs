//! Test Coverage Deviation (TCD): the paper's §4 adequacy metric.
//!
//! Given the frequency `F_i` of each partition and a target frequency
//! `T_i`, TCD is the root-mean-square deviation of the log-frequencies:
//!
//! ```text
//! TCD_T = sqrt( (1/N) * Σ (log10 F_i − log10 T_i)² )
//! ```
//!
//! Logarithms downplay over-testing relative to under-testing (a
//! partition tested 10× too often deviates as much as one tested 10× too
//! rarely, instead of linearly more). Zero frequencies are handled with
//! `log10(x + 1)` smoothing, so an untested partition against target `T`
//! contributes `log10(T + 1)` of deviation. Lower is better.

/// Computes TCD for per-partition frequencies against per-partition
/// targets.
///
/// # Panics
///
/// Panics when the slices differ in length or are empty — the target
/// array is defined to have one entry per partition (§4).
#[must_use]
pub fn tcd(freqs: &[u64], targets: &[u64]) -> f64 {
    assert_eq!(
        freqs.len(),
        targets.len(),
        "one target per partition is required"
    );
    assert!(!freqs.is_empty(), "TCD over zero partitions is undefined");
    let sum_sq: f64 = freqs
        .iter()
        .zip(targets)
        .map(|(&f, &t)| {
            let d = log10p1(f) - log10p1(t);
            d * d
        })
        .sum();
    (sum_sq / freqs.len() as f64).sqrt()
}

/// TCD against a uniform target (every partition should be tested
/// `target` times) — the configuration of the paper's Figure 5.
///
/// # Panics
///
/// Panics when `freqs` is empty.
#[must_use]
pub fn tcd_uniform(freqs: &[u64], target: u64) -> f64 {
    let targets = vec![target; freqs.len()];
    tcd(freqs, &targets)
}

fn log10p1(x: u64) -> f64 {
    (x as f64 + 1.0).log10()
}

/// Finds the uniform-target crossover between two suites: the smallest
/// target `T` in `[lo, hi]` where suite A stops having the lower (better)
/// TCD and suite B takes over, mirroring Figure 5's crossover at
/// T ≈ 5,237. An exact tie (`TCD_A == TCD_B`) *is* the crossover — this
/// must not be decided via `f64::signum`, which maps `+0.0` to `1.0` and
/// `-0.0` to `-1.0` and so misclassifies an exact-zero difference as a
/// side of the sign change. Returns `None` when the two suites never
/// trade places in the range.
#[must_use]
pub fn crossover(freqs_a: &[u64], freqs_b: &[u64], lo: u64, hi: u64) -> Option<u64> {
    let diff = |t: u64| tcd_uniform(freqs_a, t) - tcd_uniform(freqs_b, t);
    if lo >= hi {
        return None;
    }
    let d_lo = diff(lo);
    if d_lo == 0.0 {
        return Some(lo);
    }
    let d_hi = diff(hi);
    if d_hi == 0.0 {
        return Some(hi);
    }
    if (d_lo > 0.0) == (d_hi > 0.0) {
        return None;
    }
    let lo_positive = d_lo > 0.0;
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let d_mid = diff(mid);
        if d_mid == 0.0 {
            return Some(mid);
        }
        if (d_mid > 0.0) == lo_positive {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

/// Samples TCD for both suites over log-spaced uniform targets — the
/// data series of Figure 5.
#[must_use]
pub fn tcd_series(freqs: &[u64], targets: &[u64]) -> Vec<(u64, f64)> {
    targets
        .iter()
        .map(|&t| (t, tcd_uniform(freqs, t)))
        .collect()
}

/// One partition's signed deviation from the target: positive =
/// over-tested, negative = under-tested (in log10 decades).
#[derive(Debug, Clone, PartialEq)]
pub struct Deviation<P> {
    /// The partition.
    pub partition: P,
    /// Observed frequency.
    pub frequency: u64,
    /// Target frequency.
    pub target: u64,
    /// `log10(freq+1) − log10(target+1)`.
    pub deviation: f64,
}

/// Ranks partitions by |deviation| from a uniform target, worst first —
/// the §4 "application" turned into an actionable work list: the head of
/// the list is what a developer should fix (add tests for under-tested
/// partitions, trim redundant ones for over-tested).
pub fn deviation_ranking<P: Clone>(
    partitions: &[P],
    freqs: &[u64],
    target: u64,
) -> Vec<Deviation<P>> {
    assert_eq!(partitions.len(), freqs.len(), "one frequency per partition");
    let mut ranked: Vec<Deviation<P>> = partitions
        .iter()
        .zip(freqs)
        .map(|(p, &f)| Deviation {
            partition: p.clone(),
            frequency: f,
            target,
            deviation: log10p1(f) - log10p1(target),
        })
        .collect();
    ranked.sort_by(|a, b| b.deviation.abs().total_cmp(&a.deviation.abs()));
    ranked
}

/// Log-spaced targets `10^0 .. 10^max_exp` with `per_decade` points per
/// decade (Figure 5's x-axis).
#[must_use]
pub fn log_targets(max_exp: u32, per_decade: u32) -> Vec<u64> {
    let mut targets = Vec::new();
    for exp in 0..max_exp {
        for step in 0..per_decade {
            let t = 10f64.powf(f64::from(exp) + f64::from(step) / f64::from(per_decade));
            targets.push(t.round() as u64);
        }
    }
    targets.push(10u64.pow(max_exp));
    targets.dedup();
    targets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcd_is_zero_iff_frequencies_hit_target() {
        assert_eq!(tcd(&[10, 10, 10], &[10, 10, 10]), 0.0);
        assert!(tcd(&[10, 10, 11], &[10, 10, 10]) > 0.0);
    }

    #[test]
    fn tcd_penalizes_under_testing() {
        // All partitions untested against target 1000.
        let untested = tcd_uniform(&[0, 0, 0], 1000);
        let expected = (1001f64).log10();
        assert!((untested - expected).abs() < 1e-9);
    }

    #[test]
    fn log_scale_downplays_over_testing() {
        // 10x over-testing and 10x under-testing deviate equally (the
        // log makes the penalty multiplicative, not additive)...
        let over = tcd_uniform(&[10_000], 1_000);
        let under = tcd_uniform(&[100], 1_000);
        assert!((over - under).abs() < 0.02);
        // ...whereas linear deviation would differ by 10x.
        assert!((10_000f64 - 1_000.0).abs() > 10.0 * (1_000f64 - 100.0).abs() - 1.0);
    }

    #[test]
    fn lower_tcd_for_closer_distribution() {
        let close = tcd_uniform(&[90, 110, 95], 100);
        let far = tcd_uniform(&[1, 10_000, 3], 100);
        assert!(close < far);
    }

    #[test]
    #[should_panic(expected = "one target per partition")]
    fn mismatched_lengths_panic() {
        let _ = tcd(&[1, 2], &[1]);
    }

    #[test]
    #[should_panic(expected = "zero partitions")]
    fn empty_input_panics() {
        let _ = tcd(&[], &[]);
    }

    #[test]
    fn crossover_finds_figure5_style_flip() {
        // Suite A: uniformly low frequencies (CrashMonkey-like).
        // Suite B: high but uneven frequencies (xfstests-like).
        let a = vec![50u64; 10];
        let b: Vec<u64> = (0..10).map(|i| if i < 8 { 100_000 } else { 500 }).collect();
        // At tiny targets A is closer; at huge targets B is closer.
        assert!(tcd_uniform(&a, 10) < tcd_uniform(&b, 10));
        assert!(tcd_uniform(&a, 1_000_000) > tcd_uniform(&b, 1_000_000));
        let t = crossover(&a, &b, 1, 10_000_000).expect("a crossover exists");
        assert!(tcd_uniform(&a, t - 1) <= tcd_uniform(&b, t - 1));
        assert!(tcd_uniform(&a, t) >= tcd_uniform(&b, t));
    }

    #[test]
    fn crossover_exact_zero_diff_is_the_crossover() {
        // At T = 9: TCD_A = log10(10) = 1 exactly, TCD_B = |log10(100) −
        // log10(10)| = 1 exactly, so diff(9) is exactly ±0.0. signum()
        // maps ±0.0 to ±1.0, so sign-based bisection misreads the tie as
        // "no sign change" and reports no crossover.
        assert_eq!(crossover(&[0], &[99], 9, 100), Some(9));
        // The tie can also sit at the high end or inside the range.
        assert_eq!(crossover(&[0], &[99], 1, 9), Some(9));
        assert_eq!(crossover(&[0], &[99], 1, 100), Some(9));
    }

    #[test]
    fn crossover_none_when_one_suite_dominates() {
        // A hits its mean exactly; B is spread a decade either side, so
        // B's RMS deviation exceeds A's at every target in range — the
        // suites never trade places.
        let a = vec![100u64, 100];
        let b = vec![10u64, 1000];
        for &t in &[1u64, 100, 10_000, 1_000_000] {
            assert!(tcd_uniform(&a, t) < tcd_uniform(&b, t));
        }
        assert_eq!(crossover(&a, &b, 1, 1_000_000), None);
    }

    #[test]
    fn crossover_identical_suites_tie_immediately() {
        // Identical suites tie at every target; the smallest target in
        // range is reported as the crossover rather than pretending the
        // (everywhere-zero) difference never changes sign.
        let a = vec![10u64; 4];
        assert_eq!(crossover(&a, &a, 1, 1_000_000), Some(1));
    }

    #[test]
    fn log_targets_are_increasing_and_span_decades() {
        let targets = log_targets(7, 4);
        assert_eq!(*targets.first().unwrap(), 1);
        assert_eq!(*targets.last().unwrap(), 10_000_000);
        assert!(targets.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tcd_series_matches_pointwise_evaluation() {
        let freqs = vec![5, 50, 500];
        let targets = vec![1, 10, 100];
        let series = tcd_series(&freqs, &targets);
        assert_eq!(series.len(), 3);
        for (t, v) in series {
            assert!((v - tcd_uniform(&freqs, t)).abs() < 1e-12);
        }
    }

    #[test]
    fn deviation_ranking_orders_worst_first() {
        let partitions = ["a", "b", "c", "d"];
        let freqs = [1_000u64, 0, 10, 1_000_000];
        let ranked = deviation_ranking(&partitions, &freqs, 1_000);
        // d is 3 decades over; b is 3 decades under; both beat c (2
        // under) and a (exact).
        assert_eq!(ranked[3].partition, "a");
        assert!(ranked[3].deviation.abs() < 1e-9);
        assert!(ranked[0].deviation.abs() >= ranked[1].deviation.abs());
        let b = ranked.iter().find(|d| d.partition == "b").unwrap();
        assert!(b.deviation < 0.0, "under-tested is negative");
        let d = ranked.iter().find(|d| d.partition == "d").unwrap();
        assert!(d.deviation > 0.0, "over-tested is positive");
    }

    #[test]
    #[should_panic(expected = "one frequency per partition")]
    fn deviation_ranking_length_mismatch_panics() {
        let _ = deviation_ranking(&["a"], &[1, 2], 10);
    }

    #[test]
    fn non_uniform_targets_support_developer_priorities() {
        // Developers may want persistence-related partitions tested more
        // (§4): a higher target there penalizes their absence more.
        let freqs = vec![100, 0];
        let flat = tcd(&freqs, &[100, 100]);
        let sync_heavy = tcd(&freqs, &[100, 100_000]);
        assert!(sync_heavy > flat);
    }
}
