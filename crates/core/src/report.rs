//! Human-readable rendering of coverage reports and suite comparisons.

use std::fmt::Write as _;

use iocov_syscalls::BaseSyscall;

use crate::arg::ArgName;
use crate::coverage::AnalysisReport;
use crate::domain::{arg_domain, output_errnos};
use crate::partition::OutputPartition;

/// Renders the input coverage of one argument as an aligned text table
/// (one row per domain partition, zero rows marked `UNTESTED`).
#[must_use]
pub fn render_input(report: &AnalysisReport, arg: ArgName) -> String {
    let cov = report.input_coverage(arg);
    let mut out = String::new();
    let _ = writeln!(out, "input coverage: {arg} ({} calls)", cov.calls);
    for partition in arg_domain(arg).all_partitions() {
        let count = cov.count(&partition);
        let marker = if count == 0 { "  UNTESTED" } else { "" };
        let _ = writeln!(out, "  {partition:<16} {count:>12}{marker}");
    }
    out
}

/// Renders the output coverage of one base syscall.
#[must_use]
pub fn render_output(report: &AnalysisReport, base: BaseSyscall) -> String {
    let cov = report.output_coverage(base);
    let mut out = String::new();
    let _ = writeln!(out, "output coverage: {base} ({} calls)", cov.calls);
    let _ = writeln!(out, "  {:<16} {:>12}", "OK", cov.successes());
    for errno in output_errnos(base) {
        let count = cov.errno_count(errno);
        let marker = if count == 0 { "  UNTESTED" } else { "" };
        let _ = writeln!(out, "  {errno:<16} {count:>12}{marker}");
    }
    // Byte-count sub-buckets, if any.
    let mut buckets: Vec<(&OutputPartition, &u64)> = cov
        .counts
        .iter()
        .filter(|(p, _)| matches!(p, OutputPartition::OkBytes(_)))
        .collect();
    buckets.sort_by_key(|(p, _)| (*p).clone());
    for (p, c) in buckets {
        let label = p.to_string();
        let _ = writeln!(out, "  {label:<16} {c:>12}");
    }
    out
}

/// A one-paragraph summary of untested inputs and outputs — the
/// actionable finding the paper reports ("IOCov identified many untested
/// cases for both CrashMonkey and xfstests").
#[must_use]
pub fn untested_summary(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let mut input_total = 0usize;
    for arg in ArgName::ALL {
        let untested = report.input_coverage(arg).untested(arg);
        if !untested.is_empty() {
            input_total += untested.len();
            let names: Vec<String> = untested.iter().take(6).map(ToString::to_string).collect();
            let ellipsis = if untested.len() > 6 { ", …" } else { "" };
            let _ = writeln!(
                out,
                "{arg}: {} untested partitions ({}{ellipsis})",
                untested.len(),
                names.join(", ")
            );
        }
    }
    let mut output_total = 0usize;
    for base in BaseSyscall::ALL {
        let untested = report.output_coverage(base).untested_errnos(base);
        if !untested.is_empty() {
            output_total += untested.len();
            let _ = writeln!(
                out,
                "{base} outputs: {} untested errnos ({})",
                untested.len(),
                untested.join(", ")
            );
        }
    }
    let _ = writeln!(
        out,
        "total: {input_total} untested input partitions, {output_total} untested error outputs"
    );
    out
}

/// Renders the Table 1 combination analysis for one suite.
#[must_use]
pub fn render_combos(report: &AnalysisReport, suite: &str) -> String {
    let mut out = String::new();
    let max = report.open_combos.max_size().max(1);
    let _ = write!(out, "{suite}: all flags   ");
    for size in 1..=max {
        let pct = report
            .open_combos
            .percentages(false)
            .iter()
            .find(|(s, _)| *s == size)
            .map_or(0.0, |(_, p)| *p);
        let _ = write!(out, " {size}:{pct:>5.1}%");
    }
    let _ = writeln!(out);
    let _ = write!(out, "{suite}: O_RDONLY    ");
    for size in 1..=max {
        let pct = report
            .open_combos
            .percentages(true)
            .iter()
            .find(|(s, _)| *s == size)
            .map_or(0.0, |(_, p)| *p);
        let _ = write!(out, " {size}:{pct:>5.1}%");
    }
    let _ = writeln!(out);
    out
}

/// Coverage differences between two suites: partitions one exercises
/// and the other misses — the direct answer to "what should suite B add
/// to catch up with suite A?".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageDiff {
    /// Input partitions covered only by the first suite, per argument.
    pub inputs_only_a: Vec<(ArgName, crate::InputPartition)>,
    /// Input partitions covered only by the second suite.
    pub inputs_only_b: Vec<(ArgName, crate::InputPartition)>,
    /// Errnos elicited only by the first suite, per base syscall name.
    pub errnos_only_a: Vec<(String, String)>,
    /// Errnos elicited only by the second suite.
    pub errnos_only_b: Vec<(String, String)>,
}

impl CoverageDiff {
    /// Whether the two suites cover identical partitions (ignoring
    /// frequencies).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inputs_only_a.is_empty()
            && self.inputs_only_b.is_empty()
            && self.errnos_only_a.is_empty()
            && self.errnos_only_b.is_empty()
    }
}

/// Computes the coverage diff between two reports (binary covered /
/// uncovered per partition, over the displayed domains).
#[must_use]
pub fn diff(a: &AnalysisReport, b: &AnalysisReport) -> CoverageDiff {
    let mut out = CoverageDiff::default();
    for arg in ArgName::ALL {
        let cov_a = a.input_coverage(arg);
        let cov_b = b.input_coverage(arg);
        for partition in arg_domain(arg).all_partitions() {
            match (cov_a.count(&partition) > 0, cov_b.count(&partition) > 0) {
                (true, false) => out.inputs_only_a.push((arg, partition)),
                (false, true) => out.inputs_only_b.push((arg, partition)),
                _ => {}
            }
        }
    }
    for base in BaseSyscall::ALL {
        let cov_a = a.output_coverage(base);
        let cov_b = b.output_coverage(base);
        for errno in output_errnos(base) {
            match (cov_a.errno_count(errno) > 0, cov_b.errno_count(errno) > 0) {
                (true, false) => out
                    .errnos_only_a
                    .push((base.name().to_owned(), (*errno).to_owned())),
                (false, true) => out
                    .errnos_only_b
                    .push((base.name().to_owned(), (*errno).to_owned())),
                _ => {}
            }
        }
    }
    out
}

/// Renders a coverage diff with suite names.
#[must_use]
pub fn render_diff(diff: &CoverageDiff, name_a: &str, name_b: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "inputs covered only by {name_a}: {}",
        diff.inputs_only_a.len()
    );
    for (arg, p) in diff.inputs_only_a.iter().take(12) {
        let _ = writeln!(out, "  {arg}: {p}");
    }
    let _ = writeln!(
        out,
        "inputs covered only by {name_b}: {}",
        diff.inputs_only_b.len()
    );
    for (arg, p) in diff.inputs_only_b.iter().take(12) {
        let _ = writeln!(out, "  {arg}: {p}");
    }
    let _ = writeln!(
        out,
        "errnos elicited only by {name_a}: {}",
        diff.errnos_only_a.len()
    );
    for (base, e) in diff.errnos_only_a.iter().take(12) {
        let _ = writeln!(out, "  {base}: {e}");
    }
    let _ = writeln!(
        out,
        "errnos elicited only by {name_b}: {}",
        diff.errnos_only_b.len()
    );
    for (base, e) in diff.errnos_only_b.iter().take(12) {
        let _ = writeln!(out, "  {base}: {e}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::Analyzer;
    use iocov_trace::{ArgValue, Trace, TraceEvent};

    fn sample_report() -> AnalysisReport {
        let analyzer = Analyzer::unfiltered();
        let trace = Trace::from_events(vec![
            TraceEvent::build(
                "open",
                2,
                vec![
                    ArgValue::Path("/f".into()),
                    ArgValue::Flags(0o101),
                    ArgValue::Mode(0o644),
                ],
                3,
            ),
            TraceEvent::build(
                "open",
                2,
                vec![
                    ArgValue::Path("/g".into()),
                    ArgValue::Flags(0),
                    ArgValue::Mode(0),
                ],
                -2,
            ),
            TraceEvent::build(
                "write",
                1,
                vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(4096)],
                4096,
            ),
        ]);
        analyzer.analyze(&trace)
    }

    #[test]
    fn render_input_lists_domain_with_untested_markers() {
        let text = render_input(&sample_report(), ArgName::OpenFlags);
        assert!(text.contains("O_CREAT"));
        assert!(text.contains("UNTESTED"));
        assert!(text.contains("O_TMPFILE"));
        let creat_line = text.lines().find(|l| l.contains("O_CREAT")).unwrap();
        assert!(creat_line.contains('1'));
    }

    #[test]
    fn render_output_includes_ok_and_errnos() {
        let text = render_output(&sample_report(), BaseSyscall::Open);
        assert!(text.contains("OK"));
        assert!(text.contains("ENOENT"));
        let enoent = text.lines().find(|l| l.contains("ENOENT")).unwrap();
        assert!(!enoent.contains("UNTESTED"));
        let enospc = text.lines().find(|l| l.contains("ENOSPC")).unwrap();
        assert!(enospc.contains("UNTESTED"));
    }

    #[test]
    fn render_output_shows_byte_buckets() {
        let text = render_output(&sample_report(), BaseSyscall::Write);
        assert!(text.contains("OK(2^12)"));
    }

    #[test]
    fn untested_summary_totals() {
        let text = untested_summary(&sample_report());
        assert!(text.contains("untested input partitions"));
        assert!(text.contains("untested error outputs"));
        assert!(text.contains("open.flags"));
    }

    #[test]
    fn diff_finds_one_sided_partitions() {
        let analyzer = Analyzer::unfiltered();
        let a = analyzer.analyze(&Trace::from_events(vec![TraceEvent::build(
            "open",
            2,
            vec![
                ArgValue::Path("/a".into()),
                ArgValue::Flags(0o101),
                ArgValue::Mode(0o644),
            ],
            3,
        )]));
        let b = analyzer.analyze(&Trace::from_events(vec![TraceEvent::build(
            "open",
            2,
            vec![
                ArgValue::Path("/missing".into()),
                ArgValue::Flags(0),
                ArgValue::Mode(0),
            ],
            -2,
        )]));
        let d = diff(&a, &b);
        assert!(!d.is_empty());
        assert!(d
            .inputs_only_a
            .iter()
            .any(|(arg, p)| *arg == ArgName::OpenFlags && p.to_string() == "O_CREAT"));
        assert!(d
            .inputs_only_b
            .iter()
            .any(|(arg, p)| *arg == ArgName::OpenFlags && p.to_string() == "O_RDONLY"));
        assert!(d
            .errnos_only_b
            .iter()
            .any(|(base, e)| base == "open" && e == "ENOENT"));
        assert!(d.errnos_only_a.is_empty());
        let text = render_diff(&d, "suiteA", "suiteB");
        assert!(text.contains("only by suiteA"));
        assert!(text.contains("ENOENT"));
    }

    #[test]
    fn diff_of_identical_reports_is_empty() {
        let analyzer = Analyzer::unfiltered();
        let r = analyzer.analyze(&Trace::from_events(vec![TraceEvent::build(
            "close",
            3,
            vec![ArgValue::Fd(3)],
            0,
        )]));
        assert!(diff(&r, &r).is_empty());
    }

    #[test]
    fn combo_table_renders_percentages() {
        let text = render_combos(&sample_report(), "sample");
        assert!(text.contains("sample: all flags"));
        assert!(text.contains("O_RDONLY"));
        assert!(text.contains('%'));
    }
}
