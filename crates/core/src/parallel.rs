//! Pid-sharded parallel analysis.
//!
//! Every piece of state the analysis pipeline carries between events is
//! per-process: the trace filter's descriptor-provenance map and cwd
//! relevance live in a per-pid entry, and coverage accumulation is a sum
//! of per-event contributions. A trace can therefore be sharded *by pid*
//! across worker threads with no cross-shard communication: each worker
//! runs an ordinary [`StreamingAnalyzer`] over its pids' events in trace
//! order, and the per-worker reports are combined with
//! [`AnalysisReport::merge`]. Because every aggregate in a report is an
//! order-independent sum over `BTreeMap`s, the merged report is
//! **identical** to a serial run — same keys, same counts, same
//! serialized bytes — regardless of the worker count.
//!
//! [`ParallelAnalyzer`] is the one-shot interface mirroring
//! [`Analyzer`](crate::Analyzer); [`ParallelStreamingAnalyzer`] is the
//! chunked interface mirroring [`StreamingAnalyzer`], keeping each
//! shard's filter state alive *across* chunks so a descriptor opened (or
//! duplicated) in one chunk is still attributed correctly in the next.
//!
//! ```
//! use iocov::{Analyzer, ParallelAnalyzer, TraceFilter};
//! use iocov_trace::{ArgValue, Trace, TraceEvent};
//!
//! let mut open = TraceEvent::build(
//!     "open",
//!     2,
//!     vec![ArgValue::Path("/mnt/test/f".into()), ArgValue::Flags(0), ArgValue::Mode(0)],
//!     3,
//! );
//! open.pid = 7;
//! let trace = Trace::from_events(vec![open]);
//! let filter = TraceFilter::mount_point("/mnt/test").unwrap();
//! let serial = Analyzer::new(filter.clone()).analyze(&trace);
//! let parallel = ParallelAnalyzer::new(filter, 4).analyze(&trace);
//! assert_eq!(serial, parallel);
//! ```

use std::sync::Arc;

use iocov_trace::{Trace, TraceEvent};

use crate::coverage::AnalysisReport;
use crate::filter::TraceFilter;
use crate::metrics::PipelineMetrics;
use crate::streaming::StreamingAnalyzer;

/// A one-shot parallel analyzer: shards a trace by pid across `workers`
/// threads and merges the per-worker reports.
#[derive(Debug, Clone)]
pub struct ParallelAnalyzer {
    filter: TraceFilter,
    workers: usize,
    metrics: Option<Arc<PipelineMetrics>>,
}

impl ParallelAnalyzer {
    /// A parallel analyzer with a filter; `workers` is clamped to at
    /// least 1.
    #[must_use]
    pub fn new(filter: TraceFilter, workers: usize) -> Self {
        ParallelAnalyzer {
            filter,
            workers: workers.max(1),
            metrics: None,
        }
    }

    /// An unfiltered parallel analyzer.
    #[must_use]
    pub fn unfiltered(workers: usize) -> Self {
        ParallelAnalyzer::new(TraceFilter::keep_all(), workers)
    }

    /// Attaches shared pipeline metrics. All workers update the same
    /// atomic counters, so snapshots match a serial run exactly.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<PipelineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured filter.
    #[must_use]
    pub fn filter(&self) -> &TraceFilter {
        &self.filter
    }

    /// Runs the full pipeline over one trace.
    #[must_use]
    pub fn analyze(&self, trace: &Trace) -> AnalysisReport {
        self.analyze_events(trace.events())
    }

    /// Runs the full pipeline over a slice of events.
    #[must_use]
    pub fn analyze_events(&self, events: &[TraceEvent]) -> AnalysisReport {
        let mut sharded = ParallelStreamingAnalyzer::new(self.filter.clone(), self.workers);
        if let Some(metrics) = &self.metrics {
            sharded = sharded.with_metrics(Arc::clone(metrics));
        }
        sharded.push_all(events);
        sharded.finish()
    }
}

/// A chunked parallel analyzer: N persistent [`StreamingAnalyzer`]
/// shards, each owning the pids with `pid % N == shard index`.
///
/// Shard state survives across [`push_all`](Self::push_all) calls, so
/// feeding a long trace chunk-by-chunk preserves descriptor provenance
/// exactly like a single serial [`StreamingAnalyzer`] would.
#[derive(Debug)]
pub struct ParallelStreamingAnalyzer {
    shards: Vec<StreamingAnalyzer>,
    metrics: Option<Arc<PipelineMetrics>>,
}

impl ParallelStreamingAnalyzer {
    /// Creates `workers` persistent shards (clamped to at least 1) over
    /// clones of `filter`.
    #[must_use]
    pub fn new(filter: TraceFilter, workers: usize) -> Self {
        let workers = workers.max(1);
        ParallelStreamingAnalyzer {
            shards: (0..workers)
                .map(|_| StreamingAnalyzer::new(filter.clone()))
                .collect(),
            metrics: None,
        }
    }

    /// Attaches shared pipeline metrics to every shard.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<PipelineMetrics>) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|shard| shard.with_metrics(Arc::clone(&metrics)))
            .collect();
        self.metrics = Some(metrics);
        self
    }

    /// The worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Consumes one chunk of events, sharding them by pid across the
    /// worker threads. Each worker scans the whole chunk and keeps only
    /// its own pids — the predicate is a modulo, far cheaper than
    /// partitioning the chunk into per-shard buffers first.
    pub fn push_all(&mut self, events: &[TraceEvent]) {
        let _timer = self.metrics.as_deref().map(|m| m.time_stage("analyze"));
        let n = self.shards.len();
        if n == 1 || events.len() < PARALLEL_THRESHOLD {
            // Below the threshold thread spawn dominates; a serial pass
            // over all shards costs the same modulo test per event.
            for (w, shard) in self.shards.iter_mut().enumerate() {
                for event in events {
                    if event.pid as usize % n == w {
                        shard.push(event);
                    }
                }
            }
            return;
        }
        std::thread::scope(|scope| {
            for (w, shard) in self.shards.iter_mut().enumerate() {
                scope.spawn(move || {
                    for event in events {
                        if event.pid as usize % n == w {
                            shard.push(event);
                        }
                    }
                });
            }
        });
    }

    /// Merges the shard reports in shard order and returns the combined
    /// report.
    #[must_use]
    pub fn finish(self) -> AnalysisReport {
        let mut merged = AnalysisReport::default();
        for shard in self.shards {
            merged.merge(&shard.finish());
        }
        merged
    }

    /// A merged snapshot of the report so far (the stream may continue).
    #[must_use]
    pub fn report(&self) -> AnalysisReport {
        let mut merged = AnalysisReport::default();
        for shard in &self.shards {
            merged.merge(shard.report());
        }
        merged
    }
}

/// Chunks smaller than this are analyzed on the calling thread; spawning
/// scoped threads costs more than the analysis itself.
const PARALLEL_THRESHOLD: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analyzer, ArgName};
    use iocov_trace::ArgValue;

    /// A multi-pid trace exercising every provenance rule: opens, dups,
    /// renames, chdir, interleaved across `pids` processes.
    fn multi_pid_trace(pids: u32, per_pid: usize) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for round in 0..per_pid {
            for pid in 0..pids {
                let fd = 3 + round as i32;
                let mount = pid % 2 == 0; // odd pids are pure noise
                let root = if mount { "/mnt/test" } else { "/somewhere" };
                let mut step = vec![
                    TraceEvent::build(
                        "open",
                        2,
                        vec![
                            ArgValue::Path(format!("{root}/f{round}")),
                            ArgValue::Flags(0o101),
                            ArgValue::Mode(0o644),
                        ],
                        i64::from(fd),
                    ),
                    TraceEvent::build(
                        "dup2",
                        33,
                        vec![ArgValue::Fd(fd), ArgValue::Fd(fd + 64)],
                        i64::from(fd + 64),
                    ),
                    TraceEvent::build(
                        "write",
                        1,
                        vec![
                            ArgValue::Fd(fd + 64),
                            ArgValue::Ptr(1),
                            ArgValue::UInt(1 << (round % 20)),
                        ],
                        1 << (round % 20),
                    ),
                    TraceEvent::build(
                        "rename",
                        82,
                        vec![
                            ArgValue::Path(format!("/tmp/stage{round}")),
                            ArgValue::Path(format!("{root}/dst{round}")),
                        ],
                        0,
                    ),
                    TraceEvent::build("chdir", 80, vec![ArgValue::Path(root.to_owned())], 0),
                    TraceEvent::build(
                        "open",
                        2,
                        vec![
                            ArgValue::Path("relative".into()),
                            ArgValue::Flags(0),
                            ArgValue::Mode(0),
                        ],
                        i64::from(fd + 100),
                    ),
                    TraceEvent::build("close", 3, vec![ArgValue::Fd(fd)], 0),
                ];
                for event in &mut step {
                    event.pid = pid;
                }
                events.extend(step);
            }
        }
        events
    }

    #[test]
    fn parallel_matches_serial_at_every_worker_count() {
        let events = multi_pid_trace(5, 4);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        for workers in 1..=8 {
            let parallel = ParallelAnalyzer::new(filter.clone(), workers).analyze(&trace);
            assert_eq!(serial, parallel, "diverged at {workers} workers");
        }
    }

    #[test]
    fn parallel_serializes_identically_to_serial() {
        let trace = Trace::from_events(multi_pid_trace(3, 3));
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = serde_json::to_string(&Analyzer::new(filter.clone()).analyze(&trace)).unwrap();
        let parallel =
            serde_json::to_string(&ParallelAnalyzer::new(filter, 4).analyze(&trace)).unwrap();
        assert_eq!(serial, parallel, "reports must be byte-identical");
    }

    #[test]
    fn more_workers_than_pids_is_fine() {
        let trace = Trace::from_events(multi_pid_trace(2, 2));
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        let parallel = ParallelAnalyzer::new(filter, 8).analyze(&trace);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let analyzer = ParallelAnalyzer::unfiltered(0);
        assert_eq!(analyzer.workers(), 1);
        assert_eq!(
            ParallelStreamingAnalyzer::new(TraceFilter::keep_all(), 0).workers(),
            1
        );
    }

    #[test]
    fn chunked_parallel_keeps_provenance_across_chunks() {
        // fd opened in chunk 1, duplicated in chunk 2, written via the
        // duplicate in chunk 3: per-chunk batch analysis would lose the
        // attribution, the sharded streaming analyzer must not.
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let mut open = TraceEvent::build(
            "open",
            2,
            vec![
                ArgValue::Path("/mnt/test/a".into()),
                ArgValue::Flags(0),
                ArgValue::Mode(0),
            ],
            3,
        );
        open.pid = 6;
        let mut dup = TraceEvent::build("dup", 32, vec![ArgValue::Fd(3)], 9);
        dup.pid = 6;
        let mut write = TraceEvent::build(
            "write",
            1,
            vec![ArgValue::Fd(9), ArgValue::Ptr(1), ArgValue::UInt(128)],
            128,
        );
        write.pid = 6;

        let mut sharded = ParallelStreamingAnalyzer::new(filter, 4);
        sharded.push_all(&[open]);
        sharded.push_all(&[dup]);
        sharded.push_all(&[write]);
        let report = sharded.finish();
        assert_eq!(report.input_coverage(ArgName::WriteCount).calls, 1);
        assert_eq!(report.filter_stats.kept, 3);
    }

    #[test]
    fn interim_report_merges_all_shards() {
        let mut sharded = ParallelStreamingAnalyzer::new(TraceFilter::keep_all(), 3);
        let events = multi_pid_trace(3, 1);
        let total = events.len();
        sharded.push_all(&events);
        assert_eq!(sharded.report().filter_stats.total, total);
    }

    #[test]
    fn parallel_metrics_snapshot_matches_serial_byte_for_byte() {
        // The acceptance bar: counters from a 4-worker run must be
        // *byte-identical* to a serial run over the same trace — large
        // enough to clear PARALLEL_THRESHOLD so real threads race on the
        // shared atomics.
        let events = multi_pid_trace(7, 40);
        assert!(events.len() >= PARALLEL_THRESHOLD);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();

        let serial_metrics = Arc::new(PipelineMetrics::default());
        let serial = Analyzer::new(filter.clone())
            .with_metrics(Arc::clone(&serial_metrics))
            .analyze(&trace);

        let parallel_metrics = Arc::new(PipelineMetrics::default());
        let parallel = ParallelAnalyzer::new(filter, 4)
            .with_metrics(Arc::clone(&parallel_metrics))
            .analyze(&trace);

        assert_eq!(serial, parallel);
        let s = serial_metrics.snapshot();
        let p = parallel_metrics.snapshot();
        assert_eq!(s, p);
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            serde_json::to_string(&p).unwrap(),
            "metrics snapshots must be byte-identical"
        );
        assert!(s.events_read > 0 && s.total_dropped() > 0);
    }

    #[test]
    fn shared_metrics_across_chunked_parallel_runs() {
        // One metrics instance fed by a chunked sharded run still sums to
        // the trace totals.
        let events = multi_pid_trace(4, 3);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let metrics = Arc::new(PipelineMetrics::default());
        let mut sharded =
            ParallelStreamingAnalyzer::new(filter, 3).with_metrics(Arc::clone(&metrics));
        for chunk in events.chunks(5) {
            sharded.push_all(chunk);
        }
        let report = sharded.finish();
        let snap = metrics.snapshot();
        assert_eq!(snap.events_read, events.len() as u64);
        // Filter-stage drops account for exactly the events not kept
        // (unknown-syscall drops happen after the filter, inside kept).
        assert_eq!(
            snap.events_read
                - snap.filter_dropped["wrong-mount"]
                - snap.filter_dropped["irrelevant-fd"],
            report.filter_stats.kept as u64
        );
        assert!(metrics.stage_timings().contains_key("analyze"));
    }

    #[test]
    fn large_chunk_takes_threaded_path() {
        // Enough events to clear PARALLEL_THRESHOLD, so the scoped-thread
        // branch actually runs and must still match serial.
        let events = multi_pid_trace(7, 40);
        assert!(events.len() >= PARALLEL_THRESHOLD);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        let parallel = ParallelAnalyzer::new(filter, 4).analyze(&trace);
        assert_eq!(serial, parallel);
    }
}
