//! Pid-sharded parallel analysis over a supervised persistent worker
//! pool.
//!
//! Every piece of state the analysis pipeline carries between events is
//! per-process: the trace filter's descriptor-provenance map and cwd
//! relevance live in a per-pid entry, and coverage accumulation is a sum
//! of per-event contributions. A trace can therefore be sharded *by pid*
//! across worker threads with no cross-shard communication: each worker
//! runs an ordinary [`StreamingAnalyzer`] over its pids' events in trace
//! order, and the per-worker reports are combined with
//! [`AnalysisReport::merge`]. Because every aggregate in a report is an
//! order-independent sum over `BTreeMap`s, the merged report is
//! **identical** to a serial run — same keys, same counts, same
//! serialized bytes — regardless of the worker count. All shards
//! accumulate through one shared [`StrInterner`], so the pool builds a
//! single symbol table instead of N.
//!
//! # Supervision
//!
//! Both analyzers are *supervised*: worker panics are caught with
//! `catch_unwind`, converted into structured [`ShardError`] values, and
//! absorbed by restarting the failed shard with exponential backoff (see
//! [`SupervisorPolicy`]). The restart replays the shard's batches into a
//! fresh [`StreamingAnalyzer`], so a recovered run's report is
//! byte-identical to a fault-free one. Restarts never double-count
//! metrics: each worker *incarnation* accumulates into a private
//! [`PipelineMetrics`] whose snapshot is absorbed into the shared
//! instance only on clean completion. When a shard exhausts its restart
//! budget the run *degrades* instead of aborting: the merged report
//! omits that shard's pids and a [`ShardFailureRecord`] manifest
//! (available via [`finish_with_failures`] / [`analyze_with_failures`]
//! and in every metrics snapshot) says exactly what is missing. With
//! [`SupervisorPolicy::shard_timeout`] set, a shard that stops
//! heartbeating is declared stalled, abandoned, and replayed the same
//! way.
//!
//! [`finish_with_failures`]: ParallelStreamingAnalyzer::finish_with_failures
//! [`analyze_with_failures`]: ParallelAnalyzer::analyze_with_failures
//!
//! [`ParallelAnalyzer`] is the one-shot interface mirroring
//! [`Analyzer`](crate::Analyzer): it spawns one scoped thread per shard
//! over the whole borrowed slice — zero copies, one spawn per analysis
//! attempt.
//!
//! [`ParallelStreamingAnalyzer`] is the chunked interface mirroring
//! [`StreamingAnalyzer`]. It keeps each shard's filter state alive
//! *across* chunks so a descriptor opened (or duplicated) in one chunk
//! is still attributed correctly in the next — and unlike a
//! spawn-per-chunk design, its shard threads are **persistent**: they
//! are spawned once on the first dispatched batch and fed over bounded
//! channels, so a caller can parse the next chunk while the workers are
//! still analyzing the previous one (pipelined parse/analyze overlap).
//! Batches are shared as `Arc<EventBatch>` — one columnar block
//! broadcast to every worker, each of which walks it by reference
//! ([`EventRef`](iocov_trace::EventRef)) and keeps only its own pids, so
//! fan-out costs one atomic refcount per shard instead of an event-vector
//! clone. Hand the pool a shared batch via
//! [`push_shared`](ParallelStreamingAnalyzer::push_shared) (the
//! pipeline's hot path) or an owned chunk via
//! [`push_owned`](ParallelStreamingAnalyzer::push_owned); both the
//! borrowed [`push_all`](ParallelStreamingAnalyzer::push_all) and owned
//! compatibility paths pack events into batch columns rather than
//! cloning them. Chunks smaller than [`PARALLEL_THRESHOLD`]
//! events are coalesced in a caller-side buffer so per-batch channel
//! overhead never dominates tiny pushes. The supervisor retains every
//! dispatched batch (they are `Arc`-shared, so retention costs pointers,
//! not copies) as the replay log for restarts.
//!
//! ```
//! use iocov::{Analyzer, ParallelAnalyzer, TraceFilter};
//! use iocov_trace::{ArgValue, Trace, TraceEvent};
//!
//! let mut open = TraceEvent::build(
//!     "open",
//!     2,
//!     vec![ArgValue::Path("/mnt/test/f".into()), ArgValue::Flags(0), ArgValue::Mode(0)],
//!     3,
//! );
//! open.pid = 7;
//! let trace = Trace::from_events(vec![open]);
//! let filter = TraceFilter::mount_point("/mnt/test").unwrap();
//! let serial = Analyzer::new(filter.clone()).analyze(&trace);
//! let parallel = ParallelAnalyzer::new(filter, 4).analyze(&trace);
//! assert_eq!(serial, parallel);
//! ```

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use iocov_trace::{EventBatch, EventView, StrInterner, Trace, TraceEvent};

use crate::coverage::AnalysisReport;
use crate::filter::TraceFilter;
use crate::metrics::{MetricsSnapshot, PipelineMetrics, ShardFailureRecord};
use crate::streaming::StreamingAnalyzer;

/// A progress hook observed by every shard worker: `(shard, tick)`,
/// where `tick` is the batch ordinal within the current worker
/// incarnation (pool) or always `0` at scan start (one-shot). Fault
/// injection (`iocov-faults`) plugs in here to panic or stall a specific
/// shard at a specific point.
pub type ShardHook = Arc<dyn Fn(usize, u64) + Send + Sync>;

/// Restart budget, backoff curve, and stall watchdog for supervised
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Restarts allowed per shard before it is abandoned (`gave_up`).
    pub max_restarts: u32,
    /// Backoff before the first restart; doubles per restart.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// If set, a shard with no heartbeat progress for this long (while
    /// the supervisor is waiting on it) is declared stalled and
    /// replayed. `None` waits forever, like an unsupervised join.
    pub shard_timeout: Option<Duration>,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_restarts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            shard_timeout: None,
        }
    }
}

impl SupervisorPolicy {
    /// The backoff before the `attempt`-th restart (1-based):
    /// `base_backoff * 2^(attempt-1)`, capped at `max_backoff`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }

    /// The backoff before the `attempt`-th restart with bounded
    /// deterministic jitter: the exponential [`backoff`](Self::backoff)
    /// plus up to half of itself, where the extra fraction is drawn
    /// from a SplitMix64 mix of `(seed, attempt)`. The result always
    /// stays within `[base_backoff, max_backoff]`, and the same
    /// `(seed, attempt)` pair always yields the same duration — so
    /// simultaneous worker deaths fan out instead of restarting in
    /// lockstep, while fault schedules stay reproducible.
    #[must_use]
    pub fn jittered_backoff(&self, attempt: u32, seed: u64) -> Duration {
        let exp = self.backoff(attempt);
        let nanos = u64::try_from(exp.as_nanos()).unwrap_or(u64::MAX);
        let extra = splitmix64(seed, u64::from(attempt)) % (nanos / 2 + 1);
        Duration::from_nanos(nanos.saturating_add(extra)).clamp(self.base_backoff, self.max_backoff)
    }

    /// Sets the stall watchdog timeout.
    #[must_use]
    pub fn with_shard_timeout(mut self, timeout: Duration) -> Self {
        self.shard_timeout = Some(timeout);
        self
    }

    /// Sets the restart budget.
    #[must_use]
    pub fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }
}

/// SplitMix64 finalizer over `(seed, n)` — the same construction the
/// workload generator uses for per-round keys. Dependency-free and
/// byte-reproducible, which is all restart jitter needs.
#[must_use]
pub fn splitmix64(seed: u64, n: u64) -> u64 {
    let mut z = seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A structured shard failure, as observed by the supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The worker panicked; carries the panic payload rendered to text.
    Panicked(String),
    /// The worker produced no heartbeat for longer than the watchdog
    /// allows.
    Stalled {
        /// How long the supervisor waited without progress.
        waited: Duration,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Panicked(msg) => write!(f, "worker panicked: {msg}"),
            ShardError::Stalled { waited } => {
                write!(
                    f,
                    "worker stalled: no heartbeat for {}ms",
                    waited.as_millis()
                )
            }
        }
    }
}

thread_local! {
    static IN_SUPERVISED_SCAN: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is inside a supervised shard scan — a
/// panic raised here is caught, converted into a structured
/// [`ShardError::Panicked`], and handled by the supervisor (restart or
/// degrade), never an abort. Binaries can install a panic hook that
/// consults this to keep recovered panics off stderr; the panic message
/// still reaches the failure manifest.
#[must_use]
pub fn in_supervised_scan() -> bool {
    IN_SUPERVISED_SCAN.with(std::cell::Cell::get)
}

/// RAII: marks the current thread supervised for the guard's lifetime
/// (cleared on unwind too, so a panic leaves the thread unmarked once
/// the supervisor has taken over).
pub(crate) struct SupervisedScanGuard;

impl SupervisedScanGuard {
    pub(crate) fn enter() -> Self {
        IN_SUPERVISED_SCAN.with(|flag| flag.set(true));
        SupervisedScanGuard
    }
}

impl Drop for SupervisedScanGuard {
    fn drop(&mut self) {
        IN_SUPERVISED_SCAN.with(|flag| flag.set(false));
    }
}

/// Renders a `catch_unwind` payload to text.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A one-shot parallel analyzer: shards a trace by pid across `workers`
/// threads and merges the per-worker reports, supervising each shard
/// per [`SupervisorPolicy`].
#[derive(Clone)]
pub struct ParallelAnalyzer {
    filter: TraceFilter,
    workers: usize,
    metrics: Option<Arc<PipelineMetrics>>,
    policy: SupervisorPolicy,
    hook: Option<ShardHook>,
}

impl fmt::Debug for ParallelAnalyzer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelAnalyzer")
            .field("filter", &self.filter)
            .field("workers", &self.workers)
            .field("policy", &self.policy)
            .field("hook", &self.hook.as_ref().map(|_| "…"))
            .finish_non_exhaustive()
    }
}

impl ParallelAnalyzer {
    /// A parallel analyzer with a filter; `workers` is clamped to at
    /// least 1.
    #[must_use]
    pub fn new(filter: TraceFilter, workers: usize) -> Self {
        ParallelAnalyzer {
            filter,
            workers: workers.max(1),
            metrics: None,
            policy: SupervisorPolicy::default(),
            hook: None,
        }
    }

    /// An unfiltered parallel analyzer.
    #[must_use]
    pub fn unfiltered(workers: usize) -> Self {
        ParallelAnalyzer::new(TraceFilter::keep_all(), workers)
    }

    /// Attaches shared pipeline metrics. Workers accumulate privately
    /// and the totals are absorbed on clean shard completion, so
    /// snapshots match a serial run exactly even across restarts.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<PipelineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Overrides the supervision policy.
    #[must_use]
    pub fn with_policy(mut self, policy: SupervisorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a worker progress hook (fault injection).
    #[must_use]
    pub fn with_hook(mut self, hook: ShardHook) -> Self {
        self.hook = Some(hook);
        self
    }

    /// The worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured filter.
    #[must_use]
    pub fn filter(&self) -> &TraceFilter {
        &self.filter
    }

    /// Runs the full pipeline over one trace.
    #[must_use]
    pub fn analyze(&self, trace: &Trace) -> AnalysisReport {
        self.analyze_events(trace.events())
    }

    /// Runs the full pipeline over a slice of events.
    #[must_use]
    pub fn analyze_events(&self, events: &[TraceEvent]) -> AnalysisReport {
        self.analyze_events_with_failures(events).0
    }

    /// Like [`analyze`](Self::analyze), also returning the shard-failure
    /// manifest (empty on a fault-free run).
    #[must_use]
    pub fn analyze_with_failures(
        &self,
        trace: &Trace,
    ) -> (AnalysisReport, Vec<ShardFailureRecord>) {
        self.analyze_events_with_failures(trace.events())
    }

    /// Runs the supervised pipeline over a slice of events.
    ///
    /// One-shot analysis needs no pipelining — the whole input is
    /// already in memory — so this scans the borrowed slice directly
    /// from scoped shard threads: zero event copies and one spawn per
    /// shard attempt. A panicking shard is rescanned from scratch (its
    /// analyzer state died with it) after backoff, up to
    /// [`SupervisorPolicy::max_restarts`] times; a shard that gives up
    /// is reported in the returned manifest and its pids are missing
    /// from the (partial) report. The process is never aborted by a
    /// worker panic.
    #[must_use]
    pub fn analyze_events_with_failures(
        &self,
        events: &[TraceEvent],
    ) -> (AnalysisReport, Vec<ShardFailureRecord>) {
        let n = self.workers;
        let interner = Arc::new(StrInterner::new());
        let scans: Vec<ShardScan> = if n == 1 || events.len() < PARALLEL_THRESHOLD {
            // Below the threshold thread spawn dominates; a serial pass
            // over all shards costs the same modulo test per event.
            (0..n)
                .map(|w| self.supervised_scan(w, events, &interner))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .map(|w| {
                        let interner = Arc::clone(&interner);
                        scope.spawn(move || self.supervised_scan(w, events, &interner))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| {
                        handle.join().unwrap_or_else(|payload| ShardScan {
                            // The supervisor wrapper itself panicked —
                            // possible only via a pathological hook;
                            // degrade rather than abort.
                            report: None,
                            restarts: 0,
                            last_error: Some(panic_message(payload.as_ref())),
                        })
                    })
                    .collect()
            })
        };
        let mut merged = AnalysisReport::default();
        let mut failures = Vec::new();
        for (w, scan) in scans.into_iter().enumerate() {
            let gave_up = scan.report.is_none();
            if let Some(report) = &scan.report {
                merged.merge(report);
            }
            if scan.restarts > 0 || gave_up {
                failures.push(ShardFailureRecord {
                    shard: w,
                    restarts: scan.restarts,
                    gave_up,
                    last_error: scan.last_error.unwrap_or_default(),
                });
            }
        }
        if let Some(metrics) = &self.metrics {
            for failure in &failures {
                metrics.record_shard_failure(failure.clone());
            }
        }
        (merged, failures)
    }

    /// Scans shard `w` of `events` with restart-on-panic supervision.
    fn supervised_scan(
        &self,
        w: usize,
        events: &[TraceEvent],
        interner: &Arc<StrInterner>,
    ) -> ShardScan {
        let n = self.workers;
        let mut restarts = 0u32;
        let mut last_error = None;
        loop {
            // Fresh analyzer and private metrics per attempt: a panic
            // poisons the analyzer mid-scan, and half-counted metrics
            // must never leak into the shared instance.
            let local = self
                .metrics
                .as_ref()
                .map(|_| Arc::new(PipelineMetrics::default()));
            let mut shard =
                StreamingAnalyzer::with_interner(self.filter.clone(), Arc::clone(interner));
            if let Some(m) = &local {
                shard = shard.with_metrics(Arc::clone(m));
            }
            let scan_metrics = local.clone();
            let hook = self.hook.clone();
            let result = catch_unwind(AssertUnwindSafe(move || {
                let _supervised = SupervisedScanGuard::enter();
                let _timer = scan_metrics.as_deref().map(|m| m.time_stage("analyze"));
                if let Some(hook) = &hook {
                    hook(w, 0);
                }
                for event in events {
                    if event.pid as usize % n == w {
                        shard.push(event);
                    }
                }
                shard.finish()
            }));
            match result {
                Ok(report) => {
                    if let (Some(shared), Some(local)) = (&self.metrics, &local) {
                        shared.absorb(&local.snapshot());
                        shared.absorb_stage_timings(&local.stage_timings());
                    }
                    return ShardScan {
                        report: Some(report),
                        restarts,
                        last_error,
                    };
                }
                Err(payload) => {
                    last_error =
                        Some(ShardError::Panicked(panic_message(payload.as_ref())).to_string());
                    if restarts >= self.policy.max_restarts {
                        return ShardScan {
                            report: None,
                            restarts,
                            last_error,
                        };
                    }
                    restarts += 1;
                    if let Some(metrics) = &self.metrics {
                        metrics.record_shard_restart();
                    }
                    std::thread::sleep(self.policy.backoff(restarts));
                }
            }
        }
    }
}

/// Outcome of one supervised one-shot shard scan.
struct ShardScan {
    /// The shard's report; `None` when the restart budget ran out.
    report: Option<AnalysisReport>,
    restarts: u32,
    last_error: Option<String>,
}

/// A job sent to a persistent shard worker.
enum Job {
    /// A columnar batch of events to scan; every worker receives the
    /// same `Arc` and keeps only its own pids.
    Batch(Arc<EventBatch>),
    /// A request for a materialized snapshot of the shard's report so
    /// far, answered on the enclosed channel.
    Snapshot(SyncSender<AnalysisReport>),
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Job::Batch(batch) => f.debug_tuple("Batch").field(&batch.len()).finish(),
            Job::Snapshot(_) => f.write_str("Snapshot"),
        }
    }
}

/// A worker incarnation's exit message, sent on its done channel.
enum WorkerExit {
    /// Clean completion: the shard's final report, its per-pid relevance
    /// states (for checkpointing), and the incarnation's private metrics
    /// (snapshot + stage timings) for the supervisor to absorb.
    Finished {
        report: Box<AnalysisReport>,
        states: BTreeMap<u32, crate::PidStateSnapshot>,
        counters: Option<(MetricsSnapshot, BTreeMap<String, u64>)>,
    },
    /// The incarnation panicked.
    Panicked(String),
}

/// One live worker incarnation as the supervisor sees it.
struct Slot {
    /// Job queue sender; `None` once the queue is closed (at drain time)
    /// or the shard abandoned.
    jobs: Option<SyncSender<Job>>,
    /// Exit-message channel from the incarnation.
    done: Receiver<WorkerExit>,
    /// Bumped by the worker after every processed job — the liveness
    /// signal the stall watchdog reads.
    heartbeat: Arc<AtomicU64>,
    /// Batches from the supervisor's log already delivered to this
    /// incarnation.
    sent: usize,
}

impl Slot {
    /// A slot whose worker could not be spawned: every interaction sees
    /// a dead channel.
    fn dead() -> Self {
        let (_, done) = sync_channel(1);
        Slot {
            jobs: None,
            done,
            heartbeat: Arc::new(AtomicU64::new(0)),
            sent: 0,
        }
    }
}

/// Per-shard supervision ledger.
#[derive(Debug, Clone, Default)]
struct ShardSupervision {
    restarts: u32,
    gave_up: bool,
    last_error: Option<String>,
}

/// Outcome of offering one job to a worker's queue.
enum Offer {
    Accepted,
    Failed(ShardError),
}

/// The loop run by each persistent shard thread: drain batches (keeping
/// only `pid % n == w`), answer snapshot requests, and return the
/// shard's final report when the job channel closes.
fn worker_loop(
    w: usize,
    n: usize,
    mut shard: StreamingAnalyzer,
    jobs: Receiver<Job>,
    metrics: Option<Arc<PipelineMetrics>>,
    heartbeat: Arc<AtomicU64>,
    hook: Option<ShardHook>,
) -> (AnalysisReport, BTreeMap<u32, crate::PidStateSnapshot>) {
    let mut tick = 0u64;
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Batch(batch) => {
                if let Some(hook) = &hook {
                    hook(w, tick);
                }
                tick += 1;
                // Each worker times its own scan, so the "analyze" stage
                // total is summed across shards (CPU time, not wall
                // clock).
                let _timer = metrics.as_deref().map(|m| m.time_stage("analyze"));
                // Walk the shared columns by reference: no owned event
                // is materialized on the worker side either.
                for event in batch.iter() {
                    if event.pid() as usize % n == w {
                        shard.push(&event);
                    }
                }
                heartbeat.fetch_add(1, Ordering::Relaxed);
            }
            Job::Snapshot(reply) => {
                let _ = reply.send(shard.report());
                heartbeat.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    heartbeat.fetch_add(1, Ordering::Relaxed);
    let states = shard.pid_states();
    (shard.finish(), states)
}

/// A chunked parallel analyzer: N **persistent** worker threads, each
/// owning a [`StreamingAnalyzer`] shard for the pids with
/// `pid % N == shard index`, supervised per [`SupervisorPolicy`].
///
/// Shard state survives across [`push_all`](Self::push_all) /
/// [`push_owned`](Self::push_owned) calls, so feeding a long trace
/// chunk-by-chunk preserves descriptor provenance exactly like a single
/// serial [`StreamingAnalyzer`] would. Worker threads are spawned
/// lazily on the first dispatched batch and live until
/// [`finish`](Self::finish); batches travel over bounded channels of
/// depth [`PIPELINE_DEPTH`], so the caller can parse chunk *k + 1*
/// while the workers analyze chunk *k*. Every dispatched batch is
/// retained (`Arc`-shared) as the replay log: a shard that panics or
/// stalls is restarted with a fresh analyzer and replayed from batch 0,
/// reproducing the exact per-shard event sequence.
pub struct ParallelStreamingAnalyzer {
    filter: TraceFilter,
    nworkers: usize,
    interner: Arc<StrInterner>,
    metrics: Option<Arc<PipelineMetrics>>,
    policy: SupervisorPolicy,
    hook: Option<ShardHook>,
    /// Live incarnations; empty until the first batch dispatch.
    slots: Vec<Slot>,
    /// Every batch ever dispatched, in order — the replay log.
    batch_log: Vec<Arc<EventBatch>>,
    /// Per-shard restart ledger.
    supervision: Vec<ShardSupervision>,
    /// Caller-side coalescing buffer for chunks below
    /// [`PARALLEL_THRESHOLD`], packed columnar like everything else.
    pending: EventBatch,
    /// Checkpoint-restored per-pid relevance states; each shard
    /// incarnation restores its `pid % N == shard` subset before
    /// scanning (including supervised respawns, which replay on top of
    /// the same base).
    base_states: BTreeMap<u32, crate::PidStateSnapshot>,
}

impl fmt::Debug for ParallelStreamingAnalyzer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelStreamingAnalyzer")
            .field("workers", &self.nworkers)
            .field("policy", &self.policy)
            .field("batches", &self.batch_log.len())
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl ParallelStreamingAnalyzer {
    /// Creates a pool of `workers` persistent shards (clamped to at
    /// least 1) over clones of `filter`. Threads are spawned on the
    /// first dispatched batch, not here, so a pool that never sees a
    /// large chunk costs one spawn per shard total.
    #[must_use]
    pub fn new(filter: TraceFilter, workers: usize) -> Self {
        let nworkers = workers.max(1);
        ParallelStreamingAnalyzer {
            filter,
            nworkers,
            interner: Arc::new(StrInterner::new()),
            metrics: None,
            policy: SupervisorPolicy::default(),
            hook: None,
            slots: Vec::new(),
            batch_log: Vec::new(),
            supervision: vec![ShardSupervision::default(); nworkers],
            pending: EventBatch::new(),
            base_states: BTreeMap::new(),
        }
    }

    /// Seeds every shard with checkpoint-restored per-pid relevance
    /// states (each worker restores only its own pids). Must be called
    /// before the first push.
    #[must_use]
    pub fn with_base_states(mut self, states: BTreeMap<u32, crate::PidStateSnapshot>) -> Self {
        debug_assert!(
            self.slots.is_empty(),
            "set base states before pushing events"
        );
        self.base_states = states;
        self
    }

    /// Attaches shared pipeline metrics to every shard. Must be called
    /// before the first push — workers capture the metrics handle when
    /// they spawn.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<PipelineMetrics>) -> Self {
        debug_assert!(
            self.slots.is_empty(),
            "attach metrics before pushing events"
        );
        self.metrics = Some(metrics);
        self
    }

    /// Overrides the supervision policy. Must be called before the
    /// first push.
    #[must_use]
    pub fn with_policy(mut self, policy: SupervisorPolicy) -> Self {
        debug_assert!(self.slots.is_empty(), "set policy before pushing events");
        self.policy = policy;
        self
    }

    /// Installs a worker progress hook (fault injection). Must be
    /// called before the first push.
    #[must_use]
    pub fn with_hook(mut self, hook: ShardHook) -> Self {
        debug_assert!(self.slots.is_empty(), "set hook before pushing events");
        self.hook = Some(hook);
        self
    }

    /// The worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.nworkers
    }

    /// Spawns one fresh worker incarnation for shard `w`.
    fn spawn_slot(&self, w: usize) -> std::io::Result<Slot> {
        let n = self.nworkers;
        let (jobs, queue) = sync_channel::<Job>(PIPELINE_DEPTH);
        let (done_tx, done) = sync_channel::<WorkerExit>(1);
        let heartbeat = Arc::new(AtomicU64::new(0));
        // Filter cloned per incarnation: the worker thread owns its
        // analyzer (and dies with it on panic), so it cannot borrow
        // the supervisor's copy.
        let mut shard =
            StreamingAnalyzer::with_interner(self.filter.clone(), Arc::clone(&self.interner));
        if !self.base_states.is_empty() {
            // Cloned, not moved: the base states must survive as the
            // seed for every *future* incarnation of this shard — a
            // supervised respawn replays the log on the same base.
            let subset: BTreeMap<u32, crate::PidStateSnapshot> = self
                .base_states
                .iter()
                .filter(|(&pid, _)| pid as usize % n == w)
                .map(|(&pid, state)| (pid, state.clone()))
                .collect();
            shard.restore_pid_states(&subset);
        }
        // Private metrics per incarnation; absorbed by the supervisor
        // only on clean completion (see WorkerExit::Finished).
        let local = self
            .metrics
            .as_ref()
            .map(|_| Arc::new(PipelineMetrics::default()));
        if let Some(m) = &local {
            shard = shard.with_metrics(Arc::clone(m));
        }
        let beat = Arc::clone(&heartbeat);
        let hook = self.hook.clone();
        std::thread::Builder::new()
            .name(format!("iocov-shard-{w}"))
            .spawn(move || {
                let loop_metrics = local.clone();
                let result = catch_unwind(AssertUnwindSafe(move || {
                    let _supervised = SupervisedScanGuard::enter();
                    worker_loop(w, n, shard, queue, loop_metrics, beat, hook)
                }));
                let exit = match result {
                    Ok((report, states)) => WorkerExit::Finished {
                        report: Box::new(report),
                        states,
                        counters: local.map(|m| (m.snapshot(), m.stage_timings())),
                    },
                    Err(payload) => WorkerExit::Panicked(panic_message(payload.as_ref())),
                };
                let _ = done_tx.send(exit);
            })?;
        Ok(Slot {
            jobs: Some(jobs),
            done,
            heartbeat,
            sent: 0,
        })
    }

    /// Spawns shard `w`, burning restart budget on spawn failure; a
    /// shard whose worker cannot be spawned at all gives up with a dead
    /// slot instead of aborting the run.
    fn spawned_slot(&mut self, w: usize) -> Slot {
        loop {
            match self.spawn_slot(w) {
                Ok(slot) => return slot,
                Err(e) => {
                    self.supervision[w].last_error = Some(format!("spawn shard worker: {e}"));
                    if self.supervision[w].restarts >= self.policy.max_restarts {
                        self.supervision[w].gave_up = true;
                        return Slot::dead();
                    }
                    self.supervision[w].restarts += 1;
                    if let Some(metrics) = &self.metrics {
                        metrics.record_shard_restart();
                    }
                    std::thread::sleep(self.policy.backoff(self.supervision[w].restarts));
                }
            }
        }
    }

    /// Offers one job to shard `w`, spinning on a full queue (with the
    /// stall watchdog active) and detecting a dead worker.
    fn offer_job(&self, w: usize, mut job: Job) -> Offer {
        let slot = &self.slots[w];
        let Some(jobs) = &slot.jobs else {
            return Offer::Failed(ShardError::Panicked("worker unavailable".into()));
        };
        let mut last_beat = slot.heartbeat.load(Ordering::Relaxed);
        let mut progress_at = Instant::now();
        loop {
            match jobs.try_send(job) {
                Ok(()) => return Offer::Accepted,
                Err(TrySendError::Disconnected(_)) => {
                    return Offer::Failed(self.reap_exit(w));
                }
                Err(TrySendError::Full(back)) => {
                    job = back;
                    if let Some(limit) = self.policy.shard_timeout {
                        let beat = slot.heartbeat.load(Ordering::Relaxed);
                        if beat != last_beat {
                            last_beat = beat;
                            progress_at = Instant::now();
                        } else if progress_at.elapsed() >= limit {
                            return Offer::Failed(ShardError::Stalled {
                                waited: progress_at.elapsed(),
                            });
                        }
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    /// Fetches the exit message of a worker whose queue disconnected.
    fn reap_exit(&self, w: usize) -> ShardError {
        // The worker drops its queue receiver (disconnecting us) during
        // unwind, then sends its exit message; give it a moment.
        match self.slots[w].done.recv_timeout(Duration::from_secs(5)) {
            Ok(WorkerExit::Panicked(msg)) => ShardError::Panicked(msg),
            Ok(WorkerExit::Finished { .. }) => {
                ShardError::Panicked("worker exited before its queue closed".into())
            }
            Err(_) => ShardError::Panicked("worker terminated without reporting".into()),
        }
    }

    /// Drains the pool like [`finish_with_failures`], additionally
    /// returning the merged per-pid relevance states at the drain point
    /// (the union of the disjoint per-shard maps) — everything a
    /// checkpoint needs to seed a successor pool via
    /// [`with_base_states`](Self::with_base_states). A pool that never
    /// dispatched a batch passes its base states through unchanged.
    ///
    /// [`finish_with_failures`]: Self::finish_with_failures
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn finish_with_states(
        mut self,
    ) -> (
        AnalysisReport,
        Vec<ShardFailureRecord>,
        BTreeMap<u32, crate::PidStateSnapshot>,
    ) {
        self.flush_pending();
        let mut merged = AnalysisReport::default();
        let mut states = std::mem::take(&mut self.base_states);
        if !self.slots.is_empty() {
            let target = self.batch_log.len();
            for w in 0..self.nworkers {
                loop {
                    self.deliver_up_to(w, target);
                    if self.supervision[w].gave_up {
                        break;
                    }
                    // Close this incarnation's queue so it can finish.
                    self.slots[w].jobs = None;
                    match self.await_exit(w) {
                        Ok((report, shard_states, counters)) => {
                            merged.merge(&report);
                            // The worker's map already contains its
                            // restored base subset, so extend replaces
                            // exactly this shard's pids.
                            states.extend(shard_states);
                            if let (Some(shared), Some((snapshot, timings))) =
                                (&self.metrics, counters)
                            {
                                shared.absorb(&snapshot);
                                shared.absorb_stage_timings(&timings);
                            }
                            break;
                        }
                        Err(error) => self.recover(w, &error),
                    }
                }
            }
        }
        let failures = self.manifest();
        if let Some(metrics) = &self.metrics {
            for failure in &failures {
                metrics.record_shard_failure(failure.clone());
            }
        }
        (merged, failures, states)
    }

    /// Records a failure for shard `w` and either respawns a fresh
    /// incarnation (the caller replays the log into it) or abandons the
    /// shard once the restart budget is spent.
    fn recover(&mut self, w: usize, error: &ShardError) {
        self.supervision[w].last_error = Some(error.to_string());
        if self.supervision[w].restarts >= self.policy.max_restarts {
            self.supervision[w].gave_up = true;
            // Abandon: dropping the sender lets a live-but-stalled
            // incarnation drain and exit on its own; its report is
            // discarded.
            self.slots[w].jobs = None;
            return;
        }
        self.supervision[w].restarts += 1;
        if let Some(metrics) = &self.metrics {
            metrics.record_shard_restart();
        }
        std::thread::sleep(self.policy.backoff(self.supervision[w].restarts));
        self.slots[w] = self.spawned_slot(w);
    }

    /// Delivers log batches to shard `w` until its incarnation has seen
    /// the first `target` batches (restarting and replaying as needed).
    fn deliver_up_to(&mut self, w: usize, target: usize) {
        while !self.supervision[w].gave_up && self.slots[w].sent < target {
            let idx = self.slots[w].sent;
            match self.offer_job(w, Job::Batch(Arc::clone(&self.batch_log[idx]))) {
                Offer::Accepted => self.slots[w].sent = idx + 1,
                Offer::Failed(error) => self.recover(w, &error),
            }
        }
    }

    /// Waits for shard `w`'s incarnation to exit after its queue was
    /// closed, watching for stalls.
    #[allow(clippy::type_complexity)]
    fn await_exit(
        &self,
        w: usize,
    ) -> Result<
        (
            Box<AnalysisReport>,
            BTreeMap<u32, crate::PidStateSnapshot>,
            Option<(MetricsSnapshot, BTreeMap<String, u64>)>,
        ),
        ShardError,
    > {
        let slot = &self.slots[w];
        let mut last_beat = slot.heartbeat.load(Ordering::Relaxed);
        let mut progress_at = Instant::now();
        loop {
            match slot.done.recv_timeout(Duration::from_millis(20)) {
                Ok(WorkerExit::Finished {
                    report,
                    states,
                    counters,
                }) => return Ok((report, states, counters)),
                Ok(WorkerExit::Panicked(msg)) => return Err(ShardError::Panicked(msg)),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ShardError::Panicked(
                        "worker terminated without reporting".into(),
                    ))
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(limit) = self.policy.shard_timeout {
                        let beat = slot.heartbeat.load(Ordering::Relaxed);
                        if beat != last_beat {
                            last_beat = beat;
                            progress_at = Instant::now();
                        } else if progress_at.elapsed() >= limit {
                            return Err(ShardError::Stalled {
                                waited: progress_at.elapsed(),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Hands one batch to every worker. Blocks only when a worker's
    /// queue is [`PIPELINE_DEPTH`] batches behind — the backpressure
    /// that bounds memory to `depth × batch` per shard (plus the
    /// `Arc`-shared replay log).
    fn dispatch(&mut self, batch: Arc<EventBatch>) {
        if self.slots.is_empty() {
            self.slots = (0..self.nworkers).map(|w| self.spawned_slot(w)).collect();
        }
        self.batch_log.push(batch);
        let target = self.batch_log.len();
        for w in 0..self.nworkers {
            self.deliver_up_to(w, target);
        }
    }

    /// Dispatches the coalescing buffer, if non-empty.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = Arc::new(std::mem::take(&mut self.pending));
        self.dispatch(batch);
    }

    /// Consumes one columnar batch — the zero-copy hot path from the
    /// decode stage: a batch of at least [`PARALLEL_THRESHOLD`] events
    /// is wrapped in an `Arc` and broadcast as-is (one refcount bump
    /// per shard); smaller batches are coalesced column-to-column and
    /// dispatched once the buffer reaches the threshold.
    pub fn push_shared(&mut self, batch: EventBatch) {
        if self.pending.is_empty() && batch.len() >= PARALLEL_THRESHOLD {
            self.dispatch(Arc::new(batch));
            return;
        }
        self.pending.append_batch(&batch);
        if self.pending.len() >= PARALLEL_THRESHOLD {
            self.flush_pending();
        }
    }

    /// Consumes one owned chunk of events, packing it into batch
    /// columns before dispatch.
    pub fn push_owned(&mut self, events: Vec<TraceEvent>) {
        if self.pending.is_empty() && events.len() >= PARALLEL_THRESHOLD {
            self.dispatch(Arc::new(EventBatch::from_events(&events)));
            return;
        }
        for event in &events {
            self.pending.push_event(event);
        }
        if self.pending.len() >= PARALLEL_THRESHOLD {
            self.flush_pending();
        }
    }

    /// Consumes a stream of owned events, coalescing into
    /// [`PARALLEL_THRESHOLD`]-sized batches.
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = TraceEvent>) {
        for event in events {
            self.pending.push_event(&event);
        }
        if self.pending.len() >= PARALLEL_THRESHOLD {
            self.flush_pending();
        }
    }

    /// Consumes one chunk of borrowed events. Events are packed into
    /// the coalescing batch's columns directly — unlike the former
    /// `Arc<Vec<TraceEvent>>` design, no per-event `TraceEvent` clone
    /// (name `String` + args `Vec` + path `String`s) is made to outlive
    /// the borrow.
    pub fn push_all(&mut self, events: &[TraceEvent]) {
        for event in events {
            self.pending.push_event(event);
        }
        if self.pending.len() >= PARALLEL_THRESHOLD {
            self.flush_pending();
        }
    }

    /// Drains the pool and returns the merged report. Equivalent to
    /// [`finish_with_failures`](Self::finish_with_failures) with the
    /// manifest discarded (it is still recorded in the attached metrics,
    /// if any). A degraded run returns the partial report — never
    /// panics.
    #[must_use]
    pub fn finish(self) -> AnalysisReport {
        self.finish_with_failures().0
    }

    /// Drains the pool: flushes the coalescing buffer, closes every job
    /// queue, collects the shard reports, and merges them in shard
    /// order — supervising throughout. A shard that panics or stalls at
    /// any point (including during the final drain) is restarted with
    /// backoff and replayed from the batch log; a shard that exhausts
    /// its restart budget is reported in the returned manifest (also
    /// recorded in the attached metrics) and omitted from the merged
    /// report.
    #[must_use]
    pub fn finish_with_failures(self) -> (AnalysisReport, Vec<ShardFailureRecord>) {
        let (merged, failures, _) = self.finish_with_states();
        (merged, failures)
    }

    /// A merged snapshot of the report so far (the stream may
    /// continue). Flushes the coalescing buffer and waits for every
    /// worker to answer a snapshot request, so the result reflects all
    /// events pushed before the call — restarting and replaying shards
    /// that fail along the way.
    #[must_use]
    pub fn report(&mut self) -> AnalysisReport {
        self.flush_pending();
        let mut merged = AnalysisReport::default();
        if self.slots.is_empty() {
            return merged;
        }
        let target = self.batch_log.len();
        for w in 0..self.nworkers {
            loop {
                self.deliver_up_to(w, target);
                if self.supervision[w].gave_up {
                    break;
                }
                let (reply_tx, reply_rx) = sync_channel(1);
                match self.offer_job(w, Job::Snapshot(reply_tx)) {
                    Offer::Failed(error) => {
                        self.recover(w, &error);
                        continue;
                    }
                    Offer::Accepted => {}
                }
                match self.await_snapshot(w, &reply_rx) {
                    Ok(report) => {
                        merged.merge(&report);
                        break;
                    }
                    Err(error) => self.recover(w, &error),
                }
            }
        }
        merged
    }

    /// Waits for a snapshot reply from shard `w`, watching for stalls
    /// and for the worker dying mid-snapshot.
    fn await_snapshot(
        &self,
        w: usize,
        reply: &Receiver<AnalysisReport>,
    ) -> Result<AnalysisReport, ShardError> {
        let slot = &self.slots[w];
        let mut last_beat = slot.heartbeat.load(Ordering::Relaxed);
        let mut progress_at = Instant::now();
        loop {
            match reply.recv_timeout(Duration::from_millis(20)) {
                Ok(report) => return Ok(report),
                Err(RecvTimeoutError::Disconnected) => return Err(self.reap_exit(w)),
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(limit) = self.policy.shard_timeout {
                        let beat = slot.heartbeat.load(Ordering::Relaxed);
                        if beat != last_beat {
                            last_beat = beat;
                            progress_at = Instant::now();
                        } else if progress_at.elapsed() >= limit {
                            return Err(ShardError::Stalled {
                                waited: progress_at.elapsed(),
                            });
                        }
                    }
                }
            }
        }
    }

    /// The shard-failure manifest: one record per shard that needed
    /// restarting, in shard order.
    fn manifest(&self) -> Vec<ShardFailureRecord> {
        self.supervision
            .iter()
            .enumerate()
            .filter(|(_, s)| s.restarts > 0 || s.gave_up)
            .map(|(w, s)| ShardFailureRecord {
                shard: w,
                restarts: s.restarts,
                gave_up: s.gave_up,
                last_error: s.last_error.clone().unwrap_or_default(),
            })
            .collect()
    }
}

/// Chunks smaller than this are coalesced in the caller's buffer before
/// dispatch ([`ParallelStreamingAnalyzer`]) or analyzed on the calling
/// thread ([`ParallelAnalyzer`]); per-batch dispatch (or thread spawn)
/// costs more than analyzing this few events.
pub const PARALLEL_THRESHOLD: usize = 1024;

/// Bounded depth of each worker's job queue: the caller may run at most
/// this many batches ahead of the slowest shard.
pub const PIPELINE_DEPTH: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analyzer, ArgName};
    use iocov_trace::ArgValue;

    /// A multi-pid trace exercising every provenance rule: opens, dups,
    /// renames, chdir, interleaved across `pids` processes.
    fn multi_pid_trace(pids: u32, per_pid: usize) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for round in 0..per_pid {
            for pid in 0..pids {
                let fd = 3 + round as i32;
                let mount = pid % 2 == 0; // odd pids are pure noise
                let root = if mount { "/mnt/test" } else { "/somewhere" };
                let mut step = vec![
                    TraceEvent::build(
                        "open",
                        2,
                        vec![
                            ArgValue::Path(format!("{root}/f{round}")),
                            ArgValue::Flags(0o101),
                            ArgValue::Mode(0o644),
                        ],
                        i64::from(fd),
                    ),
                    TraceEvent::build(
                        "dup2",
                        33,
                        vec![ArgValue::Fd(fd), ArgValue::Fd(fd + 64)],
                        i64::from(fd + 64),
                    ),
                    TraceEvent::build(
                        "write",
                        1,
                        vec![
                            ArgValue::Fd(fd + 64),
                            ArgValue::Ptr(1),
                            ArgValue::UInt(1 << (round % 20)),
                        ],
                        1 << (round % 20),
                    ),
                    TraceEvent::build(
                        "rename",
                        82,
                        vec![
                            ArgValue::Path(format!("/tmp/stage{round}")),
                            ArgValue::Path(format!("{root}/dst{round}")),
                        ],
                        0,
                    ),
                    TraceEvent::build("chdir", 80, vec![ArgValue::Path(root.to_owned())], 0),
                    TraceEvent::build(
                        "open",
                        2,
                        vec![
                            ArgValue::Path("relative".into()),
                            ArgValue::Flags(0),
                            ArgValue::Mode(0),
                        ],
                        i64::from(fd + 100),
                    ),
                    TraceEvent::build("close", 3, vec![ArgValue::Fd(fd)], 0),
                ];
                for event in &mut step {
                    event.pid = pid;
                }
                events.extend(step);
            }
        }
        events
    }

    /// A hook that panics the first `times` times shard `shard` reaches
    /// tick `tick`, then disarms (mirrors `iocov_faults::PanicSchedule`,
    /// which this crate cannot depend on).
    fn panic_hook(shard: usize, tick: u64, times: u64) -> ShardHook {
        let fired = Arc::new(AtomicU64::new(0));
        Arc::new(move |w, t| {
            if w == shard && t == tick && fired.fetch_add(1, Ordering::SeqCst) < times {
                panic!("injected test panic (shard {w}, tick {t})");
            }
        })
    }

    /// A fast-retry policy so tests don't sleep through real backoff.
    fn fast_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            max_restarts: 3,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(2),
            shard_timeout: None,
        }
    }

    #[test]
    fn jittered_backoff_is_bounded_and_reproducible() {
        let policy = SupervisorPolicy::default();
        for seed in [0u64, 1, 0xdead_beef, u64::MAX] {
            for attempt in 1..=8u32 {
                let a = policy.jittered_backoff(attempt, seed);
                let b = policy.jittered_backoff(attempt, seed);
                // Byte-reproducible per (seed, attempt).
                assert_eq!(a, b, "seed={seed} attempt={attempt}");
                assert!(
                    a >= policy.base_backoff && a <= policy.max_backoff,
                    "seed={seed} attempt={attempt}: {a:?} outside [base, max]"
                );
                // Never less than the un-jittered exponential floor
                // (until the ceiling compresses everything onto max).
                assert!(a >= policy.backoff(attempt).min(policy.max_backoff));
            }
        }
        // Different seeds actually fan out (the point of the jitter).
        let spread: std::collections::BTreeSet<Duration> = (0..16u64)
            .map(|seed| policy.jittered_backoff(2, seed))
            .collect();
        assert!(spread.len() > 1, "jitter produced identical backoffs");
    }

    #[test]
    fn parallel_matches_serial_at_every_worker_count() {
        let events = multi_pid_trace(5, 4);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        for workers in 1..=8 {
            let parallel = ParallelAnalyzer::new(filter.clone(), workers).analyze(&trace);
            assert_eq!(serial, parallel, "diverged at {workers} workers");
        }
    }

    #[test]
    fn parallel_serializes_identically_to_serial() {
        let trace = Trace::from_events(multi_pid_trace(3, 3));
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = serde_json::to_string(&Analyzer::new(filter.clone()).analyze(&trace)).unwrap();
        let parallel =
            serde_json::to_string(&ParallelAnalyzer::new(filter, 4).analyze(&trace)).unwrap();
        assert_eq!(serial, parallel, "reports must be byte-identical");
    }

    #[test]
    fn more_workers_than_pids_is_fine() {
        let trace = Trace::from_events(multi_pid_trace(2, 2));
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        let parallel = ParallelAnalyzer::new(filter, 8).analyze(&trace);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let analyzer = ParallelAnalyzer::unfiltered(0);
        assert_eq!(analyzer.workers(), 1);
        assert_eq!(
            ParallelStreamingAnalyzer::new(TraceFilter::keep_all(), 0).workers(),
            1
        );
    }

    #[test]
    fn chunked_parallel_keeps_provenance_across_chunks() {
        // fd opened in chunk 1, duplicated in chunk 2, written via the
        // duplicate in chunk 3: per-chunk batch analysis would lose the
        // attribution, the sharded streaming analyzer must not.
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let mut open = TraceEvent::build(
            "open",
            2,
            vec![
                ArgValue::Path("/mnt/test/a".into()),
                ArgValue::Flags(0),
                ArgValue::Mode(0),
            ],
            3,
        );
        open.pid = 6;
        let mut dup = TraceEvent::build("dup", 32, vec![ArgValue::Fd(3)], 9);
        dup.pid = 6;
        let mut write = TraceEvent::build(
            "write",
            1,
            vec![ArgValue::Fd(9), ArgValue::Ptr(1), ArgValue::UInt(128)],
            128,
        );
        write.pid = 6;

        let mut sharded = ParallelStreamingAnalyzer::new(filter, 4);
        sharded.push_all(&[open]);
        sharded.push_all(&[dup]);
        sharded.push_all(&[write]);
        let report = sharded.finish();
        assert_eq!(report.input_coverage(ArgName::WriteCount).calls, 1);
        assert_eq!(report.filter_stats.kept, 3);
    }

    #[test]
    fn interim_report_merges_all_shards() {
        let mut sharded = ParallelStreamingAnalyzer::new(TraceFilter::keep_all(), 3);
        let events = multi_pid_trace(3, 1);
        let total = events.len();
        sharded.push_all(&events);
        assert_eq!(sharded.report().filter_stats.total, total);
    }

    #[test]
    fn parallel_metrics_snapshot_matches_serial_byte_for_byte() {
        // The acceptance bar: counters from a 4-worker run must be
        // *byte-identical* to a serial run over the same trace — large
        // enough to clear PARALLEL_THRESHOLD so real threads race on the
        // shared atomics.
        let events = multi_pid_trace(7, 40);
        assert!(events.len() >= PARALLEL_THRESHOLD);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();

        let serial_metrics = Arc::new(PipelineMetrics::default());
        let serial = Analyzer::new(filter.clone())
            .with_metrics(Arc::clone(&serial_metrics))
            .analyze(&trace);

        let parallel_metrics = Arc::new(PipelineMetrics::default());
        let parallel = ParallelAnalyzer::new(filter, 4)
            .with_metrics(Arc::clone(&parallel_metrics))
            .analyze(&trace);

        assert_eq!(serial, parallel);
        let s = serial_metrics.snapshot();
        let p = parallel_metrics.snapshot();
        assert_eq!(s, p);
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            serde_json::to_string(&p).unwrap(),
            "metrics snapshots must be byte-identical"
        );
        assert!(s.events_read > 0 && s.total_dropped() > 0);
    }

    #[test]
    fn shared_metrics_across_chunked_parallel_runs() {
        // One metrics instance fed by a chunked sharded run still sums to
        // the trace totals.
        let events = multi_pid_trace(4, 3);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let metrics = Arc::new(PipelineMetrics::default());
        let mut sharded =
            ParallelStreamingAnalyzer::new(filter, 3).with_metrics(Arc::clone(&metrics));
        for chunk in events.chunks(5) {
            sharded.push_all(chunk);
        }
        let report = sharded.finish();
        let snap = metrics.snapshot();
        assert_eq!(snap.events_read, events.len() as u64);
        // Filter-stage drops account for exactly the events not kept
        // (unknown-syscall drops happen after the filter, inside kept).
        assert_eq!(
            snap.events_read
                - snap.filter_dropped["wrong-mount"]
                - snap.filter_dropped["irrelevant-fd"],
            report.filter_stats.kept as u64
        );
        assert!(metrics.stage_timings().contains_key("analyze"));
    }

    #[test]
    fn owned_batches_match_serial_at_every_worker_count() {
        // The zero-copy hot path: chunks big enough to dispatch without
        // coalescing, pushed as owned vectors.
        let events = multi_pid_trace(7, 60);
        assert!(events.len() >= 2 * PARALLEL_THRESHOLD);
        let trace = Trace::from_events(events.clone());
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = serde_json::to_string(&Analyzer::new(filter.clone()).analyze(&trace)).unwrap();
        for workers in 1..=4 {
            let mut pool = ParallelStreamingAnalyzer::new(filter.clone(), workers);
            for chunk in events.chunks(PARALLEL_THRESHOLD) {
                pool.push_owned(chunk.to_vec());
            }
            let report = serde_json::to_string(&pool.finish()).unwrap();
            assert_eq!(serial, report, "diverged at {workers} workers");
        }
    }

    #[test]
    fn mixed_owned_and_borrowed_pushes_match_serial() {
        let events = multi_pid_trace(5, 8);
        let trace = Trace::from_events(events.clone());
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        let mut pool = ParallelStreamingAnalyzer::new(filter, 3);
        let (left, right) = events.split_at(events.len() / 2);
        pool.push_all(left);
        pool.push_owned(right.to_vec());
        assert_eq!(serial, pool.finish());
    }

    #[test]
    fn interim_report_then_more_batches_matches_serial() {
        // A snapshot mid-stream must not disturb shard state: pushing
        // more events afterwards still converges on the serial report.
        let events = multi_pid_trace(7, 40);
        let trace = Trace::from_events(events.clone());
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        let mut pool = ParallelStreamingAnalyzer::new(filter, 4);
        let (left, right) = events.split_at(events.len() / 3);
        pool.push_owned(left.to_vec());
        let interim = pool.report();
        assert_eq!(interim.filter_stats.total, left.len());
        pool.push_owned(right.to_vec());
        assert_eq!(serial, pool.finish());
    }

    #[test]
    fn empty_pool_finishes_to_default_report() {
        let pool = ParallelStreamingAnalyzer::new(TraceFilter::keep_all(), 4);
        assert_eq!(pool.finish(), AnalysisReport::default());
    }

    #[test]
    fn large_chunk_takes_threaded_path() {
        // Enough events to clear PARALLEL_THRESHOLD, so the scoped-thread
        // branch actually runs and must still match serial.
        let events = multi_pid_trace(7, 40);
        assert!(events.len() >= PARALLEL_THRESHOLD);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        let parallel = ParallelAnalyzer::new(filter, 4).analyze(&trace);
        assert_eq!(serial, parallel);
    }

    // ------------------------------------------------------------------
    // Supervision
    // ------------------------------------------------------------------

    #[test]
    fn one_shot_injected_panic_recovers_byte_identical_serial_branch() {
        // Small trace → the supervised serial branch runs on the calling
        // thread; the panic must be caught there too.
        let events = multi_pid_trace(5, 4);
        assert!(events.len() < PARALLEL_THRESHOLD);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = serde_json::to_string(&Analyzer::new(filter.clone()).analyze(&trace)).unwrap();
        let analyzer = ParallelAnalyzer::new(filter, 3)
            .with_policy(fast_policy())
            .with_hook(panic_hook(1, 0, 1));
        let (report, failures) = analyzer.analyze_with_failures(&trace);
        assert_eq!(serial, serde_json::to_string(&report).unwrap());
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].shard, 1);
        assert_eq!(failures[0].restarts, 1);
        assert!(!failures[0].gave_up);
        assert!(failures[0].last_error.contains("injected test panic"));
    }

    #[test]
    fn one_shot_injected_panic_recovers_byte_identical_threaded_branch() {
        let events = multi_pid_trace(7, 40);
        assert!(events.len() >= PARALLEL_THRESHOLD);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = serde_json::to_string(&Analyzer::new(filter.clone()).analyze(&trace)).unwrap();
        let analyzer = ParallelAnalyzer::new(filter, 4)
            .with_policy(fast_policy())
            .with_hook(panic_hook(2, 0, 1));
        let (report, failures) = analyzer.analyze_with_failures(&trace);
        assert_eq!(serial, serde_json::to_string(&report).unwrap());
        assert_eq!(failures.len(), 1);
        assert!(!failures[0].gave_up);
    }

    #[test]
    fn one_shot_exhausted_restarts_degrade_to_partial_report() {
        let events = multi_pid_trace(4, 2);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        // Shard 0 panics forever (far more charges than the budget).
        let analyzer = ParallelAnalyzer::new(filter.clone(), 2)
            .with_policy(fast_policy())
            .with_hook(panic_hook(0, 0, u64::MAX));
        let (report, failures) = analyzer.analyze_with_failures(&trace);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].shard, 0);
        assert_eq!(failures[0].restarts, fast_policy().max_restarts);
        assert!(failures[0].gave_up);
        // The surviving shard's pids are still fully analyzed.
        let odd_only: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.pid % 2 == 1)
            .cloned()
            .collect();
        let expected = Analyzer::new(filter).analyze(&Trace::from_events(odd_only));
        assert_eq!(report, expected);
    }

    #[test]
    fn pool_injected_panic_recovers_byte_identical() {
        let events = multi_pid_trace(7, 40);
        let trace = Trace::from_events(events.clone());
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = serde_json::to_string(&Analyzer::new(filter.clone()).analyze(&trace)).unwrap();
        // Panic on the second batch of shard 1: state replay (not just
        // the failing batch) must reconstruct batch 1's contribution.
        let mut pool = ParallelStreamingAnalyzer::new(filter, 3)
            .with_policy(fast_policy())
            .with_hook(panic_hook(1, 1, 1));
        for chunk in events.chunks(PARALLEL_THRESHOLD) {
            pool.push_owned(chunk.to_vec());
        }
        let (report, failures) = pool.finish_with_failures();
        assert_eq!(serial, serde_json::to_string(&report).unwrap());
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].shard, 1);
        assert!(!failures[0].gave_up);
    }

    #[test]
    fn pool_metrics_not_double_counted_across_restart() {
        let events = multi_pid_trace(6, 40);
        let trace = Trace::from_events(events.clone());
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();

        let clean_metrics = Arc::new(PipelineMetrics::default());
        let clean = Analyzer::new(filter.clone())
            .with_metrics(Arc::clone(&clean_metrics))
            .analyze(&trace);

        let metrics = Arc::new(PipelineMetrics::default());
        let mut pool = ParallelStreamingAnalyzer::new(filter, 2)
            .with_metrics(Arc::clone(&metrics))
            .with_policy(fast_policy())
            .with_hook(panic_hook(0, 1, 1));
        for chunk in events.chunks(PARALLEL_THRESHOLD) {
            pool.push_owned(chunk.to_vec());
        }
        let report = pool.finish();
        assert_eq!(clean, report);
        let snap = metrics.snapshot();
        let clean_snap = clean_metrics.snapshot();
        // Restarted shard replays its events, but only the successful
        // incarnation's counters are absorbed: totals match a clean run.
        assert_eq!(snap.events_read, clean_snap.events_read);
        assert_eq!(snap.filter_dropped, clean_snap.filter_dropped);
        assert_eq!(snap.partition_records, clean_snap.partition_records);
        // And the recovery itself is accounted.
        assert_eq!(snap.shard_restarts, 1);
        assert_eq!(snap.shard_failures.len(), 1);
        assert!(!snap.shard_failures[0].gave_up);
    }

    #[test]
    fn pool_exhausted_restarts_degrade_to_partial_report() {
        let events = multi_pid_trace(4, 8);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let mut pool = ParallelStreamingAnalyzer::new(filter.clone(), 2)
            .with_policy(fast_policy())
            .with_hook(panic_hook(1, 0, u64::MAX));
        pool.push_owned(events.clone());
        let (report, failures) = pool.finish_with_failures();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].gave_up);
        assert_eq!(failures[0].restarts, fast_policy().max_restarts);
        let even_only: Vec<_> = events.iter().filter(|e| e.pid % 2 == 0).cloned().collect();
        let expected = Analyzer::new(filter).analyze(&Trace::from_events(even_only));
        assert_eq!(report, expected);
    }

    #[test]
    fn pool_stall_watchdog_replays_stalled_shard() {
        let events = multi_pid_trace(6, 20);
        let trace = Trace::from_events(events.clone());
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = serde_json::to_string(&Analyzer::new(filter.clone()).analyze(&trace)).unwrap();
        // Shard 0 freezes for 5s on its first batch; the 50ms watchdog
        // must abandon and replay it rather than wait.
        let stalled = Arc::new(AtomicU64::new(0));
        let flag = Arc::clone(&stalled);
        let hook: ShardHook = Arc::new(move |w, t| {
            if w == 0 && t == 0 && flag.fetch_add(1, Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_secs(5));
            }
        });
        let policy = fast_policy().with_shard_timeout(Duration::from_millis(50));
        let started = Instant::now();
        let mut pool = ParallelStreamingAnalyzer::new(filter, 2)
            .with_policy(policy)
            .with_hook(hook);
        pool.push_owned(events);
        let (report, failures) = pool.finish_with_failures();
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "watchdog must not wait out the stall"
        );
        assert_eq!(serial, serde_json::to_string(&report).unwrap());
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].shard, 0);
        assert!(!failures[0].gave_up);
        assert!(
            failures[0].last_error.contains("stalled"),
            "{}",
            failures[0].last_error
        );
    }

    #[test]
    fn interim_report_after_injected_panic_recovers() {
        let events = multi_pid_trace(5, 30);
        let trace = Trace::from_events(events.clone());
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        let mut pool = ParallelStreamingAnalyzer::new(filter, 2)
            .with_policy(fast_policy())
            .with_hook(panic_hook(0, 0, 1));
        pool.push_owned(events);
        let interim = pool.report();
        assert_eq!(interim.filter_stats.total, serial.filter_stats.total);
        assert_eq!(serial, pool.finish());
    }
}
