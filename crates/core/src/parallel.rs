//! Pid-sharded parallel analysis over a persistent worker pool.
//!
//! Every piece of state the analysis pipeline carries between events is
//! per-process: the trace filter's descriptor-provenance map and cwd
//! relevance live in a per-pid entry, and coverage accumulation is a sum
//! of per-event contributions. A trace can therefore be sharded *by pid*
//! across worker threads with no cross-shard communication: each worker
//! runs an ordinary [`StreamingAnalyzer`] over its pids' events in trace
//! order, and the per-worker reports are combined with
//! [`AnalysisReport::merge`]. Because every aggregate in a report is an
//! order-independent sum over `BTreeMap`s, the merged report is
//! **identical** to a serial run — same keys, same counts, same
//! serialized bytes — regardless of the worker count. All shards
//! accumulate through one shared [`StrInterner`], so the pool builds a
//! single symbol table instead of N.
//!
//! [`ParallelAnalyzer`] is the one-shot interface mirroring
//! [`Analyzer`](crate::Analyzer): it spawns one scoped thread per shard
//! over the whole borrowed slice — zero copies, one spawn per analysis.
//!
//! [`ParallelStreamingAnalyzer`] is the chunked interface mirroring
//! [`StreamingAnalyzer`]. It keeps each shard's filter state alive
//! *across* chunks so a descriptor opened (or duplicated) in one chunk
//! is still attributed correctly in the next — and unlike a
//! spawn-per-chunk design, its shard threads are **persistent**: they
//! are spawned once on the first dispatched batch and fed over bounded
//! channels, so a caller can parse the next chunk while the workers are
//! still analyzing the previous one (pipelined parse/analyze overlap).
//! Batches are shared as `Arc<Vec<TraceEvent>>` — handing the pool an
//! owned chunk via [`push_owned`](ParallelStreamingAnalyzer::push_owned)
//! moves it; the borrowed [`push_all`](ParallelStreamingAnalyzer::push_all)
//! compatibility path clones. Chunks smaller than [`PARALLEL_THRESHOLD`]
//! events are coalesced in a caller-side buffer so per-batch channel
//! overhead never dominates tiny pushes.
//!
//! ```
//! use iocov::{Analyzer, ParallelAnalyzer, TraceFilter};
//! use iocov_trace::{ArgValue, Trace, TraceEvent};
//!
//! let mut open = TraceEvent::build(
//!     "open",
//!     2,
//!     vec![ArgValue::Path("/mnt/test/f".into()), ArgValue::Flags(0), ArgValue::Mode(0)],
//!     3,
//! );
//! open.pid = 7;
//! let trace = Trace::from_events(vec![open]);
//! let filter = TraceFilter::mount_point("/mnt/test").unwrap();
//! let serial = Analyzer::new(filter.clone()).analyze(&trace);
//! let parallel = ParallelAnalyzer::new(filter, 4).analyze(&trace);
//! assert_eq!(serial, parallel);
//! ```

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use iocov_trace::{StrInterner, Trace, TraceEvent};

use crate::coverage::AnalysisReport;
use crate::filter::TraceFilter;
use crate::metrics::PipelineMetrics;
use crate::streaming::StreamingAnalyzer;

/// A one-shot parallel analyzer: shards a trace by pid across `workers`
/// threads and merges the per-worker reports.
#[derive(Debug, Clone)]
pub struct ParallelAnalyzer {
    filter: TraceFilter,
    workers: usize,
    metrics: Option<Arc<PipelineMetrics>>,
}

impl ParallelAnalyzer {
    /// A parallel analyzer with a filter; `workers` is clamped to at
    /// least 1.
    #[must_use]
    pub fn new(filter: TraceFilter, workers: usize) -> Self {
        ParallelAnalyzer {
            filter,
            workers: workers.max(1),
            metrics: None,
        }
    }

    /// An unfiltered parallel analyzer.
    #[must_use]
    pub fn unfiltered(workers: usize) -> Self {
        ParallelAnalyzer::new(TraceFilter::keep_all(), workers)
    }

    /// Attaches shared pipeline metrics. All workers update the same
    /// atomic counters, so snapshots match a serial run exactly.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<PipelineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured filter.
    #[must_use]
    pub fn filter(&self) -> &TraceFilter {
        &self.filter
    }

    /// Runs the full pipeline over one trace.
    #[must_use]
    pub fn analyze(&self, trace: &Trace) -> AnalysisReport {
        self.analyze_events(trace.events())
    }

    /// Runs the full pipeline over a slice of events.
    ///
    /// One-shot analysis needs no pipelining — the whole input is
    /// already in memory — so this scans the borrowed slice directly
    /// from scoped shard threads: zero event copies and exactly one
    /// spawn per shard per analysis.
    #[must_use]
    pub fn analyze_events(&self, events: &[TraceEvent]) -> AnalysisReport {
        let n = self.workers;
        let interner = Arc::new(StrInterner::new());
        let mut shards: Vec<StreamingAnalyzer> = (0..n)
            .map(|_| {
                let mut shard =
                    StreamingAnalyzer::with_interner(self.filter.clone(), Arc::clone(&interner));
                if let Some(metrics) = &self.metrics {
                    shard = shard.with_metrics(Arc::clone(metrics));
                }
                shard
            })
            .collect();
        if n == 1 || events.len() < PARALLEL_THRESHOLD {
            // Below the threshold thread spawn dominates; a serial pass
            // over all shards costs the same modulo test per event.
            let _timer = self.metrics.as_deref().map(|m| m.time_stage("analyze"));
            for (w, shard) in shards.iter_mut().enumerate() {
                for event in events {
                    if event.pid as usize % n == w {
                        shard.push(event);
                    }
                }
            }
        } else {
            std::thread::scope(|scope| {
                for (w, shard) in shards.iter_mut().enumerate() {
                    let metrics = self.metrics.clone();
                    scope.spawn(move || {
                        let _timer = metrics.as_deref().map(|m| m.time_stage("analyze"));
                        for event in events {
                            if event.pid as usize % n == w {
                                shard.push(event);
                            }
                        }
                    });
                }
            });
        }
        let mut merged = AnalysisReport::default();
        for shard in shards {
            merged.merge(&shard.finish());
        }
        merged
    }
}

/// A job sent to a persistent shard worker.
enum Job {
    /// A batch of events to scan; every worker receives the same `Arc`
    /// and keeps only its own pids.
    Batch(Arc<Vec<TraceEvent>>),
    /// A request for a materialized snapshot of the shard's report so
    /// far, answered on the enclosed channel.
    Snapshot(SyncSender<AnalysisReport>),
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Job::Batch(batch) => f.debug_tuple("Batch").field(&batch.len()).finish(),
            Job::Snapshot(_) => f.write_str("Snapshot"),
        }
    }
}

/// One persistent shard thread: a job queue and the handle that yields
/// the shard's final report once the queue closes.
#[derive(Debug)]
struct Worker {
    jobs: SyncSender<Job>,
    handle: JoinHandle<AnalysisReport>,
}

/// The loop run by each persistent shard thread: drain batches (keeping
/// only `pid % n == w`), answer snapshot requests, and return the
/// shard's final report when the job channel closes.
fn worker_loop(
    w: usize,
    n: usize,
    mut shard: StreamingAnalyzer,
    jobs: Receiver<Job>,
    metrics: Option<Arc<PipelineMetrics>>,
) -> AnalysisReport {
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Batch(batch) => {
                // Each worker times its own scan, so the "analyze" stage
                // total is summed across shards (CPU time, not wall
                // clock).
                let _timer = metrics.as_deref().map(|m| m.time_stage("analyze"));
                for event in batch.iter() {
                    if event.pid as usize % n == w {
                        shard.push(event);
                    }
                }
            }
            Job::Snapshot(reply) => {
                let _ = reply.send(shard.report());
            }
        }
    }
    shard.finish()
}

/// A chunked parallel analyzer: N **persistent** worker threads, each
/// owning a [`StreamingAnalyzer`] shard for the pids with
/// `pid % N == shard index`.
///
/// Shard state survives across [`push_all`](Self::push_all) /
/// [`push_owned`](Self::push_owned) calls, so feeding a long trace
/// chunk-by-chunk preserves descriptor provenance exactly like a single
/// serial [`StreamingAnalyzer`] would. Worker threads are spawned
/// lazily on the first dispatched batch and live until
/// [`finish`](Self::finish); batches travel over bounded channels of
/// depth [`PIPELINE_DEPTH`], so the caller can parse chunk *k + 1*
/// while the workers analyze chunk *k*.
#[derive(Debug)]
pub struct ParallelStreamingAnalyzer {
    filter: TraceFilter,
    nworkers: usize,
    interner: Arc<StrInterner>,
    metrics: Option<Arc<PipelineMetrics>>,
    /// Persistent shard threads; empty until the first batch dispatch.
    workers: Vec<Worker>,
    /// Caller-side coalescing buffer for chunks below
    /// [`PARALLEL_THRESHOLD`].
    pending: Vec<TraceEvent>,
}

impl ParallelStreamingAnalyzer {
    /// Creates a pool of `workers` persistent shards (clamped to at
    /// least 1) over clones of `filter`. Threads are spawned on the
    /// first dispatched batch, not here, so a pool that never sees a
    /// large chunk costs one spawn per shard total.
    #[must_use]
    pub fn new(filter: TraceFilter, workers: usize) -> Self {
        ParallelStreamingAnalyzer {
            filter,
            nworkers: workers.max(1),
            interner: Arc::new(StrInterner::new()),
            metrics: None,
            workers: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Attaches shared pipeline metrics to every shard. Must be called
    /// before the first push — workers capture the metrics handle when
    /// they spawn.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<PipelineMetrics>) -> Self {
        debug_assert!(
            self.workers.is_empty(),
            "attach metrics before pushing events"
        );
        self.metrics = Some(metrics);
        self
    }

    /// The worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.nworkers
    }

    /// Spawns the persistent shard threads. Every shard accumulates
    /// through the pool's shared interner, so the merged report resolves
    /// one symbol table.
    fn spawn_workers(&mut self) {
        let n = self.nworkers;
        self.workers = (0..n)
            .map(|w| {
                let (jobs, queue) = sync_channel::<Job>(PIPELINE_DEPTH);
                let mut shard = StreamingAnalyzer::with_interner(
                    self.filter.clone(),
                    Arc::clone(&self.interner),
                );
                if let Some(metrics) = &self.metrics {
                    shard = shard.with_metrics(Arc::clone(metrics));
                }
                let metrics = self.metrics.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("iocov-shard-{w}"))
                    .spawn(move || worker_loop(w, n, shard, queue, metrics))
                    .expect("spawn shard worker thread");
                Worker { jobs, handle }
            })
            .collect();
    }

    /// Hands one batch to every worker. Blocks only when a worker's
    /// queue is [`PIPELINE_DEPTH`] batches behind — the backpressure
    /// that bounds memory to `depth × batch` per shard.
    fn dispatch(&mut self, batch: Arc<Vec<TraceEvent>>) {
        if self.workers.is_empty() {
            self.spawn_workers();
        }
        for worker in &self.workers {
            worker
                .jobs
                .send(Job::Batch(Arc::clone(&batch)))
                .expect("shard worker alive");
        }
    }

    /// Dispatches the coalescing buffer, if non-empty.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = Arc::new(std::mem::take(&mut self.pending));
        self.dispatch(batch);
    }

    /// Consumes one owned chunk of events — the zero-copy hot path: a
    /// chunk of at least [`PARALLEL_THRESHOLD`] events is wrapped in an
    /// `Arc` and dispatched as-is; smaller chunks are coalesced and
    /// dispatched once the buffer reaches the threshold.
    pub fn push_owned(&mut self, events: Vec<TraceEvent>) {
        if self.pending.is_empty() && events.len() >= PARALLEL_THRESHOLD {
            self.dispatch(Arc::new(events));
            return;
        }
        self.pending.extend(events);
        if self.pending.len() >= PARALLEL_THRESHOLD {
            self.flush_pending();
        }
    }

    /// Consumes a stream of owned events, coalescing into
    /// [`PARALLEL_THRESHOLD`]-sized batches.
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = TraceEvent>) {
        self.pending.extend(events);
        if self.pending.len() >= PARALLEL_THRESHOLD {
            self.flush_pending();
        }
    }

    /// Consumes one chunk of borrowed events. Persistent workers outlive
    /// the borrow, so this path **clones** the chunk; callers that own
    /// their chunks should prefer [`push_owned`](Self::push_owned).
    pub fn push_all(&mut self, events: &[TraceEvent]) {
        self.push_batch(events.iter().cloned());
    }

    /// Drains the pool: flushes the coalescing buffer, closes every job
    /// queue, joins the shard threads, and merges their reports in shard
    /// order.
    #[must_use]
    pub fn finish(mut self) -> AnalysisReport {
        self.flush_pending();
        let workers = std::mem::take(&mut self.workers);
        // Drop every sender before joining: a worker only returns once
        // its queue closes.
        let (senders, handles): (Vec<_>, Vec<_>) =
            workers.into_iter().map(|w| (w.jobs, w.handle)).unzip();
        drop(senders);
        let mut merged = AnalysisReport::default();
        for handle in handles {
            merged.merge(&handle.join().expect("shard worker panicked"));
        }
        merged
    }

    /// A merged snapshot of the report so far (the stream may
    /// continue). Flushes the coalescing buffer and waits for every
    /// worker to answer a snapshot request, so the result reflects all
    /// events pushed before the call.
    #[must_use]
    pub fn report(&mut self) -> AnalysisReport {
        self.flush_pending();
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (reply, receipt) = sync_channel(1);
            worker
                .jobs
                .send(Job::Snapshot(reply))
                .expect("shard worker alive");
            replies.push(receipt);
        }
        let mut merged = AnalysisReport::default();
        for receipt in replies {
            merged.merge(&receipt.recv().expect("shard worker answers snapshot"));
        }
        merged
    }
}

/// Chunks smaller than this are coalesced in the caller's buffer before
/// dispatch ([`ParallelStreamingAnalyzer`]) or analyzed on the calling
/// thread ([`ParallelAnalyzer`]); per-batch dispatch (or thread spawn)
/// costs more than analyzing this few events.
pub const PARALLEL_THRESHOLD: usize = 1024;

/// Bounded depth of each worker's job queue: the caller may run at most
/// this many batches ahead of the slowest shard.
pub const PIPELINE_DEPTH: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analyzer, ArgName};
    use iocov_trace::ArgValue;

    /// A multi-pid trace exercising every provenance rule: opens, dups,
    /// renames, chdir, interleaved across `pids` processes.
    fn multi_pid_trace(pids: u32, per_pid: usize) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for round in 0..per_pid {
            for pid in 0..pids {
                let fd = 3 + round as i32;
                let mount = pid % 2 == 0; // odd pids are pure noise
                let root = if mount { "/mnt/test" } else { "/somewhere" };
                let mut step = vec![
                    TraceEvent::build(
                        "open",
                        2,
                        vec![
                            ArgValue::Path(format!("{root}/f{round}")),
                            ArgValue::Flags(0o101),
                            ArgValue::Mode(0o644),
                        ],
                        i64::from(fd),
                    ),
                    TraceEvent::build(
                        "dup2",
                        33,
                        vec![ArgValue::Fd(fd), ArgValue::Fd(fd + 64)],
                        i64::from(fd + 64),
                    ),
                    TraceEvent::build(
                        "write",
                        1,
                        vec![
                            ArgValue::Fd(fd + 64),
                            ArgValue::Ptr(1),
                            ArgValue::UInt(1 << (round % 20)),
                        ],
                        1 << (round % 20),
                    ),
                    TraceEvent::build(
                        "rename",
                        82,
                        vec![
                            ArgValue::Path(format!("/tmp/stage{round}")),
                            ArgValue::Path(format!("{root}/dst{round}")),
                        ],
                        0,
                    ),
                    TraceEvent::build("chdir", 80, vec![ArgValue::Path(root.to_owned())], 0),
                    TraceEvent::build(
                        "open",
                        2,
                        vec![
                            ArgValue::Path("relative".into()),
                            ArgValue::Flags(0),
                            ArgValue::Mode(0),
                        ],
                        i64::from(fd + 100),
                    ),
                    TraceEvent::build("close", 3, vec![ArgValue::Fd(fd)], 0),
                ];
                for event in &mut step {
                    event.pid = pid;
                }
                events.extend(step);
            }
        }
        events
    }

    #[test]
    fn parallel_matches_serial_at_every_worker_count() {
        let events = multi_pid_trace(5, 4);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        for workers in 1..=8 {
            let parallel = ParallelAnalyzer::new(filter.clone(), workers).analyze(&trace);
            assert_eq!(serial, parallel, "diverged at {workers} workers");
        }
    }

    #[test]
    fn parallel_serializes_identically_to_serial() {
        let trace = Trace::from_events(multi_pid_trace(3, 3));
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = serde_json::to_string(&Analyzer::new(filter.clone()).analyze(&trace)).unwrap();
        let parallel =
            serde_json::to_string(&ParallelAnalyzer::new(filter, 4).analyze(&trace)).unwrap();
        assert_eq!(serial, parallel, "reports must be byte-identical");
    }

    #[test]
    fn more_workers_than_pids_is_fine() {
        let trace = Trace::from_events(multi_pid_trace(2, 2));
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        let parallel = ParallelAnalyzer::new(filter, 8).analyze(&trace);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let analyzer = ParallelAnalyzer::unfiltered(0);
        assert_eq!(analyzer.workers(), 1);
        assert_eq!(
            ParallelStreamingAnalyzer::new(TraceFilter::keep_all(), 0).workers(),
            1
        );
    }

    #[test]
    fn chunked_parallel_keeps_provenance_across_chunks() {
        // fd opened in chunk 1, duplicated in chunk 2, written via the
        // duplicate in chunk 3: per-chunk batch analysis would lose the
        // attribution, the sharded streaming analyzer must not.
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let mut open = TraceEvent::build(
            "open",
            2,
            vec![
                ArgValue::Path("/mnt/test/a".into()),
                ArgValue::Flags(0),
                ArgValue::Mode(0),
            ],
            3,
        );
        open.pid = 6;
        let mut dup = TraceEvent::build("dup", 32, vec![ArgValue::Fd(3)], 9);
        dup.pid = 6;
        let mut write = TraceEvent::build(
            "write",
            1,
            vec![ArgValue::Fd(9), ArgValue::Ptr(1), ArgValue::UInt(128)],
            128,
        );
        write.pid = 6;

        let mut sharded = ParallelStreamingAnalyzer::new(filter, 4);
        sharded.push_all(&[open]);
        sharded.push_all(&[dup]);
        sharded.push_all(&[write]);
        let report = sharded.finish();
        assert_eq!(report.input_coverage(ArgName::WriteCount).calls, 1);
        assert_eq!(report.filter_stats.kept, 3);
    }

    #[test]
    fn interim_report_merges_all_shards() {
        let mut sharded = ParallelStreamingAnalyzer::new(TraceFilter::keep_all(), 3);
        let events = multi_pid_trace(3, 1);
        let total = events.len();
        sharded.push_all(&events);
        assert_eq!(sharded.report().filter_stats.total, total);
    }

    #[test]
    fn parallel_metrics_snapshot_matches_serial_byte_for_byte() {
        // The acceptance bar: counters from a 4-worker run must be
        // *byte-identical* to a serial run over the same trace — large
        // enough to clear PARALLEL_THRESHOLD so real threads race on the
        // shared atomics.
        let events = multi_pid_trace(7, 40);
        assert!(events.len() >= PARALLEL_THRESHOLD);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();

        let serial_metrics = Arc::new(PipelineMetrics::default());
        let serial = Analyzer::new(filter.clone())
            .with_metrics(Arc::clone(&serial_metrics))
            .analyze(&trace);

        let parallel_metrics = Arc::new(PipelineMetrics::default());
        let parallel = ParallelAnalyzer::new(filter, 4)
            .with_metrics(Arc::clone(&parallel_metrics))
            .analyze(&trace);

        assert_eq!(serial, parallel);
        let s = serial_metrics.snapshot();
        let p = parallel_metrics.snapshot();
        assert_eq!(s, p);
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            serde_json::to_string(&p).unwrap(),
            "metrics snapshots must be byte-identical"
        );
        assert!(s.events_read > 0 && s.total_dropped() > 0);
    }

    #[test]
    fn shared_metrics_across_chunked_parallel_runs() {
        // One metrics instance fed by a chunked sharded run still sums to
        // the trace totals.
        let events = multi_pid_trace(4, 3);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let metrics = Arc::new(PipelineMetrics::default());
        let mut sharded =
            ParallelStreamingAnalyzer::new(filter, 3).with_metrics(Arc::clone(&metrics));
        for chunk in events.chunks(5) {
            sharded.push_all(chunk);
        }
        let report = sharded.finish();
        let snap = metrics.snapshot();
        assert_eq!(snap.events_read, events.len() as u64);
        // Filter-stage drops account for exactly the events not kept
        // (unknown-syscall drops happen after the filter, inside kept).
        assert_eq!(
            snap.events_read
                - snap.filter_dropped["wrong-mount"]
                - snap.filter_dropped["irrelevant-fd"],
            report.filter_stats.kept as u64
        );
        assert!(metrics.stage_timings().contains_key("analyze"));
    }

    #[test]
    fn owned_batches_match_serial_at_every_worker_count() {
        // The zero-copy hot path: chunks big enough to dispatch without
        // coalescing, pushed as owned vectors.
        let events = multi_pid_trace(7, 60);
        assert!(events.len() >= 2 * PARALLEL_THRESHOLD);
        let trace = Trace::from_events(events.clone());
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = serde_json::to_string(&Analyzer::new(filter.clone()).analyze(&trace)).unwrap();
        for workers in 1..=4 {
            let mut pool = ParallelStreamingAnalyzer::new(filter.clone(), workers);
            for chunk in events.chunks(PARALLEL_THRESHOLD) {
                pool.push_owned(chunk.to_vec());
            }
            let report = serde_json::to_string(&pool.finish()).unwrap();
            assert_eq!(serial, report, "diverged at {workers} workers");
        }
    }

    #[test]
    fn mixed_owned_and_borrowed_pushes_match_serial() {
        let events = multi_pid_trace(5, 8);
        let trace = Trace::from_events(events.clone());
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        let mut pool = ParallelStreamingAnalyzer::new(filter, 3);
        let (left, right) = events.split_at(events.len() / 2);
        pool.push_all(left);
        pool.push_owned(right.to_vec());
        assert_eq!(serial, pool.finish());
    }

    #[test]
    fn interim_report_then_more_batches_matches_serial() {
        // A snapshot mid-stream must not disturb shard state: pushing
        // more events afterwards still converges on the serial report.
        let events = multi_pid_trace(7, 40);
        let trace = Trace::from_events(events.clone());
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        let mut pool = ParallelStreamingAnalyzer::new(filter, 4);
        let (left, right) = events.split_at(events.len() / 3);
        pool.push_owned(left.to_vec());
        let interim = pool.report();
        assert_eq!(interim.filter_stats.total, left.len());
        pool.push_owned(right.to_vec());
        assert_eq!(serial, pool.finish());
    }

    #[test]
    fn empty_pool_finishes_to_default_report() {
        let pool = ParallelStreamingAnalyzer::new(TraceFilter::keep_all(), 4);
        assert_eq!(pool.finish(), AnalysisReport::default());
    }

    #[test]
    fn large_chunk_takes_threaded_path() {
        // Enough events to clear PARALLEL_THRESHOLD, so the scoped-thread
        // branch actually runs and must still match serial.
        let events = multi_pid_trace(7, 40);
        assert!(events.len() >= PARALLEL_THRESHOLD);
        let trace = Trace::from_events(events);
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let serial = Analyzer::new(filter.clone()).analyze(&trace);
        let parallel = ParallelAnalyzer::new(filter, 4).analyze(&trace);
        assert_eq!(serial, parallel);
    }
}
