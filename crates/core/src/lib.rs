//! IOCov: input and output coverage for file system testing.
//!
//! A reproduction of the framework from *"Input and Output Coverage
//! Needed in File System Testing"* (HotStorage '23). Code coverage alone
//! correlates weakly with bug-finding in file systems — many bugs hide in
//! code a suite already covers, triggered only by specific inputs
//! (boundary sizes, rare flag combinations) or visible only in outputs
//! (wrong return values on exit paths). IOCov therefore measures, for a
//! trace of a test suite's syscalls:
//!
//! * **input coverage** — how thoroughly each syscall argument's
//!   partitioned input space is exercised (per-flag for bitmaps,
//!   power-of-two buckets for numerics, per-value for categoricals), and
//! * **output coverage** — how many distinct return values and error
//!   codes are elicited.
//!
//! The pipeline mirrors the paper's §3 architecture:
//!
//! ```text
//! Trace ─▶ TraceFilter ─▶ variant handler ─▶ partitioner ─▶ AnalysisReport
//!          (mount-point    (openat2/creat     (per-argument    (coverage,
//!           filtering)      → open, …)         domains)         untested, TCD)
//! ```
//!
//! # Quick start
//!
//! ```
//! use iocov::{ArgName, Iocov};
//! use iocov_syscalls::Kernel;
//! use iocov_trace::Recorder;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), iocov_pattern::PatternError> {
//! // Run some "test suite" against the simulated kernel, tracing it.
//! let recorder = Arc::new(Recorder::new());
//! let mut kernel = Kernel::new();
//! kernel.attach_recorder(Arc::clone(&recorder));
//! kernel.mkdir("/mnt", 0o755);
//! kernel.mkdir("/mnt/test", 0o755);
//! let fd = kernel.open("/mnt/test/f", 0o102, 0o644) as i32;
//! kernel.write(fd, b"hello");
//! kernel.close(fd);
//!
//! // Analyze the trace for coverage under the tester's mount point.
//! let iocov = Iocov::with_mount_point("/mnt/test")?;
//! let report = iocov.analyze(&recorder.take());
//! let flags = report.input_coverage(ArgName::OpenFlags);
//! assert_eq!(flags.calls, 1);
//! assert!(!flags.untested(ArgName::OpenFlags).is_empty());
//! # Ok(())
//! # }
//! ```

mod arg;
pub mod checkpoint;
pub mod cold;
mod combos;
mod coverage;
pub mod distribute;
mod domain;
mod filter;
mod identifier;
pub mod metrics;
mod parallel;
mod partition;
pub mod pipeline;
mod relevance;
pub mod report;
#[cfg(unix)]
pub mod serve;
pub mod session;
mod streaming;
pub mod syzlang;
pub mod tcd;
mod variants;

pub use arg::{ArgClass, ArgName, TrackedValue};
pub use checkpoint::{
    encode_checkpoint, parse_checkpoint, prev_checkpoint_path, read_checkpoint,
    read_checkpoint_with_fallback, write_atomic, write_checkpoint, CheckpointDoc, CheckpointError,
    PidStateSnapshot, IOCKPT_MAGIC, IOCKPT_VERSION,
};
pub use cold::{
    campaign_tcd, extract_cold, output_bucket_domain, tcd_vector, ColdErrno, ColdOutputBucket,
    ColdPartition, ColdReport, OUTPUT_BUCKET_MAX_LOG2,
};
pub use combos::ComboCoverage;
pub use coverage::{AnalysisReport, Analyzer, ComboHistogram, InputCoverage, OutputCoverage};
pub use distribute::{
    run_coordinator, run_worker, worker_specs, CorruptSpec, DistributeConfig, DistributeRun,
    KillSpec, StallSpec, WorkerFaults, WorkerHooks, WorkerSpec,
};
pub use domain::{
    arg_domain, open_flag_names, open_flags_present, output_buckets_bytes, output_errnos,
    ArgDomain, DomainKind, INVALID_CATEGORY, MODE_BITS, WHENCE_VALUES, XATTR_FLAG_BITS,
};
pub use filter::{FilterStats, TraceFilter};
pub use identifier::{FdPartition, IdentifierCoverage, PathPartition};
pub use metrics::{DropReason, MetricsSnapshot, PipelineMetrics, ShardFailureRecord, StageTimer};
pub use parallel::{
    in_supervised_scan, splitmix64, ParallelAnalyzer, ParallelStreamingAnalyzer, ShardError,
    ShardHook, SupervisorPolicy, PARALLEL_THRESHOLD, PIPELINE_DEPTH,
};
pub use partition::{InputPartition, NumericPartition, OutputPartition};
pub use pipeline::{
    CheckpointPolicy, Executor, Pipeline, PipelineBuilder, PipelineError, PipelineRun,
    PoolExecutor, SerialExecutor, DEFAULT_CHUNK,
};
#[cfg(unix)]
pub use serve::{
    run_feed, run_serve, FeedAbortHook, FeedConfig, FeedOutcome, FeedStallHook, ServeConfig,
    ServeSummary, StreamHello, StreamStatus,
};
pub use session::{AnalysisSession, DirectExecutor, Driver};
pub use streaming::StreamingAnalyzer;
pub use variants::{normalize, NormalizedCall, CREAT_IMPLIED_FLAGS};

// Re-export the identifiers callers need to interpret reports.
pub use iocov_syscalls::{BaseSyscall, Sysno};

/// The top-level facade: a configured analyzer.
///
/// See the [crate-level documentation](crate) for a full example.
#[derive(Debug, Clone, Default)]
pub struct Iocov {
    analyzer: Analyzer,
}

impl Iocov {
    /// An IOCov instance that analyzes every traced syscall (no mount
    /// filtering).
    #[must_use]
    pub fn new() -> Self {
        Iocov {
            analyzer: Analyzer::unfiltered(),
        }
    }

    /// An IOCov instance filtering to one mount point — "the only
    /// setting that needs to be adjusted when applying IOCov to a new
    /// file system tester" (§3).
    ///
    /// # Errors
    ///
    /// Propagates pattern-compilation errors (practically impossible for
    /// normal mount paths).
    pub fn with_mount_point(mount: &str) -> Result<Self, iocov_pattern::PatternError> {
        Ok(Iocov {
            analyzer: Analyzer::new(TraceFilter::mount_point(mount)?),
        })
    }

    /// An IOCov instance with a custom filter.
    #[must_use]
    pub fn with_filter(filter: TraceFilter) -> Self {
        Iocov {
            analyzer: Analyzer::new(filter),
        }
    }

    /// Analyzes one trace.
    #[must_use]
    pub fn analyze(&self, trace: &iocov_trace::Trace) -> AnalysisReport {
        self.analyzer.analyze(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iocov_trace::{ArgValue, Trace, TraceEvent};

    #[test]
    fn facade_pipeline_end_to_end() {
        let trace = Trace::from_events(vec![
            TraceEvent::build(
                "open",
                2,
                vec![
                    ArgValue::Path("/mnt/test/a".into()),
                    ArgValue::Flags(0o101),
                    ArgValue::Mode(0o644),
                ],
                3,
            ),
            TraceEvent::build(
                "open",
                2,
                vec![
                    ArgValue::Path("/etc/noise".into()),
                    ArgValue::Flags(0),
                    ArgValue::Mode(0),
                ],
                4,
            ),
        ]);
        let unfiltered = Iocov::new().analyze(&trace);
        assert_eq!(unfiltered.total_calls(), 2);
        let filtered = Iocov::with_mount_point("/mnt/test")
            .unwrap()
            .analyze(&trace);
        assert_eq!(filtered.total_calls(), 1);
        assert_eq!(filtered.filter_stats.dropped, 1);
    }

    #[test]
    fn custom_filter_construction() {
        let filter = TraceFilter::keep_all();
        let iocov = Iocov::with_filter(filter);
        let report = iocov.analyze(&Trace::new());
        assert_eq!(report.total_calls(), 0);
    }
}
