//! The syscall-variant handler.
//!
//! Variants "share almost the same kernel implementation" (§3), so IOCov
//! merges their input and output spaces: `openat2` and `creat` both count
//! toward `open` coverage, with their arguments mapped to the base
//! syscall's argument slots (e.g. `creat` implies
//! `O_CREAT|O_WRONLY|O_TRUNC`).

use iocov_syscalls::{BaseSyscall, Sysno};
use iocov_trace::{ArgView, EventView};

use crate::arg::{ArgName, TrackedValue};

/// A trace event normalized to its base syscall with unified argument
/// slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalizedCall {
    /// The concrete variant that was invoked.
    pub sysno: Sysno,
    /// The logical syscall it merges into.
    pub base: BaseSyscall,
    /// Raw return value.
    pub retval: i64,
    /// Tracked arguments with decoded values.
    pub args: Vec<(ArgName, TrackedValue)>,
}

/// The flags word `creat(2)` implies.
pub const CREAT_IMPLIED_FLAGS: u32 = 0o1101; // O_CREAT | O_WRONLY | O_TRUNC

fn bits<E: EventView + ?Sized>(event: &E, idx: usize) -> Option<TrackedValue> {
    match event.arg(idx)? {
        ArgView::Flags(v) | ArgView::Mode(v) | ArgView::Whence(v) => Some(TrackedValue::Bits(v)),
        ArgView::UInt(v) => u32::try_from(v).ok().map(TrackedValue::Bits),
        _ => None,
    }
}

fn unsigned<E: EventView + ?Sized>(event: &E, idx: usize) -> Option<TrackedValue> {
    match event.arg(idx)? {
        ArgView::UInt(v) => Some(TrackedValue::Unsigned(v)),
        ArgView::Int(v) if v >= 0 => Some(TrackedValue::Unsigned(v as u64)),
        _ => None,
    }
}

fn signed<E: EventView + ?Sized>(event: &E, idx: usize) -> Option<TrackedValue> {
    match event.arg(idx)? {
        ArgView::Int(v) => Some(TrackedValue::Signed(v)),
        ArgView::UInt(v) => i64::try_from(v).ok().map(TrackedValue::Signed),
        _ => None,
    }
}

/// Normalizes one trace event; returns `None` for syscalls outside the
/// 27-call domain (tester noise like `stat` or `unlink`).
#[must_use]
pub fn normalize<E: EventView + ?Sized>(event: &E) -> Option<NormalizedCall> {
    let sysno = Sysno::from_name(event.name())?;
    let mut args: Vec<(ArgName, TrackedValue)> = Vec::with_capacity(2);
    let mut push = |name: ArgName, value: Option<TrackedValue>| {
        if let Some(v) = value {
            args.push((name, v));
        }
    };

    match sysno {
        Sysno::Open => {
            push(ArgName::OpenFlags, bits(event, 1));
            push(ArgName::OpenMode, bits(event, 2));
        }
        Sysno::Openat => {
            push(ArgName::OpenFlags, bits(event, 2));
            push(ArgName::OpenMode, bits(event, 3));
        }
        Sysno::Creat => {
            push(
                ArgName::OpenFlags,
                Some(TrackedValue::Bits(CREAT_IMPLIED_FLAGS)),
            );
            push(ArgName::OpenMode, bits(event, 1));
        }
        Sysno::Openat2 => {
            push(ArgName::OpenFlags, bits(event, 2));
            push(ArgName::OpenMode, bits(event, 3));
        }
        Sysno::Read | Sysno::Readv => {
            push(ArgName::ReadCount, unsigned(event, 2));
        }
        Sysno::Pread64 => {
            push(ArgName::ReadCount, unsigned(event, 2));
            push(ArgName::ReadOffset, signed(event, 3));
        }
        Sysno::Write | Sysno::Writev => {
            push(ArgName::WriteCount, unsigned(event, 2));
        }
        Sysno::Pwrite64 => {
            push(ArgName::WriteCount, unsigned(event, 2));
            push(ArgName::WriteOffset, signed(event, 3));
        }
        Sysno::Lseek => {
            push(ArgName::LseekOffset, signed(event, 1));
            push(ArgName::LseekWhence, bits(event, 2));
        }
        Sysno::Truncate | Sysno::Ftruncate => {
            push(ArgName::TruncateLength, signed(event, 1));
        }
        Sysno::Mkdir => {
            push(ArgName::MkdirMode, bits(event, 1));
        }
        Sysno::Mkdirat => {
            push(ArgName::MkdirMode, bits(event, 2));
        }
        Sysno::Chmod | Sysno::Fchmod => {
            push(ArgName::ChmodMode, bits(event, 1));
        }
        Sysno::Fchmodat => {
            push(ArgName::ChmodMode, bits(event, 2));
        }
        Sysno::Setxattr | Sysno::Lsetxattr | Sysno::Fsetxattr => {
            push(ArgName::SetxattrSize, unsigned(event, 3));
            push(ArgName::SetxattrFlags, bits(event, 4));
        }
        Sysno::Getxattr | Sysno::Lgetxattr | Sysno::Fgetxattr => {
            push(ArgName::GetxattrSize, unsigned(event, 3));
        }
        Sysno::Close | Sysno::Chdir | Sysno::Fchdir => {}
    }

    Some(NormalizedCall {
        sysno,
        base: sysno.base(),
        retval: event.retval(),
        args,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iocov_trace::{ArgValue, TraceEvent};

    fn event(name: &str, args: Vec<ArgValue>, retval: i64) -> TraceEvent {
        let sysno = Sysno::from_name(name).map_or(999, Sysno::number);
        TraceEvent::build(name, sysno, args, retval)
    }

    #[test]
    fn open_variants_merge_to_open() {
        let open = normalize(&event(
            "open",
            vec![
                ArgValue::Path("/f".into()),
                ArgValue::Flags(0o101),
                ArgValue::Mode(0o644),
            ],
            3,
        ))
        .unwrap();
        assert_eq!(open.base, BaseSyscall::Open);
        assert_eq!(
            open.args,
            vec![
                (ArgName::OpenFlags, TrackedValue::Bits(0o101)),
                (ArgName::OpenMode, TrackedValue::Bits(0o644)),
            ]
        );

        let openat = normalize(&event(
            "openat",
            vec![
                ArgValue::Fd(-100),
                ArgValue::Path("f".into()),
                ArgValue::Flags(0o2),
                ArgValue::Mode(0),
            ],
            4,
        ))
        .unwrap();
        assert_eq!(openat.base, BaseSyscall::Open);
        assert_eq!(
            openat.args[0],
            (ArgName::OpenFlags, TrackedValue::Bits(0o2))
        );

        let openat2 = normalize(&event(
            "openat2",
            vec![
                ArgValue::Fd(5),
                ArgValue::Path("f".into()),
                ArgValue::Flags(0),
                ArgValue::Mode(0o600),
                ArgValue::Flags(0x08),
            ],
            -2,
        ))
        .unwrap();
        assert_eq!(openat2.base, BaseSyscall::Open);
        assert_eq!(openat2.retval, -2);
    }

    #[test]
    fn creat_synthesizes_implied_flags() {
        let creat = normalize(&event(
            "creat",
            vec![ArgValue::Path("/f".into()), ArgValue::Mode(0o644)],
            3,
        ))
        .unwrap();
        assert_eq!(creat.base, BaseSyscall::Open);
        assert_eq!(
            creat.args[0],
            (ArgName::OpenFlags, TrackedValue::Bits(CREAT_IMPLIED_FLAGS))
        );
        assert_eq!(
            creat.args[1],
            (ArgName::OpenMode, TrackedValue::Bits(0o644))
        );
        // The implied word decomposes to the documented flags.
        let present = crate::domain::open_flags_present(CREAT_IMPLIED_FLAGS);
        assert_eq!(present, vec!["O_WRONLY", "O_CREAT", "O_TRUNC"]);
    }

    #[test]
    fn read_write_variants_unify_count_slot() {
        for (name, arg) in [
            ("read", ArgName::ReadCount),
            ("readv", ArgName::ReadCount),
            ("write", ArgName::WriteCount),
            ("writev", ArgName::WriteCount),
        ] {
            let call = normalize(&event(
                name,
                vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(4096)],
                4096,
            ))
            .unwrap();
            assert_eq!(
                call.args,
                vec![(arg, TrackedValue::Unsigned(4096))],
                "{name}"
            );
        }
        let pwrite = normalize(&event(
            "pwrite64",
            vec![
                ArgValue::Fd(3),
                ArgValue::Ptr(1),
                ArgValue::UInt(10),
                ArgValue::Int(-1),
            ],
            -22,
        ))
        .unwrap();
        assert_eq!(
            pwrite.args[0],
            (ArgName::WriteCount, TrackedValue::Unsigned(10))
        );
        assert_eq!(
            pwrite.args[1],
            (ArgName::WriteOffset, TrackedValue::Signed(-1))
        );
    }

    #[test]
    fn lseek_tracks_offset_and_whence() {
        let call = normalize(&event(
            "lseek",
            vec![ArgValue::Fd(3), ArgValue::Int(-10), ArgValue::Whence(2)],
            90,
        ))
        .unwrap();
        assert_eq!(
            call.args[0],
            (ArgName::LseekOffset, TrackedValue::Signed(-10))
        );
        assert_eq!(call.args[1], (ArgName::LseekWhence, TrackedValue::Bits(2)));
    }

    #[test]
    fn chmod_variants_unify_mode_slot() {
        let fchmodat = normalize(&event(
            "fchmodat",
            vec![
                ArgValue::Fd(-100),
                ArgValue::Path("/f".into()),
                ArgValue::Mode(0o755),
                ArgValue::Flags(0),
            ],
            0,
        ))
        .unwrap();
        assert_eq!(fchmodat.base, BaseSyscall::Chmod);
        assert_eq!(
            fchmodat.args,
            vec![(ArgName::ChmodMode, TrackedValue::Bits(0o755))]
        );
        let fchmod = normalize(&event(
            "fchmod",
            vec![ArgValue::Fd(4), ArgValue::Mode(0o600)],
            0,
        ))
        .unwrap();
        assert_eq!(
            fchmod.args,
            vec![(ArgName::ChmodMode, TrackedValue::Bits(0o600))]
        );
    }

    #[test]
    fn xattr_variants_unify_size_and_flags() {
        let fset = normalize(&event(
            "fsetxattr",
            vec![
                ArgValue::Fd(4),
                ArgValue::Str("user.k".into()),
                ArgValue::Ptr(1),
                ArgValue::UInt(100),
                ArgValue::Flags(0x1),
            ],
            0,
        ))
        .unwrap();
        assert_eq!(fset.base, BaseSyscall::Setxattr);
        assert_eq!(
            fset.args,
            vec![
                (ArgName::SetxattrSize, TrackedValue::Unsigned(100)),
                (ArgName::SetxattrFlags, TrackedValue::Bits(0x1)),
            ]
        );
        let lget = normalize(&event(
            "lgetxattr",
            vec![
                ArgValue::Path("/f".into()),
                ArgValue::Str("user.k".into()),
                ArgValue::Ptr(1),
                ArgValue::UInt(0),
            ],
            5,
        ))
        .unwrap();
        assert_eq!(lget.base, BaseSyscall::Getxattr);
        assert_eq!(
            lget.args,
            vec![(ArgName::GetxattrSize, TrackedValue::Unsigned(0))]
        );
    }

    #[test]
    fn fd_only_syscalls_have_no_tracked_args() {
        for name in ["close", "chdir", "fchdir"] {
            let call = normalize(&event(name, vec![ArgValue::Fd(3)], 0)).unwrap();
            assert!(call.args.is_empty(), "{name}");
        }
    }

    #[test]
    fn noise_syscalls_are_rejected() {
        assert!(normalize(&event("stat", vec![], 0)).is_none());
        assert!(normalize(&event("unlink", vec![], 0)).is_none());
        assert!(normalize(&event("fsync", vec![], 0)).is_none());
    }

    #[test]
    fn malformed_events_degrade_gracefully() {
        // Missing argument positions simply yield fewer tracked args.
        let call = normalize(&event("open", vec![ArgValue::Path("/f".into())], -2)).unwrap();
        assert!(call.args.is_empty());
        assert_eq!(call.retval, -2);
    }
}
