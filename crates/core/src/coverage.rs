//! The coverage analyzer: from filtered traces to input/output coverage.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use iocov_syscalls::BaseSyscall;
use iocov_trace::{StrInterner, Sym, Trace};
use serde::{Deserialize, Serialize};

use crate::arg::ArgName;
use crate::domain::{arg_domain, open_flags_present, output_buckets_bytes, output_errnos};
use crate::filter::{FilterStats, TraceFilter};
use crate::metrics::{DropReason, PipelineMetrics};
use crate::partition::{InputPartition, OutputPartition, SymInputPartition, SymOutputPartition};
use crate::variants::normalize;

/// Serializes partition-keyed maps as pair lists (JSON object keys must
/// be strings, and partitions are structured values).
mod pairs {
    use serde::de::Deserializer;
    use serde::ser::Serializer;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    pub(super) fn serialize<K, S>(map: &BTreeMap<K, u64>, serializer: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize + Ord,
        S: Serializer,
    {
        let entries: Vec<(&K, &u64)> = map.iter().collect();
        entries.serialize(serializer)
    }

    pub(super) fn deserialize<'de, K, D>(deserializer: D) -> Result<BTreeMap<K, u64>, D::Error>
    where
        K: Deserialize<'de> + Ord,
        D: Deserializer<'de>,
    {
        let entries: Vec<(K, u64)> = Vec::deserialize(deserializer)?;
        Ok(entries.into_iter().collect())
    }
}

/// Input coverage of one tracked argument: hit counts per partition.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputCoverage {
    /// Hit count per partition.
    #[serde(with = "pairs")]
    pub counts: BTreeMap<InputPartition, u64>,
    /// Number of calls that contributed a value for this argument.
    pub calls: u64,
}

impl InputCoverage {
    /// The hit count of one partition (0 if never exercised).
    #[must_use]
    pub fn count(&self, partition: &InputPartition) -> u64 {
        self.counts.get(partition).copied().unwrap_or(0)
    }

    /// Partitions of `arg`'s displayed domain never exercised — the
    /// actionable "untested cases" the paper reports.
    #[must_use]
    pub fn untested(&self, arg: ArgName) -> Vec<InputPartition> {
        arg_domain(arg)
            .all_partitions()
            .into_iter()
            .filter(|p| self.count(p) == 0)
            .collect()
    }

    /// Covered fraction of the displayed domain, in `[0, 1]`.
    #[must_use]
    pub fn coverage_fraction(&self, arg: ArgName) -> f64 {
        let domain = arg_domain(arg).all_partitions();
        if domain.is_empty() {
            return 1.0;
        }
        let covered = domain.iter().filter(|p| self.count(p) > 0).count();
        covered as f64 / domain.len() as f64
    }

    /// The frequency vector over the displayed domain, in canonical
    /// order — the input to TCD.
    #[must_use]
    pub fn frequency_vector(&self, arg: ArgName) -> Vec<u64> {
        arg_domain(arg)
            .all_partitions()
            .iter()
            .map(|p| self.count(p))
            .collect()
    }
}

/// Output coverage of one base syscall.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutputCoverage {
    /// Hit count per output partition.
    #[serde(with = "pairs")]
    pub counts: BTreeMap<OutputPartition, u64>,
    /// Total calls observed.
    pub calls: u64,
}

impl OutputCoverage {
    /// The hit count of one partition.
    #[must_use]
    pub fn count(&self, partition: &OutputPartition) -> u64 {
        self.counts.get(partition).copied().unwrap_or(0)
    }

    /// Total successful calls (all `OK` partitions).
    #[must_use]
    pub fn successes(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(p, _)| p.is_success())
            .map(|(_, c)| c)
            .sum()
    }

    /// Total failed calls.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.calls - self.successes()
    }

    /// Count for a specific errno name.
    #[must_use]
    pub fn errno_count(&self, name: &str) -> u64 {
        self.count(&OutputPartition::Err(name.to_owned()))
    }

    /// Errnos in the syscall's manual-page domain never elicited.
    #[must_use]
    pub fn untested_errnos(&self, base: BaseSyscall) -> Vec<&'static str> {
        output_errnos(base)
            .iter()
            .copied()
            .filter(|name| self.errno_count(name) == 0)
            .collect()
    }

    /// Covered fraction of the output domain (`OK` plus each errno).
    #[must_use]
    pub fn coverage_fraction(&self, base: BaseSyscall) -> f64 {
        let errnos = output_errnos(base);
        let total = errnos.len() + 1; // + OK
        let mut covered = usize::from(self.successes() > 0);
        covered += errnos.iter().filter(|n| self.errno_count(n) > 0).count();
        covered as f64 / total as f64
    }
}

/// Histogram of how many `open` flags were combined per call (Table 1).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComboHistogram {
    /// Combination size → call count, over all `open`-family calls.
    pub sizes: BTreeMap<usize, u64>,
    /// Same, restricted to combinations containing `O_RDONLY` (the most
    /// popular flag, per the paper).
    pub sizes_with_rdonly: BTreeMap<usize, u64>,
}

impl ComboHistogram {
    /// Percentage distribution over combination sizes `1..=max`.
    #[must_use]
    pub fn percentages(&self, restricted_to_rdonly: bool) -> Vec<(usize, f64)> {
        let map = if restricted_to_rdonly {
            &self.sizes_with_rdonly
        } else {
            &self.sizes
        };
        let total: u64 = map.values().sum();
        if total == 0 {
            return Vec::new();
        }
        map.iter()
            .map(|(&size, &count)| (size, 100.0 * count as f64 / total as f64))
            .collect()
    }

    /// The largest combination size observed.
    #[must_use]
    pub fn max_size(&self) -> usize {
        self.sizes.keys().next_back().copied().unwrap_or(0)
    }
}

/// The complete result of analyzing one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Filtering statistics.
    pub filter_stats: FilterStats,
    /// Input coverage per tracked argument.
    pub input: BTreeMap<ArgName, InputCoverage>,
    /// Output coverage per base syscall, keyed by base-syscall name.
    pub output: BTreeMap<String, OutputCoverage>,
    /// Calls per concrete syscall variant.
    pub calls_per_variant: BTreeMap<String, u64>,
    /// The Table 1 histogram of `open` flag combinations.
    pub open_combos: ComboHistogram,
}

impl AnalysisReport {
    /// Input coverage of one argument (empty coverage if never seen).
    #[must_use]
    pub fn input_coverage(&self, arg: ArgName) -> InputCoverage {
        self.input.get(&arg).cloned().unwrap_or_default()
    }

    /// Output coverage of one base syscall.
    #[must_use]
    pub fn output_coverage(&self, base: BaseSyscall) -> OutputCoverage {
        self.output.get(base.name()).cloned().unwrap_or_default()
    }

    /// Total analyzed (post-filter, in-domain) calls.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.calls_per_variant.values().sum()
    }

    /// Merges another report into this one (for aggregating per-test
    /// traces into a suite total).
    ///
    /// Keys are cloned only when genuinely new to `self`: merges are
    /// dominated by already-present keys (every shard sees the same
    /// partitions), so the common path is a lookup plus an add.
    pub fn merge(&mut self, other: &AnalysisReport) {
        fn add_counts<K: Ord + Clone>(mine: &mut BTreeMap<K, u64>, theirs: &BTreeMap<K, u64>) {
            for (key, count) in theirs {
                if let Some(slot) = mine.get_mut(key) {
                    *slot += count;
                } else {
                    mine.insert(key.clone(), *count);
                }
            }
        }
        self.filter_stats.total += other.filter_stats.total;
        self.filter_stats.kept += other.filter_stats.kept;
        self.filter_stats.dropped += other.filter_stats.dropped;
        for (arg, cov) in &other.input {
            let mine = self.input.entry(*arg).or_default();
            mine.calls += cov.calls;
            add_counts(&mut mine.counts, &cov.counts);
        }
        for (base, cov) in &other.output {
            let mine = if let Some(mine) = self.output.get_mut(base) {
                mine
            } else {
                self.output.entry(base.clone()).or_default()
            };
            mine.calls += cov.calls;
            add_counts(&mut mine.counts, &cov.counts);
        }
        add_counts(&mut self.calls_per_variant, &other.calls_per_variant);
        add_counts(&mut self.open_combos.sizes, &other.open_combos.sizes);
        add_counts(
            &mut self.open_combos.sizes_with_rdonly,
            &other.open_combos.sizes_with_rdonly,
        );
    }
}

/// The IOCov analyzer: trace filter + variant handler + partitioner.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    filter: TraceFilter,
    metrics: Option<std::sync::Arc<PipelineMetrics>>,
}

impl Analyzer {
    /// An analyzer with a mount-point filter.
    #[must_use]
    pub fn new(filter: TraceFilter) -> Self {
        Analyzer {
            filter,
            metrics: None,
        }
    }

    /// An analyzer that analyzes every event (no filtering).
    #[must_use]
    pub fn unfiltered() -> Self {
        Analyzer::new(TraceFilter::keep_all())
    }

    /// Attaches shared pipeline metrics; every analyzed trace updates
    /// the counters.
    #[must_use]
    pub fn with_metrics(mut self, metrics: std::sync::Arc<PipelineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The configured filter.
    #[must_use]
    pub fn filter(&self) -> &TraceFilter {
        &self.filter
    }

    /// Runs the full pipeline — filter, variant merge, partition, count —
    /// over one trace.
    #[must_use]
    pub fn analyze(&self, trace: &Trace) -> AnalysisReport {
        let metrics = self.metrics.as_deref();
        let (kept, filter_stats) = self.filter.apply_with_metrics(trace, metrics);
        let mut builder = ReportBuilder::new(Arc::new(StrInterner::new()));
        builder.filter_stats = filter_stats;
        let _timer = metrics.map(|m| m.time_stage("accumulate"));
        for event in &kept {
            builder.accumulate(event, metrics);
        }
        builder.into_report()
    }
}

/// Symbol-keyed hit counts for one argument (accumulation-time form of
/// [`InputCoverage`]).
#[derive(Debug, Default)]
struct InputAcc {
    counts: HashMap<SymInputPartition, u64>,
    calls: u64,
}

/// Symbol-keyed hit counts for one base syscall.
#[derive(Debug, Default)]
struct OutputAcc {
    counts: HashMap<SymOutputPartition, u64>,
    calls: u64,
}

/// The accumulation-time form of [`AnalysisReport`]: every string key is
/// an interned [`Sym`] and every map a `HashMap`, so the per-event hot
/// path never clones a string or walks a `BTreeMap` with heap-key
/// comparisons. Strings only come back when a report is
/// [materialized](Self::materialize) — sorted into `BTreeMap`s there, so
/// the serialized output is byte-identical to accumulating into
/// [`AnalysisReport`] directly.
#[derive(Debug)]
pub(crate) struct ReportBuilder {
    interner: Arc<StrInterner>,
    /// Filtering statistics, updated by the owner of the builder.
    pub(crate) filter_stats: FilterStats,
    input: BTreeMap<ArgName, InputAcc>,
    output: HashMap<Sym, OutputAcc>,
    calls_per_variant: HashMap<Sym, u64>,
    open_combos: ComboHistogram,
}

impl ReportBuilder {
    /// A builder accumulating into (and resolving from) `interner` —
    /// typically one interner `Arc`-shared across every shard of a
    /// parallel run.
    pub(crate) fn new(interner: Arc<StrInterner>) -> Self {
        ReportBuilder {
            interner,
            filter_stats: FilterStats::default(),
            input: BTreeMap::new(),
            output: HashMap::new(),
            calls_per_variant: HashMap::new(),
            open_combos: ComboHistogram::default(),
        }
    }

    /// Accumulates one (already filter-accepted) event — the shared
    /// per-event step of batch and streaming analysis — additionally
    /// recording unknown-syscall drops, variant merges, and
    /// per-partition-family record counts into `metrics` when attached.
    pub(crate) fn accumulate<E: iocov_trace::EventView + ?Sized>(
        &mut self,
        event: &E,
        metrics: Option<&PipelineMetrics>,
    ) {
        let Some(call) = normalize(event) else {
            // Tester noise outside the 27-call domain.
            if let Some(m) = metrics {
                m.record_drop(DropReason::UnknownSyscall);
            }
            return;
        };
        if let Some(m) = metrics {
            if call.sysno.name() != call.base.name() {
                m.record_variant_merged();
            }
        }
        let interner = &*self.interner;
        *self
            .calls_per_variant
            .entry(interner.intern(call.sysno.name()))
            .or_insert(0) += 1;

        // Input partitions.
        for (arg, value) in &call.args {
            let domain = arg_domain(*arg);
            let cov = self.input.entry(*arg).or_default();
            cov.calls += 1;
            domain.partition_syms(*value, interner, |partition| {
                if let Some(m) = metrics {
                    m.record_input_sym(partition);
                }
                *cov.counts.entry(partition).or_insert(0) += 1;
            });
            // Table 1: flag-combination histogram for open.
            if *arg == ArgName::OpenFlags {
                if let crate::arg::TrackedValue::Bits(bits) = value {
                    let present = open_flags_present(*bits);
                    if !present.is_empty() {
                        let n = present.len();
                        *self.open_combos.sizes.entry(n).or_insert(0) += 1;
                        if present.contains(&"O_RDONLY") {
                            *self.open_combos.sizes_with_rdonly.entry(n).or_insert(0) += 1;
                        }
                    }
                }
            }
        }

        // Output partition.
        let bucket_bytes = output_buckets_bytes(call.base);
        let partition = SymOutputPartition::of(call.retval, bucket_bytes, interner);
        if let Some(m) = metrics {
            m.record_output_sym(partition);
        }
        let cov = self
            .output
            .entry(interner.intern(call.base.name()))
            .or_default();
        cov.calls += 1;
        *cov.counts.entry(partition).or_insert(0) += 1;
    }

    /// Materializes the string-keyed public report: symbols resolve back
    /// to strings and every map sorts into its `BTreeMap` form.
    pub(crate) fn materialize(&self) -> AnalysisReport {
        let interner = &*self.interner;
        let resolve = |sym: Sym| {
            interner
                .resolve(sym)
                .expect("symbol interned by this builder")
                .as_ref()
                .to_owned()
        };
        let input = self
            .input
            .iter()
            .map(|(arg, acc)| {
                let counts = acc
                    .counts
                    .iter()
                    .map(|(p, &c)| (p.materialize(interner), c))
                    .collect();
                (
                    *arg,
                    InputCoverage {
                        counts,
                        calls: acc.calls,
                    },
                )
            })
            .collect();
        let output = self
            .output
            .iter()
            .map(|(&base, acc)| {
                let counts = acc
                    .counts
                    .iter()
                    .map(|(p, &c)| (p.materialize(interner), c))
                    .collect();
                (
                    resolve(base),
                    OutputCoverage {
                        counts,
                        calls: acc.calls,
                    },
                )
            })
            .collect();
        let calls_per_variant = self
            .calls_per_variant
            .iter()
            .map(|(&name, &count)| (resolve(name), count))
            .collect();
        AnalysisReport {
            filter_stats: self.filter_stats,
            input,
            output,
            calls_per_variant,
            open_combos: self.open_combos.clone(),
        }
    }

    /// Consumes the builder, materializing the final report.
    pub(crate) fn into_report(self) -> AnalysisReport {
        self.materialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::NumericPartition;
    use iocov_trace::{ArgValue, TraceEvent};

    fn ev(name: &str, args: Vec<ArgValue>, retval: i64) -> TraceEvent {
        TraceEvent::build(name, 0, args, retval)
    }

    fn open_ev(path: &str, flags: u32, retval: i64) -> TraceEvent {
        ev(
            "open",
            vec![
                ArgValue::Path(path.into()),
                ArgValue::Flags(flags),
                ArgValue::Mode(0o644),
            ],
            retval,
        )
    }

    fn write_ev(count: u64, retval: i64) -> TraceEvent {
        ev(
            "write",
            vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(count)],
            retval,
        )
    }

    #[test]
    fn input_coverage_counts_flag_partitions() {
        let analyzer = Analyzer::unfiltered();
        let trace = Trace::from_events(vec![
            open_ev("/f", 0, 3),     // O_RDONLY
            open_ev("/f", 0o101, 4), // O_WRONLY|O_CREAT
            open_ev("/f", 0o101, 5),
        ]);
        let report = analyzer.analyze(&trace);
        let cov = report.input_coverage(ArgName::OpenFlags);
        assert_eq!(cov.count(&InputPartition::Flag("O_RDONLY".into())), 1);
        assert_eq!(cov.count(&InputPartition::Flag("O_WRONLY".into())), 2);
        assert_eq!(cov.count(&InputPartition::Flag("O_CREAT".into())), 2);
        assert_eq!(cov.count(&InputPartition::Flag("O_EXCL".into())), 0);
        assert_eq!(cov.calls, 3);
        assert!(cov
            .untested(ArgName::OpenFlags)
            .contains(&InputPartition::Flag("O_TMPFILE".into())));
    }

    #[test]
    fn write_sizes_bucket_by_log2_with_zero_boundary() {
        let analyzer = Analyzer::unfiltered();
        let trace = Trace::from_events(vec![
            write_ev(0, 0),
            write_ev(1, 1),
            write_ev(4096, 4096),
            write_ev(5000, 5000),
        ]);
        let report = analyzer.analyze(&trace);
        let cov = report.input_coverage(ArgName::WriteCount);
        assert_eq!(
            cov.count(&InputPartition::Numeric(NumericPartition::Zero)),
            1
        );
        assert_eq!(
            cov.count(&InputPartition::Numeric(NumericPartition::Log2(0))),
            1
        );
        assert_eq!(
            cov.count(&InputPartition::Numeric(NumericPartition::Log2(12))),
            2
        );
        let frac = cov.coverage_fraction(ArgName::WriteCount);
        assert!(frac > 0.0 && frac < 0.2);
    }

    #[test]
    fn output_coverage_separates_ok_buckets_and_errnos() {
        let analyzer = Analyzer::unfiltered();
        let trace = Trace::from_events(vec![
            open_ev("/f", 0, 3),
            open_ev("/missing", 0, -2),
            open_ev("/dir", 1, -21),
            write_ev(4096, 4096),
            write_ev(10, -28),
        ]);
        let report = analyzer.analyze(&trace);
        let open_cov = report.output_coverage(BaseSyscall::Open);
        assert_eq!(open_cov.successes(), 1);
        assert_eq!(open_cov.errors(), 2);
        assert_eq!(open_cov.errno_count("ENOENT"), 1);
        assert_eq!(open_cov.errno_count("EISDIR"), 1);
        assert!(open_cov
            .untested_errnos(BaseSyscall::Open)
            .contains(&"ENOSPC"));

        let write_cov = report.output_coverage(BaseSyscall::Write);
        assert_eq!(
            write_cov.count(&OutputPartition::OkBytes(NumericPartition::Log2(12))),
            1
        );
        assert_eq!(write_cov.errno_count("ENOSPC"), 1);
    }

    #[test]
    fn variants_merge_into_one_base() {
        let analyzer = Analyzer::unfiltered();
        let trace = Trace::from_events(vec![
            open_ev("/a", 0, 3),
            ev(
                "openat",
                vec![
                    ArgValue::Fd(-100),
                    ArgValue::Path("/b".into()),
                    ArgValue::Flags(0o100),
                    ArgValue::Mode(0o600),
                ],
                4,
            ),
            ev(
                "creat",
                vec![ArgValue::Path("/c".into()), ArgValue::Mode(0o644)],
                5,
            ),
        ]);
        let report = analyzer.analyze(&trace);
        assert_eq!(report.output_coverage(BaseSyscall::Open).calls, 3);
        assert_eq!(report.calls_per_variant["open"], 1);
        assert_eq!(report.calls_per_variant["openat"], 1);
        assert_eq!(report.calls_per_variant["creat"], 1);
        let cov = report.input_coverage(ArgName::OpenFlags);
        // creat implies O_CREAT|O_WRONLY|O_TRUNC; openat adds O_CREAT.
        assert_eq!(cov.count(&InputPartition::Flag("O_CREAT".into())), 2);
        assert_eq!(cov.count(&InputPartition::Flag("O_TRUNC".into())), 1);
    }

    #[test]
    fn combo_histogram_matches_table1_semantics() {
        let analyzer = Analyzer::unfiltered();
        let trace = Trace::from_events(vec![
            open_ev("/a", 0, 3),      // [O_RDONLY] → 1 flag
            open_ev("/b", 0o100, 4),  // [O_RDONLY, O_CREAT] → 2
            open_ev("/c", 0o1101, 5), // [O_WRONLY, O_CREAT, O_TRUNC] → 3
            open_ev("/d", 0o102, 6),  // [O_RDWR, O_CREAT] → 2
        ]);
        let report = analyzer.analyze(&trace);
        let combos = &report.open_combos;
        assert_eq!(combos.sizes[&1], 1);
        assert_eq!(combos.sizes[&2], 2);
        assert_eq!(combos.sizes[&3], 1);
        assert_eq!(combos.max_size(), 3);
        assert_eq!(combos.sizes_with_rdonly.get(&1), Some(&1));
        assert_eq!(combos.sizes_with_rdonly.get(&2), Some(&1));
        assert_eq!(combos.sizes_with_rdonly.get(&3), None);
        let pct = combos.percentages(false);
        let total: f64 = pct.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn filter_is_applied_before_analysis() {
        let filter = TraceFilter::mount_point("/mnt/test").unwrap();
        let analyzer = Analyzer::new(filter);
        let trace = Trace::from_events(vec![
            open_ev("/mnt/test/f", 0, 3),
            open_ev("/etc/noise", 0, 4),
        ]);
        let report = analyzer.analyze(&trace);
        assert_eq!(report.total_calls(), 1);
        assert_eq!(report.filter_stats.dropped, 1);
    }

    #[test]
    fn noise_syscalls_do_not_pollute_the_report() {
        let analyzer = Analyzer::unfiltered();
        let trace = Trace::from_events(vec![
            ev(
                "stat",
                vec![ArgValue::Path("/f".into()), ArgValue::Ptr(1)],
                0,
            ),
            ev("fsync", vec![ArgValue::Fd(3)], 0),
            open_ev("/f", 0, 3),
        ]);
        let report = analyzer.analyze(&trace);
        assert_eq!(report.total_calls(), 1);
        assert!(!report.calls_per_variant.contains_key("stat"));
    }

    #[test]
    fn merge_accumulates_reports() {
        let analyzer = Analyzer::unfiltered();
        let a = analyzer.analyze(&Trace::from_events(vec![
            open_ev("/a", 0, 3),
            write_ev(8, 8),
        ]));
        let b = analyzer.analyze(&Trace::from_events(vec![open_ev("/b", 0, -2)]));
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total_calls(), 3);
        let cov = merged.input_coverage(ArgName::OpenFlags);
        assert_eq!(cov.count(&InputPartition::Flag("O_RDONLY".into())), 2);
        assert_eq!(
            merged
                .output_coverage(BaseSyscall::Open)
                .errno_count("ENOENT"),
            1
        );
        assert_eq!(merged.open_combos.sizes[&1], 2);
    }

    #[test]
    fn frequency_vector_has_domain_length() {
        let analyzer = Analyzer::unfiltered();
        let report = analyzer.analyze(&Trace::from_events(vec![open_ev("/a", 0, 3)]));
        let cov = report.input_coverage(ArgName::OpenFlags);
        let vec = cov.frequency_vector(ArgName::OpenFlags);
        assert_eq!(vec.len(), 20);
        assert_eq!(vec.iter().sum::<u64>(), 1);
    }

    #[test]
    fn report_serde_roundtrip() {
        let analyzer = Analyzer::unfiltered();
        let report = analyzer.analyze(&Trace::from_events(vec![
            open_ev("/a", 0o101, 3),
            write_ev(512, 512),
            write_ev(0, 0),
        ]));
        let json = serde_json::to_string(&report).unwrap();
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
