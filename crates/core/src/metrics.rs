//! Pipeline observability: cheap counters and per-stage timers.
//!
//! Coverage tooling is only trustworthy when its own gaps are measured:
//! a run that silently drops half its events reports coverage of the
//! half it kept. [`PipelineMetrics`] turns the analysis pipeline from a
//! black box into an accounted funnel — events read, parse-skipped,
//! filter-dropped (by [`DropReason`]), variant-merged, and
//! per-partition-family record counts — using relaxed atomic counters so
//! one instance can be shared (via `Arc`) across every shard of a
//! parallel run. Because each counter is a commutative sum,
//! [`PipelineMetrics::snapshot`] of a parallel run is **identical** to a
//! serial run over the same trace, down to the serialized bytes.
//!
//! Wall-clock stage timers ride along for performance work but live
//! outside the snapshot: time is the one thing a parallel run is
//! supposed to change.
//!
//! ```
//! use iocov::{ParallelAnalyzer, PipelineMetrics, TraceFilter};
//! use iocov_trace::Trace;
//! use std::sync::Arc;
//!
//! let metrics = Arc::new(PipelineMetrics::default());
//! let analyzer = ParallelAnalyzer::new(TraceFilter::keep_all(), 4)
//!     .with_metrics(Arc::clone(&metrics));
//! analyzer.analyze(&Trace::new());
//! assert_eq!(metrics.snapshot().events_read, 0);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::partition::{InputPartition, OutputPartition, SymInputPartition, SymOutputPartition};

/// Why the pipeline dropped an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DropReason {
    /// Every pathname argument resolved outside the mount point.
    WrongMount,
    /// No pathname argument, and the descriptor (if any) has no
    /// provenance under the mount point.
    IrrelevantFd,
    /// The event survived filtering but names a syscall outside the
    /// analyzer's 27-call domain (tester-internal noise).
    UnknownSyscall,
}

impl DropReason {
    /// Every reason, in snapshot order.
    pub const ALL: [DropReason; 3] = [
        DropReason::WrongMount,
        DropReason::IrrelevantFd,
        DropReason::UnknownSyscall,
    ];

    /// Stable kebab-case name, used as the snapshot map key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DropReason::WrongMount => "wrong-mount",
            DropReason::IrrelevantFd => "irrelevant-fd",
            DropReason::UnknownSyscall => "unknown-syscall",
        }
    }
}

/// Partition families tracked by the per-record counters.
const PARTITION_FAMILIES: [&str; 5] = [
    "input-flag",
    "input-numeric",
    "input-categorical",
    "output-ok",
    "output-err",
];

/// Shared, thread-safe pipeline counters. See the [module docs](self).
#[derive(Debug, Default)]
pub struct PipelineMetrics {
    events_read: AtomicU64,
    parse_skipped: AtomicU64,
    dropped_wrong_mount: AtomicU64,
    dropped_irrelevant_fd: AtomicU64,
    dropped_unknown_syscall: AtomicU64,
    variant_merged: AtomicU64,
    records_input_flag: AtomicU64,
    records_input_numeric: AtomicU64,
    records_input_categorical: AtomicU64,
    records_output_ok: AtomicU64,
    records_output_err: AtomicU64,
    batch_count: AtomicU64,
    batched_events: AtomicU64,
    allocs_estimated: AtomicU64,
    shard_restarts: AtomicU64,
    shard_failures: Mutex<Vec<ShardFailureRecord>>,
    stage_nanos: Mutex<BTreeMap<&'static str, u64>>,
}

/// Stage names the pipeline is known to time. [`PipelineMetrics::absorb`]
/// resolves a snapshot's owned stage keys back to these statics; an
/// unknown stage (impossible without a code change) is dropped rather
/// than leaked into a `&'static str` map.
const KNOWN_STAGES: [&str; 4] = ["filter", "accumulate", "analyze", "simulate"];

impl PipelineMetrics {
    /// Counts events entering the pipeline.
    pub fn add_events_read(&self, n: u64) {
        self.events_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts lines the lossy reader skipped before analysis.
    pub fn add_parse_skipped(&self, n: u64) {
        self.parse_skipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one dropped event.
    pub fn record_drop(&self, reason: DropReason) {
        let counter = match reason {
            DropReason::WrongMount => &self.dropped_wrong_mount,
            DropReason::IrrelevantFd => &self.dropped_irrelevant_fd,
            DropReason::UnknownSyscall => &self.dropped_unknown_syscall,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one event whose concrete variant was merged into a
    /// different base syscall (e.g. `openat` → `open`).
    pub fn record_variant_merged(&self) {
        self.variant_merged.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one input-partition record.
    pub fn record_input_partition(&self, partition: &InputPartition) {
        let counter = match partition {
            InputPartition::Flag(_) => &self.records_input_flag,
            InputPartition::Numeric(_) => &self.records_input_numeric,
            InputPartition::Categorical(_) => &self.records_input_categorical,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one output-partition record.
    pub fn record_output_partition(&self, partition: &OutputPartition) {
        let counter = match partition {
            OutputPartition::Ok | OutputPartition::OkBytes(_) => &self.records_output_ok,
            OutputPartition::Err(_) => &self.records_output_err,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Family counter for an interned input partition — same buckets as
    /// [`record_input_partition`](Self::record_input_partition) without
    /// materializing a string key.
    pub(crate) fn record_input_sym(&self, partition: SymInputPartition) {
        let counter = match partition {
            SymInputPartition::Flag(_) => &self.records_input_flag,
            SymInputPartition::Numeric(_) => &self.records_input_numeric,
            SymInputPartition::Categorical(_) => &self.records_input_categorical,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Family counter for an interned output partition.
    pub(crate) fn record_output_sym(&self, partition: SymOutputPartition) {
        let counter = match partition {
            SymOutputPartition::Ok | SymOutputPartition::OkBytes(_) => &self.records_output_ok,
            SymOutputPartition::Err(_) => &self.records_output_err,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one columnar batch entering the analysis stage: `events`
    /// rows, whose owned `Vec<TraceEvent>` representation would have
    /// cost an estimated `allocs` heap allocations (the batch amortizes
    /// them into O(columns) buffers). Recorded once per source batch by
    /// the pipeline driver — never inside an executor — so serial and
    /// pooled snapshots stay byte-identical.
    pub fn record_batch(&self, events: u64, allocs: u64) {
        self.batch_count.fetch_add(1, Ordering::Relaxed);
        self.batched_events.fetch_add(events, Ordering::Relaxed);
        self.allocs_estimated.fetch_add(allocs, Ordering::Relaxed);
    }

    /// Batches recorded so far.
    ///
    /// Like [`stage_timings`](Self::stage_timings), deliberately *not*
    /// part of the serialized snapshot: batch boundaries follow the pull
    /// schedule (checkpoint and stop caps shorten pulls), so the count
    /// is a property of how a run was driven, not of the trace — a
    /// checkpointed run must still serialize byte-identically to an
    /// uninterrupted one. The event-derived sums (`batched_events`,
    /// `allocs_estimated`) *are* in the snapshot.
    #[must_use]
    pub fn batch_count(&self) -> u64 {
        self.batch_count.load(Ordering::Relaxed)
    }

    /// Mean events per recorded batch (live, schedule-dependent — see
    /// [`batch_count`](Self::batch_count)). `None` before any batch.
    #[must_use]
    pub fn events_per_batch(&self) -> Option<f64> {
        let batches = self.batch_count.load(Ordering::Relaxed);
        (batches > 0).then(|| self.batched_events.load(Ordering::Relaxed) as f64 / batches as f64)
    }

    /// Starts a wall-clock timer for `stage`; the elapsed time is added
    /// to the stage's total when the returned guard drops. Repeated
    /// timings of the same stage accumulate.
    #[must_use]
    pub fn time_stage(&self, stage: &'static str) -> StageTimer<'_> {
        StageTimer {
            metrics: self,
            stage,
            start: Instant::now(),
        }
    }

    /// Adds elapsed nanoseconds to a stage total directly.
    pub fn add_stage_nanos(&self, stage: &'static str, nanos: u64) {
        // A panicking worker can poison this lock mid-update; the worst
        // outcome is one torn nanosecond total, which never justifies
        // cascading the panic into the supervisor.
        let mut stages = self
            .stage_nanos
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *stages.entry(stage).or_insert(0) += nanos;
    }

    /// Accumulated wall-clock nanoseconds per stage.
    ///
    /// Deliberately *not* part of [`snapshot`](Self::snapshot): timings
    /// are nondeterministic, and the snapshot must be byte-identical
    /// between serial and parallel runs.
    #[must_use]
    pub fn stage_timings(&self) -> BTreeMap<String, u64> {
        self.stage_nanos
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&stage, &nanos)| (stage.to_owned(), nanos))
            .collect()
    }

    /// Counts one supervised shard restart.
    pub fn record_shard_restart(&self) {
        self.shard_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends one entry to the shard-failure manifest.
    pub fn record_shard_failure(&self, record: ShardFailureRecord) {
        self.shard_failures
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(record);
    }

    /// Sums a snapshot's counters into this instance.
    ///
    /// This is how supervised workers report: each worker *incarnation*
    /// accumulates into a private `PipelineMetrics` and the supervisor
    /// absorbs the snapshot only when the incarnation finishes cleanly —
    /// so a shard that panics mid-batch and is replayed never
    /// double-counts the events it saw before crashing.
    pub fn absorb(&self, snapshot: &MetricsSnapshot) {
        self.events_read
            .fetch_add(snapshot.events_read, Ordering::Relaxed);
        self.parse_skipped
            .fetch_add(snapshot.parse_skipped, Ordering::Relaxed);
        self.variant_merged
            .fetch_add(snapshot.variant_merged, Ordering::Relaxed);
        self.batched_events
            .fetch_add(snapshot.batched_events, Ordering::Relaxed);
        self.allocs_estimated
            .fetch_add(snapshot.allocs_estimated, Ordering::Relaxed);
        self.shard_restarts
            .fetch_add(snapshot.shard_restarts, Ordering::Relaxed);
        for reason in DropReason::ALL {
            if let Some(&count) = snapshot.filter_dropped.get(reason.name()) {
                let counter = match reason {
                    DropReason::WrongMount => &self.dropped_wrong_mount,
                    DropReason::IrrelevantFd => &self.dropped_irrelevant_fd,
                    DropReason::UnknownSyscall => &self.dropped_unknown_syscall,
                };
                counter.fetch_add(count, Ordering::Relaxed);
            }
        }
        for (family, counter) in PARTITION_FAMILIES.iter().zip([
            &self.records_input_flag,
            &self.records_input_numeric,
            &self.records_input_categorical,
            &self.records_output_ok,
            &self.records_output_err,
        ]) {
            if let Some(&count) = snapshot.partition_records.get(*family) {
                counter.fetch_add(count, Ordering::Relaxed);
            }
        }
        for record in &snapshot.shard_failures {
            self.record_shard_failure(record.clone());
        }
    }

    /// Sums another instance's stage timings into this one (the timing
    /// counterpart of [`absorb`](Self::absorb), separate because timings
    /// live outside the deterministic snapshot).
    pub fn absorb_stage_timings(&self, timings: &BTreeMap<String, u64>) {
        for (stage, &nanos) in timings {
            if let Some(&known) = KNOWN_STAGES.iter().find(|&&k| k == stage) {
                self.add_stage_nanos(known, nanos);
            }
        }
    }

    /// A deterministic snapshot of every counter.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut filter_dropped = BTreeMap::new();
        filter_dropped.insert(
            DropReason::WrongMount.name().to_owned(),
            read(&self.dropped_wrong_mount),
        );
        filter_dropped.insert(
            DropReason::IrrelevantFd.name().to_owned(),
            read(&self.dropped_irrelevant_fd),
        );
        filter_dropped.insert(
            DropReason::UnknownSyscall.name().to_owned(),
            read(&self.dropped_unknown_syscall),
        );
        let mut partition_records = BTreeMap::new();
        for (family, counter) in PARTITION_FAMILIES.iter().zip([
            &self.records_input_flag,
            &self.records_input_numeric,
            &self.records_input_categorical,
            &self.records_output_ok,
            &self.records_output_err,
        ]) {
            partition_records.insert((*family).to_owned(), read(counter));
        }
        let mut shard_failures = self
            .shard_failures
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        // Manifest order must not depend on which supervisor path
        // recorded first.
        shard_failures.sort_by_key(|r| r.shard);
        MetricsSnapshot {
            events_read: read(&self.events_read),
            parse_skipped: read(&self.parse_skipped),
            filter_dropped,
            variant_merged: read(&self.variant_merged),
            partition_records,
            batched_events: read(&self.batched_events),
            allocs_estimated: read(&self.allocs_estimated),
            shard_restarts: read(&self.shard_restarts),
            shard_failures,
        }
    }
}

/// RAII guard adding elapsed wall-clock time to one stage's total.
#[derive(Debug)]
pub struct StageTimer<'a> {
    metrics: &'a PipelineMetrics,
    stage: &'static str,
    start: Instant,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.metrics.add_stage_nanos(self.stage, nanos);
    }
}

/// One entry in the supervised pipeline's shard-failure manifest.
///
/// A record is written for every shard that failed at least once —
/// `gave_up: false` means the supervisor's restarts recovered it and the
/// report is complete; `gave_up: true` means the shard exhausted its
/// restart budget and the report is partial (missing that shard's pids).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardFailureRecord {
    /// Shard index (`pid % workers`).
    pub shard: usize,
    /// Restarts performed for this shard.
    pub restarts: u32,
    /// Whether the restart budget ran out before a clean pass.
    pub gave_up: bool,
    /// The last failure observed (panic message or stall description).
    pub last_error: String,
}

/// A deterministic, serializable view of [`PipelineMetrics`].
///
/// Snapshots merge commutatively ([`merge`](Self::merge) is a plain
/// sum), so aggregating per-suite or per-shard snapshots in any order
/// yields the same totals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Events that entered the pipeline (pre-filter).
    pub events_read: u64,
    /// Lines the lossy reader skipped during ingest.
    pub parse_skipped: u64,
    /// Dropped events by [`DropReason`] name.
    pub filter_dropped: BTreeMap<String, u64>,
    /// Events whose variant was merged into a different base syscall.
    pub variant_merged: u64,
    /// Partition records written, by partition family.
    pub partition_records: BTreeMap<String, u64>,
    /// Events that entered the analysis stage packed in columnar
    /// batches. A per-event sum, so it is identical across executors,
    /// decode paths, and checkpoint schedules (unlike the live
    /// [`PipelineMetrics::batch_count`], which follows the pull
    /// schedule and stays out of the snapshot).
    #[serde(default)]
    pub batched_events: u64,
    /// Estimated heap allocations the owned per-event representation of
    /// those batches would have needed (one name string and one args
    /// vector per event, one string per path/str argument) — the figure
    /// the columnar layout amortizes away into O(columns) buffers.
    /// Also a per-event sum, so deterministic across every matrix cell.
    #[serde(default)]
    pub allocs_estimated: u64,
    /// Supervised shard restarts performed (panics and stalls absorbed
    /// by the supervisor).
    #[serde(default)]
    pub shard_restarts: u64,
    /// Per-shard failure manifest: one entry for every shard that needed
    /// restarting, whether or not it eventually succeeded. Empty on a
    /// fault-free run, so serial and parallel snapshots stay
    /// byte-identical.
    #[serde(default)]
    pub shard_failures: Vec<ShardFailureRecord>,
}

impl MetricsSnapshot {
    /// Sums another snapshot into this one.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.events_read += other.events_read;
        self.parse_skipped += other.parse_skipped;
        self.variant_merged += other.variant_merged;
        self.batched_events += other.batched_events;
        self.allocs_estimated += other.allocs_estimated;
        self.shard_restarts += other.shard_restarts;
        for (reason, count) in &other.filter_dropped {
            *self.filter_dropped.entry(reason.clone()).or_insert(0) += count;
        }
        for (family, count) in &other.partition_records {
            *self.partition_records.entry(family.clone()).or_insert(0) += count;
        }
        self.shard_failures
            .extend(other.shard_failures.iter().cloned());
        self.shard_failures.sort_by_key(|r| r.shard);
    }

    /// Total dropped events across all reasons.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.filter_dropped.values().sum()
    }

    /// Mean estimated allocations avoided per batched event. `None`
    /// before any event.
    #[must_use]
    pub fn allocs_per_event(&self) -> Option<f64> {
        (self.batched_events > 0).then(|| self.allocs_estimated as f64 / self.batched_events as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::NumericPartition;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = PipelineMetrics::default();
        m.add_events_read(10);
        m.add_parse_skipped(2);
        m.record_drop(DropReason::WrongMount);
        m.record_drop(DropReason::WrongMount);
        m.record_drop(DropReason::IrrelevantFd);
        m.record_drop(DropReason::UnknownSyscall);
        m.record_variant_merged();
        m.record_input_partition(&InputPartition::Flag("O_CREAT".into()));
        m.record_input_partition(&InputPartition::Numeric(NumericPartition::Zero));
        m.record_input_partition(&InputPartition::Categorical("SEEK_SET".into()));
        m.record_output_partition(&OutputPartition::Ok);
        m.record_output_partition(&OutputPartition::OkBytes(NumericPartition::Log2(3)));
        m.record_output_partition(&OutputPartition::Err("ENOENT".into()));
        let snap = m.snapshot();
        assert_eq!(snap.events_read, 10);
        assert_eq!(snap.parse_skipped, 2);
        assert_eq!(snap.filter_dropped["wrong-mount"], 2);
        assert_eq!(snap.filter_dropped["irrelevant-fd"], 1);
        assert_eq!(snap.filter_dropped["unknown-syscall"], 1);
        assert_eq!(snap.total_dropped(), 4);
        assert_eq!(snap.variant_merged, 1);
        assert_eq!(snap.partition_records["input-flag"], 1);
        assert_eq!(snap.partition_records["input-numeric"], 1);
        assert_eq!(snap.partition_records["input-categorical"], 1);
        assert_eq!(snap.partition_records["output-ok"], 2);
        assert_eq!(snap.partition_records["output-err"], 1);
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        let a = {
            let m = PipelineMetrics::default();
            m.add_events_read(3);
            m.record_drop(DropReason::WrongMount);
            m.snapshot()
        };
        let b = {
            let m = PipelineMetrics::default();
            m.add_events_read(4);
            m.record_drop(DropReason::IrrelevantFd);
            m.record_variant_merged();
            m.snapshot()
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.events_read, 7);
        assert_eq!(ab.total_dropped(), 2);
    }

    #[test]
    fn snapshot_serializes_deterministically() {
        let m = PipelineMetrics::default();
        m.add_events_read(1);
        let first = serde_json::to_string(&m.snapshot()).unwrap();
        let second = serde_json::to_string(&m.snapshot()).unwrap();
        assert_eq!(first, second);
        let back: MetricsSnapshot = serde_json::from_str(&first).unwrap();
        assert_eq!(back, m.snapshot());
        // Every key is present even at zero — a stable schema for tools.
        for reason in DropReason::ALL {
            assert!(first.contains(reason.name()), "{first}");
        }
    }

    #[test]
    fn stage_timers_accumulate() {
        let m = PipelineMetrics::default();
        {
            let _t = m.time_stage("filter");
        }
        {
            let _t = m.time_stage("filter");
        }
        m.add_stage_nanos("analyze", 500);
        let timings = m.stage_timings();
        assert!(timings.contains_key("filter"));
        assert_eq!(timings["analyze"], 500);
        // Timings never leak into the deterministic snapshot.
        let json = serde_json::to_string(&m.snapshot()).unwrap();
        assert!(!json.contains("analyze"));
    }

    #[test]
    fn absorb_equals_direct_counting() {
        // Counting into a local instance and absorbing its snapshot must
        // be indistinguishable from counting into the target directly.
        let direct = PipelineMetrics::default();
        direct.add_events_read(5);
        direct.record_drop(DropReason::WrongMount);
        direct.record_variant_merged();
        direct.record_input_partition(&InputPartition::Flag("O_APPEND".into()));
        direct.record_output_partition(&OutputPartition::Err("ENOSPC".into()));

        let local = PipelineMetrics::default();
        local.add_events_read(5);
        local.record_drop(DropReason::WrongMount);
        local.record_variant_merged();
        local.record_input_partition(&InputPartition::Flag("O_APPEND".into()));
        local.record_output_partition(&OutputPartition::Err("ENOSPC".into()));
        local.add_stage_nanos("analyze", 1234);
        let absorbed = PipelineMetrics::default();
        absorbed.absorb(&local.snapshot());
        absorbed.absorb_stage_timings(&local.stage_timings());

        assert_eq!(direct.snapshot(), absorbed.snapshot());
        assert_eq!(absorbed.stage_timings()["analyze"], 1234);
    }

    #[test]
    fn shard_failures_surface_in_snapshot_sorted() {
        let m = PipelineMetrics::default();
        m.record_shard_restart();
        m.record_shard_restart();
        m.record_shard_failure(ShardFailureRecord {
            shard: 3,
            restarts: 1,
            gave_up: false,
            last_error: "injected panic".into(),
        });
        m.record_shard_failure(ShardFailureRecord {
            shard: 1,
            restarts: 1,
            gave_up: true,
            last_error: "stalled".into(),
        });
        let snap = m.snapshot();
        assert_eq!(snap.shard_restarts, 2);
        assert_eq!(snap.shard_failures.len(), 2);
        assert_eq!(snap.shard_failures[0].shard, 1);
        assert_eq!(snap.shard_failures[1].shard, 3);
        // Round-trips through serde, and old snapshots (without the
        // supervision fields) still deserialize.
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let legacy: MetricsSnapshot = serde_json::from_str(
            "{\"events_read\":1,\"parse_skipped\":0,\"filter_dropped\":{},\
             \"variant_merged\":0,\"partition_records\":{}}",
        )
        .unwrap();
        assert_eq!(legacy.shard_restarts, 0);
        assert!(legacy.shard_failures.is_empty());
    }

    #[test]
    fn batch_counters_accumulate_merge_and_absorb() {
        let m = PipelineMetrics::default();
        m.record_batch(4096, 9000);
        m.record_batch(100, 250);
        // Live batch-shape counters: schedule-dependent, outside the
        // snapshot (like stage timings).
        assert_eq!(m.batch_count(), 2);
        assert_eq!(m.events_per_batch(), Some(2098.0));
        let snap = m.snapshot();
        assert_eq!(snap.batched_events, 4196);
        assert_eq!(snap.allocs_estimated, 9250);
        // The means are derived from raw sums, so merging stays
        // commutative and ratios of a doubled snapshot are unchanged.
        let mut twice = snap.clone();
        twice.merge(&snap);
        assert_eq!(twice.batched_events, 8392);
        assert_eq!(twice.allocs_estimated, 18500);
        let absorbed = PipelineMetrics::default();
        absorbed.absorb(&snap);
        assert_eq!(absorbed.snapshot(), snap);
        // An absorbed snapshot carries no batch shape — the live count
        // stays zero, exactly like timings.
        assert_eq!(absorbed.batch_count(), 0);
        assert_eq!(PipelineMetrics::default().events_per_batch(), None);
        assert_eq!(MetricsSnapshot::default().allocs_per_event(), None);
        assert_eq!(snap.allocs_per_event(), Some(9250.0 / 4196.0));
        // Batch-shape keys never leak into the serialized snapshot.
        let json = serde_json::to_string(&snap).unwrap();
        assert!(!json.contains("batch_count"), "{json}");
        assert!(json.contains("batched_events"), "{json}");
        assert!(json.contains("allocs_estimated"), "{json}");
    }

    #[test]
    fn shared_across_threads_sums_exactly() {
        use std::sync::Arc;
        let m = Arc::new(PipelineMetrics::default());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.add_events_read(1);
                        m.record_drop(DropReason::WrongMount);
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.events_read, 4000);
        assert_eq!(snap.filter_dropped["wrong-mount"], 4000);
    }
}
