//! Bit-combination coverage — the paper's future-work plan to "enhance
//! our metrics to support bit combinations".
//!
//! Per-flag counting (Figure 2) says *whether* each flag was exercised;
//! Table 1 says how many were combined; this module closes the gap by
//! tracking **which exact combinations** were used and computing 2-way
//! (pairwise) combinatorial coverage over the flag domain — the standard
//! combinatorial-testing strengthening of per-value coverage.

use std::collections::{BTreeMap, BTreeSet};

use iocov_trace::Trace;
use serde::{Deserialize, Serialize};

use crate::arg::{ArgName, TrackedValue};
use crate::domain::{open_flag_names, open_flags_present};
use crate::variants::normalize;

/// The three access modes are mutually exclusive: pairs among them are
/// not achievable and are excluded from the pairwise domain.
const ACCESS_MODES: [&str; 3] = ["O_RDONLY", "O_WRONLY", "O_RDWR"];

/// Serializes structurally-keyed maps as entry lists (JSON object keys
/// must be strings).
mod entries {
    use serde::de::Deserializer;
    use serde::ser::Serializer;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    pub(super) fn serialize<K, S>(map: &BTreeMap<K, u64>, serializer: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize + Ord,
        S: Serializer,
    {
        map.iter().collect::<Vec<_>>().serialize(serializer)
    }

    pub(super) fn deserialize<'de, K, D>(deserializer: D) -> Result<BTreeMap<K, u64>, D::Error>
    where
        K: Deserialize<'de> + Ord,
        D: Deserializer<'de>,
    {
        Ok(Vec::<(K, u64)>::deserialize(deserializer)?
            .into_iter()
            .collect())
    }
}

/// Exact-combination and pairwise coverage of `open` flags.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComboCoverage {
    /// Exact combinations (sorted flag-name lists) → times used.
    #[serde(with = "entries")]
    pub exact: BTreeMap<Vec<String>, u64>,
    /// Ordered flag pairs (lexicographic) observed together → count.
    #[serde(with = "entries")]
    pub pairs: BTreeMap<(String, String), u64>,
    /// Total `open`-family calls contributing.
    pub calls: u64,
}

impl ComboCoverage {
    /// Scans a trace (already filtered, if desired) for `open`-family
    /// calls and accumulates combination coverage.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let mut cov = ComboCoverage::default();
        for event in trace {
            let Some(call) = normalize(event) else {
                continue;
            };
            for (arg, value) in &call.args {
                if *arg == ArgName::OpenFlags {
                    if let TrackedValue::Bits(bits) = value {
                        cov.record(*bits);
                    }
                }
            }
        }
        cov
    }

    /// Records one flags word.
    pub fn record(&mut self, bits: u32) {
        let present = open_flags_present(bits);
        if present.is_empty() {
            return;
        }
        self.calls += 1;
        let combo: Vec<String> = present.iter().map(|s| (*s).to_owned()).collect();
        for i in 0..present.len() {
            for j in i + 1..present.len() {
                let (a, b) = ordered(present[i], present[j]);
                *self.pairs.entry((a, b)).or_insert(0) += 1;
            }
        }
        *self.exact.entry(combo).or_insert(0) += 1;
    }

    /// The most-used exact combinations, descending.
    #[must_use]
    pub fn top_combinations(&self, n: usize) -> Vec<(&[String], u64)> {
        let mut all: Vec<(&[String], u64)> = self
            .exact
            .iter()
            .map(|(combo, count)| (combo.as_slice(), *count))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        all.truncate(n);
        all
    }

    /// Number of distinct exact combinations observed.
    #[must_use]
    pub fn distinct_combinations(&self) -> usize {
        self.exact.len()
    }

    /// The full pairwise domain: every unordered pair of distinct flags
    /// that is achievable (access modes are mutually exclusive).
    #[must_use]
    pub fn pairwise_domain() -> Vec<(String, String)> {
        let flags = open_flag_names();
        let mut domain = Vec::new();
        for i in 0..flags.len() {
            for j in i + 1..flags.len() {
                if ACCESS_MODES.contains(&flags[i]) && ACCESS_MODES.contains(&flags[j]) {
                    continue;
                }
                let (a, b) = ordered(flags[i], flags[j]);
                domain.push((a, b));
            }
        }
        domain.sort();
        domain
    }

    /// Achievable pairs never observed together — the actionable gap
    /// list (e.g. `O_SYNC` never combined with `O_DIRECT`).
    #[must_use]
    pub fn untested_pairs(&self) -> Vec<(String, String)> {
        let tested: BTreeSet<&(String, String)> = self.pairs.keys().collect();
        Self::pairwise_domain()
            .into_iter()
            .filter(|pair| !tested.contains(pair))
            .collect()
    }

    /// Fraction of the achievable pairwise domain that was exercised.
    #[must_use]
    pub fn pairwise_fraction(&self) -> f64 {
        let domain = Self::pairwise_domain();
        if domain.is_empty() {
            return 1.0;
        }
        let tested = domain
            .iter()
            .filter(|p| self.pairs.contains_key(*p))
            .count();
        tested as f64 / domain.len() as f64
    }

    /// Merges another combo coverage (for chunked suite runs).
    pub fn merge(&mut self, other: &ComboCoverage) {
        self.calls += other.calls;
        for (combo, count) in &other.exact {
            *self.exact.entry(combo.clone()).or_insert(0) += count;
        }
        for (pair, count) in &other.pairs {
            *self.pairs.entry(pair.clone()).or_insert(0) += count;
        }
    }
}

fn ordered(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_owned(), b.to_owned())
    } else {
        (b.to_owned(), a.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iocov_trace::{ArgValue, TraceEvent};

    fn open_event(flags: u32) -> TraceEvent {
        TraceEvent::build(
            "open",
            2,
            vec![
                ArgValue::Path("/f".into()),
                ArgValue::Flags(flags),
                ArgValue::Mode(0),
            ],
            3,
        )
    }

    #[test]
    fn records_exact_combinations() {
        let mut cov = ComboCoverage::default();
        cov.record(0o101); // O_WRONLY|O_CREAT
        cov.record(0o101);
        cov.record(0); // O_RDONLY alone
        assert_eq!(cov.calls, 3);
        assert_eq!(cov.distinct_combinations(), 2);
        let top = cov.top_combinations(1);
        assert_eq!(top[0].1, 2);
        assert_eq!(top[0].0, ["O_WRONLY", "O_CREAT"]);
    }

    #[test]
    fn pairs_are_unordered_and_counted() {
        let mut cov = ComboCoverage::default();
        cov.record(0o101 | 0o1000); // O_WRONLY, O_CREAT, O_TRUNC
        assert_eq!(cov.pairs.len(), 3);
        assert_eq!(cov.pairs[&("O_CREAT".into(), "O_WRONLY".into())], 1);
        assert_eq!(cov.pairs[&("O_CREAT".into(), "O_TRUNC".into())], 1);
        assert_eq!(cov.pairs[&("O_TRUNC".into(), "O_WRONLY".into())], 1);
    }

    #[test]
    fn pairwise_domain_excludes_mode_mode_pairs() {
        let domain = ComboCoverage::pairwise_domain();
        assert!(!domain.contains(&("O_RDONLY".into(), "O_WRONLY".into())));
        assert!(!domain.contains(&("O_RDWR".into(), "O_WRONLY".into())));
        assert!(domain.contains(&("O_CREAT".into(), "O_RDONLY".into())));
        // 20 flags → C(20,2) = 190, minus the 3 mode-mode pairs.
        assert_eq!(domain.len(), 187);
    }

    #[test]
    fn untested_pairs_shrink_with_coverage() {
        let mut cov = ComboCoverage::default();
        let before = cov.untested_pairs().len();
        assert_eq!(before, 187);
        cov.record(0o101);
        let after = cov.untested_pairs().len();
        assert_eq!(after, 186);
        assert!(cov.pairwise_fraction() > 0.0);
    }

    #[test]
    fn from_trace_scans_all_open_variants() {
        let trace = Trace::from_events(vec![
            open_event(0o101),
            TraceEvent::build(
                "creat",
                85,
                vec![ArgValue::Path("/c".into()), ArgValue::Mode(0o644)],
                4,
            ),
            TraceEvent::build(
                "write",
                1,
                vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(8)],
                8,
            ),
        ]);
        let cov = ComboCoverage::from_trace(&trace);
        assert_eq!(cov.calls, 2, "open + creat, not write");
        // creat implies O_WRONLY|O_CREAT|O_TRUNC.
        assert!(cov
            .pairs
            .contains_key(&("O_CREAT".into(), "O_TRUNC".into())));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ComboCoverage::default();
        a.record(0);
        let mut b = ComboCoverage::default();
        b.record(0);
        b.record(0o101);
        a.merge(&b);
        assert_eq!(a.calls, 3);
        assert_eq!(a.exact[&vec!["O_RDONLY".to_owned()]], 2);
    }

    #[test]
    fn invalid_accmode_contributes_nothing() {
        let mut cov = ComboCoverage::default();
        cov.record(3);
        assert_eq!(cov.calls, 0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut cov = ComboCoverage::default();
        cov.record(0o102 | 0o2000000);
        let json = serde_json::to_string(&cov).unwrap();
        let back: ComboCoverage = serde_json::from_str(&json).unwrap();
        assert_eq!(cov, back);
    }
}
