//! Cold-partition extraction: the bridge from *measuring* under-testing
//! to *acting* on it.
//!
//! An [`AnalysisReport`] says how often each input partition and each
//! output (errno) partition was exercised. This module flattens that
//! report against a uniform per-partition target into:
//!
//! * a canonical **campaign frequency vector** ([`tcd_vector`]) whose
//!   [`tcd_uniform`](crate::tcd::tcd_uniform) is the single number a
//!   feedback campaign drives down ([`campaign_tcd`]), and
//! * a [`ColdReport`]: every partition still below target, with its
//!   log-scale deficit — the work list a feedback-driven generator
//!   re-weights its samplers toward.
//!
//! The vector layout is fixed: for each tracked argument in
//! [`ArgName::ALL`] order, the argument's displayed domain in canonical
//! order; then for each base syscall in [`BaseSyscall::ALL`] order, one
//! `OK` entry (total successes) followed by the manual-page errno list.
//! Keeping the layout canonical makes campaign TCD values comparable
//! across rounds, runs, and tools.
//!
//! Alongside the vector, extraction also surfaces cold **return-value
//! buckets** for the size-returning syscalls ([`output_buckets_bytes`]):
//! a `read` that has only ever returned 4 KiB leaves the short-read and
//! zero-byte buckets cold even when its `OK` total is warm. These ride
//! in [`ColdReport::outputs`] (they deliberately do *not* enter the
//! campaign vector, whose layout is frozen) so a feedback generator can
//! steer request sizes toward the returns it has never elicited.

use std::collections::BTreeMap;

use iocov_syscalls::BaseSyscall;

use crate::arg::ArgName;
use crate::coverage::AnalysisReport;
use crate::domain::{arg_domain, output_buckets_bytes, output_errnos};
use crate::partition::{InputPartition, NumericPartition, OutputPartition};
use crate::tcd::tcd_uniform;

/// Largest power-of-two return bucket extraction tracks for
/// size-returning syscalls: `Log2(20)` is the 1–2 MiB bucket, past any
/// single transfer the in-tree workload generators can stage.
pub const OUTPUT_BUCKET_MAX_LOG2: u32 = 20;

/// The canonical cold-extraction domain of successful byte-count
/// returns: the zero-byte partition (EOF reads, empty xattrs), then
/// each power-of-two bucket up to [`OUTPUT_BUCKET_MAX_LOG2`].
#[must_use]
pub fn output_bucket_domain() -> Vec<NumericPartition> {
    let mut domain = vec![NumericPartition::Zero];
    domain.extend((0..=OUTPUT_BUCKET_MAX_LOG2).map(NumericPartition::Log2));
    domain
}

/// One under-tested input partition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdPartition {
    /// The partition (within its argument's domain).
    pub partition: InputPartition,
    /// Observed hit count (strictly below the target).
    pub count: u64,
    /// `log10(target+1) − log10(count+1)` — how many decades of testing
    /// are missing. Always positive for a cold partition.
    pub deficit: f64,
}

/// One under-elicited output partition (an errno, or `OK`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColdErrno {
    /// The base syscall whose output space this belongs to.
    pub base: BaseSyscall,
    /// The errno name, or `"OK"` for the success partition.
    pub errno: &'static str,
    /// Observed count.
    pub count: u64,
    /// Missing decades, as in [`ColdPartition::deficit`].
    pub deficit: f64,
}

/// One under-elicited successful return-value bucket of a
/// size-returning syscall (`read`/`write`/`getxattr`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColdOutputBucket {
    /// The base syscall whose return space this bucket belongs to.
    pub base: BaseSyscall,
    /// The byte-count bucket (zero, or a power-of-two range).
    pub partition: NumericPartition,
    /// Observed count.
    pub count: u64,
    /// Missing decades, as in [`ColdPartition::deficit`].
    pub deficit: f64,
}

/// Everything a feedback round needs to know about what is still cold.
#[derive(Debug, Clone, Default)]
pub struct ColdReport {
    /// The uniform per-partition target the deficits are against.
    pub target: u64,
    /// Cold input partitions per argument, sorted by descending deficit.
    pub inputs: BTreeMap<ArgName, Vec<ColdPartition>>,
    /// Cold output partitions across all base syscalls, sorted by
    /// descending deficit (ties broken by base/errno order).
    pub errnos: Vec<ColdErrno>,
    /// Cold successful return-value buckets of the size-returning
    /// syscalls, sorted by descending deficit.
    pub outputs: Vec<ColdOutputBucket>,
}

impl ColdReport {
    /// Total number of cold input partitions across all arguments.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs.values().map(Vec::len).sum()
    }

    /// Summed deficit of one argument's cold partitions — a relative
    /// measure of how much a generator should favor calls exercising it.
    #[must_use]
    pub fn arg_deficit(&self, arg: ArgName) -> f64 {
        self.inputs
            .get(&arg)
            .map(|cold| cold.iter().map(|c| c.deficit).sum())
            .unwrap_or(0.0)
    }

    /// Summed deficit of one base syscall's cold output partitions.
    #[must_use]
    pub fn base_deficit(&self, base: BaseSyscall) -> f64 {
        self.errnos
            .iter()
            .filter(|c| c.base == base)
            .map(|c| c.deficit)
            .sum()
    }

    /// Summed deficit of one base syscall's cold return-value buckets —
    /// zero unless the syscall's returns are byte counts.
    #[must_use]
    pub fn bucket_deficit(&self, base: BaseSyscall) -> f64 {
        self.outputs
            .iter()
            .filter(|c| c.base == base)
            .map(|c| c.deficit)
            .sum()
    }
}

fn log10p1(x: u64) -> f64 {
    (x as f64 + 1.0).log10()
}

/// The canonical campaign frequency vector of a report (layout in the
/// module docs). Its length depends only on the domain definitions,
/// never on the report's contents.
#[must_use]
pub fn tcd_vector(report: &AnalysisReport) -> Vec<u64> {
    let mut freqs = Vec::new();
    for arg in ArgName::ALL {
        let cov = report.input_coverage(arg);
        freqs.extend(cov.frequency_vector(arg));
    }
    for base in BaseSyscall::ALL {
        let cov = report.output_coverage(base);
        freqs.push(cov.successes());
        for errno in output_errnos(base) {
            freqs.push(cov.errno_count(errno));
        }
    }
    freqs
}

/// Campaign TCD: [`tcd_uniform`] over the canonical vector. Lower is
/// better; a campaign converges by driving this toward zero.
#[must_use]
pub fn campaign_tcd(report: &AnalysisReport, target: u64) -> f64 {
    tcd_uniform(&tcd_vector(report), target)
}

/// Extracts every partition tested fewer than `target` times, with its
/// deficit, sorted worst-first.
#[must_use]
pub fn extract_cold(report: &AnalysisReport, target: u64) -> ColdReport {
    let target_log = log10p1(target);
    let mut inputs: BTreeMap<ArgName, Vec<ColdPartition>> = BTreeMap::new();
    for arg in ArgName::ALL {
        let cov = report.input_coverage(arg);
        let mut cold: Vec<ColdPartition> = arg_domain(arg)
            .all_partitions()
            .into_iter()
            .filter_map(|partition| {
                let count = cov.count(&partition);
                (count < target).then(|| ColdPartition {
                    partition,
                    count,
                    deficit: target_log - log10p1(count),
                })
            })
            .collect();
        if !cold.is_empty() {
            cold.sort_by(|a, b| b.deficit.total_cmp(&a.deficit));
            inputs.insert(arg, cold);
        }
    }
    let mut errnos = Vec::new();
    for base in BaseSyscall::ALL {
        let cov = report.output_coverage(base);
        let ok = cov.successes();
        if ok < target {
            errnos.push(ColdErrno {
                base,
                errno: "OK",
                count: ok,
                deficit: target_log - log10p1(ok),
            });
        }
        for errno in output_errnos(base) {
            let count = cov.errno_count(errno);
            if count < target {
                errnos.push(ColdErrno {
                    base,
                    errno,
                    count,
                    deficit: target_log - log10p1(count),
                });
            }
        }
    }
    errnos.sort_by(|a, b| b.deficit.total_cmp(&a.deficit));
    let mut outputs = Vec::new();
    for base in BaseSyscall::ALL {
        if !output_buckets_bytes(base) {
            continue;
        }
        let cov = report.output_coverage(base);
        for partition in output_bucket_domain() {
            let count = cov.count(&OutputPartition::OkBytes(partition));
            if count < target {
                outputs.push(ColdOutputBucket {
                    base,
                    partition,
                    count,
                    deficit: target_log - log10p1(count),
                });
            }
        }
    }
    outputs.sort_by(|a, b| b.deficit.total_cmp(&a.deficit));
    ColdReport {
        target,
        inputs,
        errnos,
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::Analyzer;
    use iocov_trace::{ArgValue, Trace, TraceEvent};

    fn open_ev(path: &str, flags: u32, retval: i64) -> TraceEvent {
        TraceEvent::build(
            "open",
            0,
            vec![
                ArgValue::Path(path.into()),
                ArgValue::Flags(flags),
                ArgValue::Mode(0o644),
            ],
            retval,
        )
    }

    fn sample_report() -> AnalysisReport {
        Analyzer::unfiltered().analyze(&Trace::from_events(vec![
            open_ev("/a", 0, 3),
            open_ev("/a", 0, 4),
            open_ev("/missing", 0, -2),
        ]))
    }

    #[test]
    fn vector_length_is_domain_determined() {
        let empty = AnalysisReport::default();
        let len: usize = ArgName::ALL
            .iter()
            .map(|&a| arg_domain(a).all_partitions().len())
            .sum::<usize>()
            + BaseSyscall::ALL
                .iter()
                .map(|&b| 1 + output_errnos(b).len())
                .sum::<usize>();
        assert_eq!(tcd_vector(&empty).len(), len);
        // Contents never change the length, only the entries.
        let report = sample_report();
        let vec = tcd_vector(&report);
        assert_eq!(vec.len(), len);
        assert!(vec.iter().sum::<u64>() > 0);
    }

    #[test]
    fn campaign_tcd_decreases_as_coverage_accumulates() {
        let empty = AnalysisReport::default();
        let report = sample_report();
        let mut twice = report.clone();
        twice.merge(&report);
        let t = 10;
        assert!(campaign_tcd(&report, t) < campaign_tcd(&empty, t));
        assert!(campaign_tcd(&twice, t) <= campaign_tcd(&report, t));
    }

    #[test]
    fn extract_cold_finds_untested_and_undertested() {
        let report = sample_report();
        let cold = extract_cold(&report, 10);
        assert_eq!(cold.target, 10);
        // O_RDONLY was hit three times — still cold against target 10,
        // with a smaller deficit than never-hit O_TMPFILE.
        let flags = &cold.inputs[&ArgName::OpenFlags];
        let rdonly = flags
            .iter()
            .find(|c| c.partition == InputPartition::Flag("O_RDONLY".into()))
            .expect("3 < 10 is cold");
        assert_eq!(rdonly.count, 3);
        let tmpfile = flags
            .iter()
            .find(|c| c.partition == InputPartition::Flag("O_TMPFILE".into()))
            .expect("never hit");
        assert_eq!(tmpfile.count, 0);
        assert!(tmpfile.deficit > rdonly.deficit);
        // Sorted worst-first.
        for w in flags.windows(2) {
            assert!(w[0].deficit >= w[1].deficit);
        }
        // ENOENT was elicited once; EACCES never.
        let enoent = cold
            .errnos
            .iter()
            .find(|c| c.base == BaseSyscall::Open && c.errno == "ENOENT")
            .unwrap();
        assert_eq!(enoent.count, 1);
        let eacces = cold
            .errnos
            .iter()
            .find(|c| c.base == BaseSyscall::Open && c.errno == "EACCES")
            .unwrap();
        assert!(eacces.deficit > enoent.deficit);
    }

    #[test]
    fn partitions_at_target_are_not_cold() {
        let report = sample_report();
        // Target 1: the twice-hit O_RDONLY and once-elicited ENOENT are
        // warm; the never-hit partitions remain.
        let cold = extract_cold(&report, 1);
        let flags = &cold.inputs[&ArgName::OpenFlags];
        assert!(!flags
            .iter()
            .any(|c| c.partition == InputPartition::Flag("O_RDONLY".into())));
        assert!(!cold
            .errnos
            .iter()
            .any(|c| c.base == BaseSyscall::Open && c.errno == "ENOENT"));
        assert!(cold
            .errnos
            .iter()
            .any(|c| c.base == BaseSyscall::Open && c.errno == "EACCES"));
    }

    #[test]
    fn deficit_aggregates_guide_selection() {
        let report = sample_report();
        let cold = extract_cold(&report, 10);
        assert!(cold.arg_deficit(ArgName::OpenFlags) > 0.0);
        // A never-called syscall's deficit is the full-cold maximum of
        // its domain; Open's observed calls pull it below its own.
        let full =
            |base: BaseSyscall| (output_errnos(base).len() + 1) as f64 * ((10.0f64 + 1.0).log10());
        let open = cold.base_deficit(BaseSyscall::Open);
        assert!(open > 0.0 && open < full(BaseSyscall::Open));
        let mkdir = cold.base_deficit(BaseSyscall::Mkdir);
        assert!((mkdir - full(BaseSyscall::Mkdir)).abs() < 1e-9);
        assert_eq!(cold.input_count(), cold.inputs.values().flatten().count());
    }

    #[test]
    fn extract_cold_surfaces_return_value_buckets() {
        let mut events = vec![open_ev("/a", 0, 3)];
        // Three writes landing in the 4..8-byte return bucket; reads and
        // getxattr never run at all.
        for _ in 0..3 {
            events.push(TraceEvent::build(
                "write",
                1,
                vec![ArgValue::Fd(3), ArgValue::Ptr(1), ArgValue::UInt(5)],
                5,
            ));
        }
        let report = Analyzer::unfiltered().analyze(&Trace::from_events(events));
        let cold = extract_cold(&report, 10);
        // The elicited bucket is warmer (smaller deficit) than its
        // untouched neighbors.
        let write_log2_2 = cold
            .outputs
            .iter()
            .find(|c| c.base == BaseSyscall::Write && c.partition == NumericPartition::Log2(2))
            .expect("3 < 10 is still cold");
        assert_eq!(write_log2_2.count, 3);
        let write_zero = cold
            .outputs
            .iter()
            .find(|c| c.base == BaseSyscall::Write && c.partition == NumericPartition::Zero)
            .expect("never elicited");
        assert!(write_zero.deficit > write_log2_2.deficit);
        // Sorted worst-first, and only size-returning syscalls appear.
        for w in cold.outputs.windows(2) {
            assert!(w[0].deficit >= w[1].deficit);
        }
        assert!(cold
            .outputs
            .iter()
            .all(|c| crate::domain::output_buckets_bytes(c.base)));
        // At target 1 the elicited bucket is warm and drops out.
        let warm = extract_cold(&report, 1);
        assert!(!warm
            .outputs
            .iter()
            .any(|c| c.base == BaseSyscall::Write && c.partition == NumericPartition::Log2(2)));
        // Aggregates: a never-read syscall carries its full-cold domain.
        let full = output_bucket_domain().len() as f64 * (10.0f64 + 1.0).log10();
        assert!((cold.bucket_deficit(BaseSyscall::Read) - full).abs() < 1e-9);
        assert!(cold.bucket_deficit(BaseSyscall::Write) < full);
        assert_eq!(cold.bucket_deficit(BaseSyscall::Open), 0.0);
    }

    #[test]
    fn fully_saturated_report_has_no_cold_partitions() {
        let report = sample_report();
        let cold = extract_cold(&report, 0);
        assert_eq!(cold.input_count(), 0);
        assert!(cold.errnos.is_empty());
        assert!(cold.outputs.is_empty());
        assert_eq!(campaign_tcd(&report, 0), {
            // Against target 0 every observed count is "over-tested";
            // TCD is positive but extraction is empty.
            let v = tcd_vector(&report);
            tcd_uniform(&v, 0)
        });
    }
}
