//! Resident analysis sessions and the batch driver that feeds them.
//!
//! [`Pipeline`](crate::pipeline::Pipeline) used to own its event loop:
//! `run` pulled batches from an [`EventSource`] until end-of-input, so
//! nothing could feed an analysis incrementally — a resident coverage
//! oracle (many generators querying one long-lived analysis, `iocov
//! serve`'s concurrent trace streams) had no seam to plug into. This
//! module inverts that control:
//!
//! * [`AnalysisSession`] is the resident half — executor, filter state,
//!   metrics, and checkpoint cursor, with no opinion about where events
//!   come from. Callers [`feed`](AnalysisSession::feed) it batches at
//!   their own pace, take merged [`snapshot`](AnalysisSession::snapshot)s
//!   mid-stream, [`checkpoint`](AnalysisSession::checkpoint) it at a
//!   source position, and [`finish`](AnalysisSession::finish) it for the
//!   final report plus failure manifest.
//! * [`Driver`] is the thin batch half — the exact pull loop `run` used
//!   to own (chunking, checkpoint-boundary capping, stop-after, lossy
//!   skip accounting), reproduced verbatim over any session. Every
//!   pre-existing batch path routes through it and stays byte-identical.
//!
//! The executor behind a session is whatever
//! [`PipelineBuilder`](crate::pipeline::PipelineBuilder) routes to —
//! supervised serial or the pid-sharded pool — or the deliberately
//! *unsupervised* [`DirectExecutor`] used by distributed worker
//! processes, where a panic must tear the process down so the
//! coordinator's process-level supervision stays honest.

use std::collections::BTreeMap;
use std::sync::Arc;

use iocov_trace::{EventBatch, EventSource, SourcePos, TraceEvent};

use crate::checkpoint::{write_checkpoint, CheckpointDoc, PidStateSnapshot};
use crate::coverage::AnalysisReport;
use crate::filter::TraceFilter;
use crate::metrics::{PipelineMetrics, ShardFailureRecord};
use crate::pipeline::{CheckpointPolicy, Executor, PipelineError, PipelineRun};
use crate::streaming::StreamingAnalyzer;

/// A resident analysis: accepts event batches incrementally and yields
/// cumulative reports on demand. Holds the executor, the shared
/// metrics, the checkpoint policy, and the session's event cursor; the
/// caller owns pacing and event provenance.
pub struct AnalysisSession {
    executor: Box<dyn Executor>,
    mount: Option<String>,
    metrics: Option<Arc<PipelineMetrics>>,
    checkpoint: Option<CheckpointPolicy>,
    /// Events fed so far, counted from the start of the trace (a
    /// resumed session starts at the checkpoint's count).
    events: u64,
}

impl AnalysisSession {
    /// A session over an already-routed executor. Callers normally go
    /// through [`PipelineBuilder::build_session`]
    /// (crate::pipeline::PipelineBuilder::build_session) or
    /// [`AnalysisSession::direct`] instead.
    #[must_use]
    pub fn new(
        executor: Box<dyn Executor>,
        mount: Option<String>,
        metrics: Option<Arc<PipelineMetrics>>,
        checkpoint: Option<CheckpointPolicy>,
        events: u64,
    ) -> Self {
        AnalysisSession {
            executor,
            mount,
            metrics,
            checkpoint,
            events,
        }
    }

    /// An *unsupervised* session: one [`StreamingAnalyzer`], panics
    /// propagate. This is the distributed-worker executor — the process
    /// supervisor upstairs owns recovery, so the session must not
    /// self-heal. `resume` seeds the cumulative report, pid states, and
    /// (when `metrics` is given) the checkpointed counters.
    #[must_use]
    pub fn direct(
        filter: TraceFilter,
        metrics: Option<Arc<PipelineMetrics>>,
        mount: Option<String>,
        checkpoint: Option<CheckpointPolicy>,
        resume: Option<&CheckpointDoc>,
    ) -> Self {
        if let (Some(m), Some(doc)) = (&metrics, resume) {
            // The checkpointed snapshot carries the counters for
            // everything before the cursor; live metrics continue from
            // there (absorb-then-snapshot equals snapshot-merge: every
            // counter is a commutative sum).
            m.absorb(&doc.metrics);
        }
        let executor = DirectExecutor::new(filter, metrics.clone(), resume);
        let events = resume.map_or(0, |doc| doc.cursor.events);
        AnalysisSession::new(Box::new(executor), mount, metrics, checkpoint, events)
    }

    /// Feeds one columnar batch. Batch-shape counters are recorded here
    /// — once, on the single entry point every feed path funnels
    /// through, executor-independently — so serial and pooled snapshots
    /// stay byte-identical.
    pub fn feed(&mut self, batch: EventBatch) {
        if let Some(m) = &self.metrics {
            m.record_batch(batch.len() as u64, batch.estimated_owned_allocs());
        }
        self.events += batch.len() as u64;
        self.executor.push(batch);
    }

    /// Feeds one owned chunk of in-memory events, packing it into a
    /// columnar batch.
    pub fn feed_owned(&mut self, events: Vec<TraceEvent>) {
        self.feed(EventBatch::from_events(&events));
    }

    /// Events fed so far (from the start of the trace for a resumed
    /// session).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Re-bases the event cursor (the driver syncs it to the source's
    /// position before pulling).
    pub(crate) fn set_events(&mut self, events: u64) {
        self.events = events;
    }

    /// The cumulative report over everything fed so far. The session
    /// stays live; subsequent feeds continue seamlessly.
    #[must_use]
    pub fn snapshot(&mut self) -> AnalysisReport {
        self.cut().0
    }

    /// A checkpoint cut: the cumulative report and per-pid relevance
    /// states over everything fed so far.
    #[must_use]
    pub fn cut(&mut self) -> (AnalysisReport, BTreeMap<u32, PidStateSnapshot>) {
        self.executor.cut()
    }

    /// Assembles a complete checkpoint document for the session's state
    /// at source position `pos`.
    #[must_use]
    pub fn checkpoint_doc(&mut self, pos: &SourcePos) -> CheckpointDoc {
        let (report, pid_states) = self.cut();
        CheckpointDoc {
            mount: self.mount.clone(),
            cursor: pos.state.clone(),
            pid_states,
            report,
            metrics: self
                .metrics
                .as_ref()
                .map(|m| m.snapshot())
                .unwrap_or_default(),
            format: pos.format,
        }
    }

    /// Cuts the session and persists a checkpoint at `pos` to the
    /// configured policy path. No-op without a checkpoint policy.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Checkpoint`] when the write fails.
    pub fn checkpoint(&mut self, pos: &SourcePos) -> Result<(), PipelineError> {
        let Some(path) = self.checkpoint.as_ref().map(|ck| ck.path.clone()) else {
            return Ok(());
        };
        let doc = self.checkpoint_doc(pos);
        write_checkpoint(&path, &doc).map_err(|error| PipelineError::Checkpoint { path, error })
    }

    /// The checkpoint cadence policy, if any.
    #[must_use]
    pub fn checkpoint_policy(&self) -> Option<&CheckpointPolicy> {
        self.checkpoint.as_ref()
    }

    /// Accounts lossy parse skips to the shared metrics (the source
    /// driver observes ledger growth; the session owns the counters).
    pub fn add_parse_skipped(&self, n: u64) {
        if let Some(m) = &self.metrics {
            m.add_parse_skipped(n);
        }
    }

    /// Drains the session: the final report and the shard-failure
    /// manifest (empty on a fault-free run).
    #[must_use]
    pub fn finish(self) -> (AnalysisReport, Vec<ShardFailureRecord>) {
        self.executor.finish()
    }
}

/// The unsupervised executor behind [`AnalysisSession::direct`]: a bare
/// [`StreamingAnalyzer`] scan with no `catch_unwind`, no replay log,
/// and no restart budget — an internal panic propagates to the caller
/// (and, in a worker process, tears the process down for the
/// coordinator to observe).
pub struct DirectExecutor {
    analyzer: StreamingAnalyzer,
    /// Report merged out of a resumed checkpoint.
    base_report: AnalysisReport,
}

impl DirectExecutor {
    /// A direct executor; `resume` seeds the cumulative report and pid
    /// states from a checkpoint.
    #[must_use]
    pub fn new(
        filter: TraceFilter,
        metrics: Option<Arc<PipelineMetrics>>,
        resume: Option<&CheckpointDoc>,
    ) -> Self {
        let mut analyzer = StreamingAnalyzer::new(filter);
        if let Some(m) = metrics {
            analyzer = analyzer.with_metrics(m);
        }
        let mut base_report = AnalysisReport::default();
        if let Some(doc) = resume {
            base_report = doc.report.clone();
            analyzer.restore_pid_states(&doc.pid_states);
        }
        DirectExecutor {
            analyzer,
            base_report,
        }
    }
}

impl Executor for DirectExecutor {
    fn push(&mut self, batch: EventBatch) {
        for event in batch.iter() {
            self.analyzer.push(&event);
        }
    }

    fn cut(&mut self) -> (AnalysisReport, BTreeMap<u32, PidStateSnapshot>) {
        let mut report = self.base_report.clone();
        report.merge(&self.analyzer.report());
        (report, self.analyzer.pid_states())
    }

    fn finish(self: Box<Self>) -> (AnalysisReport, Vec<ShardFailureRecord>) {
        let mut report = self.base_report;
        report.merge(&self.analyzer.finish());
        (report, Vec::new())
    }
}

/// The thin batch half: pulls a source to end-of-input (or a stop
/// boundary), feeding the session — the event loop
/// `Pipeline::run` used to own, verbatim.
pub struct Driver {
    session: AnalysisSession,
    chunk: usize,
    stop_after: Option<u64>,
}

impl Driver {
    /// A driver over `session` with the given pull chunk size and
    /// optional stop-after-events boundary.
    #[must_use]
    pub fn new(session: AnalysisSession, chunk: usize, stop_after: Option<u64>) -> Self {
        Driver {
            session,
            chunk: chunk.max(1),
            stop_after,
        }
    }

    /// Pulls the source to end-of-input (or `stop_after`), feeding
    /// batches into the session, cutting checkpoints at every
    /// `checkpoint.every` boundary, and accounting lossy parse skips to
    /// the metrics.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Source`] on a read/decode failure,
    /// [`PipelineError::Checkpoint`] when a checkpoint cannot be
    /// persisted.
    pub fn run(mut self, source: &mut dyn EventSource) -> Result<PipelineRun, PipelineError> {
        // The session's cursor follows the source: a resumed source
        // starts at the checkpoint's event count.
        self.session.set_events(source.position().state.events);
        let mut skips_seen = source.skip_ledger().len();
        let mut stopped = false;
        loop {
            let events = self.session.events();
            // Cap the batch so it never crosses a checkpoint or stop
            // boundary — cuts land on exact event counts, like the
            // per-event loop this replaces.
            let mut want = self.chunk;
            if let Some(ck) = self.session.checkpoint_policy() {
                let until = ck.every - (events % ck.every);
                want = want.min(usize::try_from(until).unwrap_or(usize::MAX));
            }
            if let Some(stop) = self.stop_after {
                let until = stop.saturating_sub(events).max(1);
                want = want.min(usize::try_from(until).unwrap_or(usize::MAX));
            }
            let batch = source.next_batch(want).map_err(PipelineError::Source)?;
            // Count lossy skips before the EOF check: trailing garbage
            // after the last event surfaces as ledger growth on the
            // final (possibly empty) pull.
            let skips = source.skip_ledger().len();
            if skips > skips_seen {
                self.session.add_parse_skipped((skips - skips_seen) as u64);
                skips_seen = skips;
            }
            if batch.is_empty() {
                break;
            }
            self.session.feed(batch);
            let events = self.session.events();
            if let Some(every) = self.session.checkpoint_policy().map(|ck| ck.every) {
                if events.is_multiple_of(every) {
                    self.session.checkpoint(&source.position())?;
                }
            }
            if self.stop_after.is_some_and(|k| events >= k) {
                stopped = true;
                break;
            }
        }
        let skipped = source.skip_ledger().to_vec();
        let events = self.session.events();
        if stopped {
            // Simulated kill: no report, no checkpoint beyond the last
            // periodic one — exactly what a real kill leaves behind.
            return Ok(PipelineRun {
                report: AnalysisReport::default(),
                failures: Vec::new(),
                skipped,
                events,
                stopped,
            });
        }
        let (report, failures) = self.session.finish();
        Ok(PipelineRun {
            report,
            failures,
            skipped,
            events,
            stopped,
        })
    }
}
