//! Property tests for [`StrInterner`] under concurrent interning —
//! the access pattern of parallel `.iotb` decode workers, which race
//! `intern` and `intern_arc` over heavily overlapping symbol sets
//! (syscall names repeat across every block).
//!
//! Invariants checked, for arbitrary symbol sets and thread counts:
//! equal strings always map to equal symbols no matter which thread
//! (or which entry point) interned them first; distinct strings map to
//! distinct symbols; every issued symbol resolves back to its string;
//! and the final table is dense — exactly one entry per distinct
//! string, indices `0..len` with no gaps.

use std::collections::HashMap;
use std::sync::Arc;

use iocov_trace::{StrInterner, Sym};
use proptest::collection::vec;
use proptest::prelude::*;

/// Small alphabet so threads collide on the same strings constantly —
/// the interesting case for the read-lock / write-lock re-check dance.
fn arb_symbol() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-f]{1,3}",
        Just("openat".to_owned()),
        Just("read".to_owned()),
        Just(String::new()),
        Just("/mnt/test/\u{fffd}".to_owned()),
    ]
}

proptest! {
    /// N threads interning overlapping symbol sets — alternating
    /// between `intern` and `intern_arc` — agree on every id, and the
    /// table ends up dense and exact.
    #[test]
    fn concurrent_interning_is_consistent(
        per_thread in vec(vec(arb_symbol(), 1..24), 2..6),
    ) {
        let interner = Arc::new(StrInterner::new());

        let handles: Vec<_> = per_thread
            .iter()
            .cloned()
            .enumerate()
            .map(|(t, symbols)| {
                let interner = Arc::clone(&interner);
                std::thread::spawn(move || {
                    symbols
                        .into_iter()
                        .enumerate()
                        .map(|(k, s)| {
                            // Exercise both entry points: decode
                            // workers use `intern_arc` for strings the
                            // reader already owns, everything else uses
                            // `intern`.
                            let sym = if (t + k) % 2 == 0 {
                                interner.intern(&s)
                            } else {
                                interner.intern_arc(&Arc::from(s.as_str()))
                            };
                            (s, sym)
                        })
                        .collect::<Vec<(String, Sym)>>()
                })
            })
            .collect();

        let mut issued: HashMap<String, Sym> = HashMap::new();
        for handle in handles {
            for (s, sym) in handle.join().unwrap() {
                // Same string → same symbol, across threads and entry
                // points; first claim wins and never changes.
                if let Some(&prev) = issued.get(&s) {
                    prop_assert_eq!(prev, sym, "string {:?} got two ids", s);
                } else {
                    issued.insert(s, sym);
                }
            }
        }

        // Every symbol resolves to exactly the string that produced it.
        for (s, sym) in &issued {
            let resolved = interner.resolve(*sym);
            prop_assert_eq!(resolved.as_deref(), Some(s.as_str()));
        }

        // Dense table: one entry per distinct string, ids 0..len with
        // no gaps or phantom entries.
        prop_assert_eq!(interner.len(), issued.len());
        let mut indices: Vec<u32> = issued.values().map(|sym| sym.index()).collect();
        indices.sort_unstable();
        let expected: Vec<u32> = (0..issued.len() as u32).collect();
        prop_assert_eq!(indices, expected);

        // The snapshot (what the `.iotb` writer serializes) agrees with
        // resolve on every slot.
        let snap = interner.snapshot();
        prop_assert_eq!(snap.len(), issued.len());
        for (idx, entry) in snap.iter().enumerate() {
            let resolved = interner.resolve(Sym::from_index(idx as u32));
            prop_assert_eq!(resolved.as_deref(), Some(entry.as_ref()));
        }
    }
}
