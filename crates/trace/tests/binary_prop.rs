//! Property tests for the `.iotb` binary codec: `jsonl → iotb → jsonl`
//! round-trips are byte-exact for arbitrary traces, and a truncated
//! binary tail recovers every whole record — the binary mirror of
//! `lossy_prop.rs`.

use std::sync::Arc;

use iocov_trace::{
    read_iotb, read_iotb_lossy, read_jsonl, write_iotb, write_iotb_indexed, write_jsonl, ArgValue,
    ErrorClass, EventSource, IotbBlockSource, ReadOptions, Trace, TraceEvent,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Edge-leaning strings: empty, high-Unicode, embedded quotes/newline
/// escapes, and near-invalid-UTF-8 lookalikes (the `\u{fffd}`
/// replacement char and lone surrogates are not representable in &str,
/// so the worst representable cases are what the codec must carry).
fn arb_string() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[a-z/._-]{1,12}",
        Just("/mnt/test/\u{fffd}\u{202e}".to_owned()),
        Just("line\nbreak\tand \"quotes\"".to_owned()),
        Just("\u{10FFFF}\u{0}".to_owned()),
    ]
}

fn arb_arg() -> impl Strategy<Value = ArgValue> {
    prop_oneof![
        any::<i64>().prop_map(ArgValue::Int),
        any::<u64>().prop_map(ArgValue::UInt),
        any::<i32>().prop_map(ArgValue::Fd),
        arb_string().prop_map(ArgValue::Path),
        arb_string().prop_map(ArgValue::Str),
        any::<u32>().prop_map(ArgValue::Flags),
        any::<u32>().prop_map(ArgValue::Mode),
        any::<u32>().prop_map(ArgValue::Whence),
        any::<u64>().prop_map(ArgValue::Ptr),
    ]
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        (
            any::<u64>(),
            prop_oneof![Just(0u64), Just(u64::MAX), any::<u64>()],
            any::<u32>(),
        ),
        (arb_string(), any::<u32>()),
        (vec(arb_arg(), 0..6), any::<i64>()),
    )
        .prop_map(
            |((seq, timestamp_ns, pid), (name, sysno), (args, retval))| TraceEvent {
                seq,
                timestamp_ns,
                pid,
                name,
                sysno,
                args,
                retval,
            },
        )
}

proptest! {
    /// jsonl → iotb → jsonl is the identity, byte-for-byte at the JSONL
    /// level (not just event equality): the binary format must not
    /// perturb anything the text format can express.
    #[test]
    fn jsonl_iotb_jsonl_roundtrip_is_byte_exact(events in vec(arb_event(), 0..30)) {
        let trace = Trace::from_events(events);
        let mut jsonl_in = Vec::new();
        write_jsonl(&mut jsonl_in, &trace).unwrap();

        let parsed = read_jsonl(&jsonl_in[..]).unwrap();
        let mut iotb = Vec::new();
        write_iotb(&mut iotb, &parsed).unwrap();
        let back = read_iotb(&iotb[..]).unwrap();
        prop_assert_eq!(&back, &trace);

        let mut jsonl_out = Vec::new();
        write_jsonl(&mut jsonl_out, &back).unwrap();
        prop_assert_eq!(jsonl_in, jsonl_out);
    }

    /// Cutting an `.iotb` stream at any byte past the string table
    /// recovers exactly the records that fit before the cut, plus at
    /// most one truncated-tail skip.
    #[test]
    fn truncated_iotb_tail_recovers_whole_records(
        events in vec(arb_event(), 1..12),
        cut_back in 1usize..64,
    ) {
        let trace = Trace::from_events(events);
        let mut bytes = Vec::new();
        write_iotb(&mut bytes, &trace).unwrap();

        // Never cut into the header/string table — that is fatal by design.
        let table_end = iotb_table_end(&bytes);
        if bytes.len() - table_end == 0 {
            return Ok(()); // empty record region, nothing to truncate
        }
        let cut = table_end.max(bytes.len().saturating_sub(cut_back));
        let read = read_iotb_lossy(&bytes[..cut], &ReadOptions::default()).unwrap();

        // Count the records that fit entirely before the cut, and
        // whether the cut lands exactly on a record boundary (a clean
        // EOF) or mid-record (a truncated tail).
        let mut whole = 0usize;
        let mut pos = table_end;
        while pos < cut {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            if pos + 4 + len <= cut {
                whole += 1;
                pos += 4 + len;
            } else {
                break;
            }
        }
        let clean_boundary = pos == cut;

        let got = read.trace.events();
        prop_assert_eq!(got, &trace.events()[..whole]);
        if clean_boundary {
            prop_assert!(read.skipped.is_empty());
        } else {
            prop_assert_eq!(read.skipped.len(), 1);
            prop_assert_eq!(read.skipped[0].class, ErrorClass::TruncatedTail);
            prop_assert_eq!(read.skipped[0].line, whole + 1);
        }
    }

    /// The block-indexed v2 container decodes to the same events as the
    /// serial path, at every block size and job count — the byte-identity
    /// guarantee the parallel source is built on.
    #[test]
    fn indexed_decode_matches_serial_at_every_job_count(
        events in vec(arb_event(), 0..40),
        block_events in 1usize..9,
    ) {
        let trace = Trace::from_events(events);
        let mut v2 = Vec::new();
        write_iotb_indexed(&mut v2, &trace, block_events).unwrap();

        // The serial cursor must read v2 containers unchanged.
        let serial = read_iotb(&v2[..]).unwrap();
        prop_assert_eq!(&serial, &trace);

        let shared = Arc::new(v2);
        for jobs in [1usize, 2, 4] {
            let mut source =
                IotbBlockSource::new(Arc::clone(&shared), ReadOptions::default(), jobs).unwrap();
            let mut decoded = Vec::new();
            loop {
                let batch = source.next_batch(7).unwrap();
                if batch.is_empty() {
                    break;
                }
                decoded.extend(batch.to_events());
            }
            prop_assert_eq!(&decoded[..], trace.events(), "jobs={}", jobs);
            prop_assert!(source.skip_ledger().is_empty());
        }
    }

    /// A corrupt length prefix mid-stream — one that claims more bytes
    /// than remain but is followed by intact records — must be
    /// classified as corruption and resynchronized past, never silently
    /// treated as end-of-file: every intact trailing record survives.
    #[test]
    fn corrupt_midstream_prefix_is_corruption_not_eof(
        events in vec(arb_event(), 2..10),
        idx_seed in 0usize..64,
    ) {
        let trace = Trace::from_events(events);
        let mut bytes = Vec::new();
        write_iotb(&mut bytes, &trace).unwrap();

        // Locate record boundaries, then forge the length prefix of a
        // non-final record to overrun EOF.
        let table_end = iotb_table_end(&bytes);
        let mut starts = Vec::new();
        let mut pos = table_end;
        while pos < bytes.len() {
            starts.push(pos);
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4 + len;
        }
        let idx = idx_seed % (starts.len() - 1);
        let forged = (1u32 << 20).to_le_bytes(); // MAX_RECORD_LEN: passes the limit check, overruns EOF
        bytes[starts[idx]..starts[idx] + 4].copy_from_slice(&forged);

        let read = read_iotb_lossy(&bytes[..], &ReadOptions::default()).unwrap();
        let got = read.trace.events();
        let n = trace.len();
        // Records before the corruption are untouched; every intact
        // record after it is recovered (resync may in principle surface
        // extra phantom records from the overwritten payload, so assert
        // prefix and suffix rather than exact equality).
        prop_assert!(got.len() >= n - 1);
        prop_assert_eq!(&got[..idx], &trace.events()[..idx]);
        prop_assert_eq!(&got[got.len() - (n - 1 - idx)..], &trace.events()[idx + 1..]);
        prop_assert_eq!(read.skipped.len(), 1);
        prop_assert_eq!(read.skipped[0].class, ErrorClass::MalformedRecord);
        prop_assert!(
            read.skipped[0].message.contains("resynchronized"),
            "{}", read.skipped[0].message
        );
    }
}

/// Byte offset just past the string-table checksum.
fn iotb_table_end(bytes: &[u8]) -> usize {
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let mut pos = 12;
    for _ in 0..count {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4 + len;
    }
    pos + 8
}
