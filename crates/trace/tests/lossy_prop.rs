//! Property tests for the lossy JSONL reader: for any interleaving of
//! valid records with corrupt lines, the recovered trace is exactly the
//! valid subsequence and every corrupt line is counted once, with the
//! right error class.

use iocov_trace::{
    read_jsonl_lossy, write_jsonl, ArgValue, ErrorClass, ReadOptions, Trace, TraceEvent,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// What one line of the generated stream holds.
#[derive(Debug, Clone)]
enum LineSpec {
    /// A well-formed serialized event the reader must keep.
    Valid(TraceEvent),
    /// A terminated line that is not a valid event record.
    Malformed(&'static str),
    /// A terminated line of invalid UTF-8.
    Garbage,
    /// An empty line the reader must skip silently.
    Blank,
}

/// Malformed-but-terminated payloads: broken JSON, tracer banners, and
/// well-formed JSON of the wrong shape.
const JUNK: [&str; 4] = [
    "{\"seq\": 3, \"name\": \"open\"",
    "#### tracer restarted ####",
    "[1, 2, 3]",
    "{\"pid\": \"not-a-number\"}",
];

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        ("[a-z]{1,6}", 3i64..10).prop_map(|(name, fd)| TraceEvent::build(
            "open",
            2,
            vec![
                ArgValue::Path(format!("/mnt/test/{name}")),
                ArgValue::Flags(0o101),
                ArgValue::Mode(0o644),
            ],
            fd,
        )),
        (3i32..10, 0u32..20).prop_map(|(fd, shift)| TraceEvent::build(
            "write",
            1,
            vec![
                ArgValue::Fd(fd),
                ArgValue::Ptr(1),
                ArgValue::UInt(1u64 << shift),
            ],
            1i64 << shift,
        )),
        (3i32..10).prop_map(|fd| TraceEvent::build("close", 3, vec![ArgValue::Fd(fd)], 0)),
    ]
}

fn arb_line() -> impl Strategy<Value = LineSpec> {
    prop_oneof![
        arb_event().prop_map(LineSpec::Valid),
        (0usize..JUNK.len()).prop_map(|i| LineSpec::Malformed(JUNK[i])),
        (0u8..1).prop_map(|_| LineSpec::Garbage),
        (0u8..1).prop_map(|_| LineSpec::Blank),
    ]
}

/// Serializes one event exactly as `write_jsonl` would (one line,
/// newline-terminated).
fn event_line(event: &TraceEvent) -> Vec<u8> {
    let mut line = Vec::new();
    write_jsonl(&mut line, &Trace::from_events(vec![event.clone()])).expect("event serializes");
    line
}

proptest! {
    #[test]
    fn lossy_reader_recovers_exactly_the_valid_subsequence(
        specs in vec(arb_line(), 0..40),
        truncate in 0u8..2,
    ) {
        let truncate = truncate == 1;
        let mut bytes: Vec<u8> = Vec::new();
        let mut expected_events: Vec<TraceEvent> = Vec::new();
        let mut expected_malformed = 0usize;
        let mut expected_garbage = 0usize;
        for spec in &specs {
            match spec {
                LineSpec::Valid(event) => {
                    bytes.extend_from_slice(&event_line(event));
                    expected_events.push(event.clone());
                }
                LineSpec::Malformed(junk) => {
                    bytes.extend_from_slice(junk.as_bytes());
                    bytes.push(b'\n');
                    expected_malformed += 1;
                }
                LineSpec::Garbage => {
                    bytes.extend_from_slice(&[0xFF, 0xFE, b'x', 0x00, b'\n']);
                    expected_garbage += 1;
                }
                LineSpec::Blank => bytes.push(b'\n'),
            }
        }
        if truncate {
            // An unterminated fragment of a record ends the stream.
            bytes.extend_from_slice(b"{\"seq\": 9, \"na");
        }

        let read = read_jsonl_lossy(&bytes[..], &ReadOptions::default()).unwrap();
        prop_assert_eq!(read.trace.events(), &expected_events[..]);
        let expected_skips = expected_malformed + expected_garbage + usize::from(truncate);
        prop_assert_eq!(read.skipped.len(), expected_skips);

        let by_class = read.skips_by_class();
        prop_assert_eq!(
            by_class.get(&ErrorClass::MalformedJson).copied().unwrap_or(0),
            expected_malformed
        );
        prop_assert_eq!(
            by_class.get(&ErrorClass::InvalidUtf8).copied().unwrap_or(0),
            expected_garbage
        );
        prop_assert_eq!(
            by_class.get(&ErrorClass::TruncatedTail).copied().unwrap_or(0),
            usize::from(truncate)
        );

        // Every skip carries a usable 1-based line number.
        let lines = read.lines;
        for skip in &read.skipped {
            prop_assert!(skip.line >= 1 && skip.line <= lines);
        }
    }

    #[test]
    fn max_errors_never_exceeded(
        specs in vec(arb_line(), 0..20),
    ) {
        let mut bytes: Vec<u8> = Vec::new();
        let mut corrupt = 0usize;
        for spec in &specs {
            match spec {
                LineSpec::Valid(event) => bytes.extend_from_slice(&event_line(event)),
                LineSpec::Malformed(junk) => {
                    bytes.extend_from_slice(junk.as_bytes());
                    bytes.push(b'\n');
                    corrupt += 1;
                }
                LineSpec::Garbage => {
                    bytes.extend_from_slice(&[0xFF, 0xFE, b'\n']);
                    corrupt += 1;
                }
                LineSpec::Blank => bytes.push(b'\n'),
            }
        }
        let options = ReadOptions { max_errors: Some(2), ..ReadOptions::default() };
        let result = read_jsonl_lossy(&bytes[..], &options);
        if corrupt <= 2 {
            prop_assert!(result.is_ok());
            prop_assert_eq!(result.unwrap().skipped.len(), corrupt);
        } else {
            prop_assert!(result.is_err());
        }
    }
}
