//! In-process syscall trace recording — the LTTng substitute.
//!
//! The IOCov paper traces file-system testers with LTTng, a low-overhead
//! kernel tracing framework, and feeds the recorded syscalls (names,
//! arguments, return values) to the IOCov analyzer. In this reproduction
//! the "kernel" is the in-memory [`iocov-vfs`] file system, so tracing is
//! in-process: the syscall layer emits one [`TraceEvent`] per call into a
//! shared [`Recorder`].
//!
//! The recorder preserves the properties of the real pipeline that matter
//! to IOCov:
//!
//! * it sees **every** syscall, including tester-internal noise aimed at
//!   paths outside the test mount point (the analyzer's trace filter must
//!   do real work);
//! * events carry raw argument values (flags words, byte counts, offsets)
//!   plus decoded path strings, exactly the information LTTng's syscall
//!   tracepoints provide;
//! * traces serialize to JSON Lines for offline analysis and diffing.
//!
//! [`iocov-vfs`]: https://docs.rs/iocov-vfs
//!
//! # Examples
//!
//! ```
//! use iocov_trace::{ArgValue, Recorder, TraceEvent};
//!
//! let recorder = Recorder::new();
//! recorder.record(TraceEvent::build(
//!     "open",
//!     2,
//!     vec![ArgValue::Path("/mnt/test/f".into()), ArgValue::Flags(0o100), ArgValue::Mode(0o644)],
//!     3,
//! ));
//! let trace = recorder.take();
//! assert_eq!(trace.len(), 1);
//! assert_eq!(trace.events()[0].name, "open");
//! ```

pub mod batch;
pub mod binary;
pub mod block;
pub mod cursor;
mod event;
pub mod intern;
pub mod lossy;
mod recorder;
pub mod retry;
mod serial;
pub mod source;

pub use batch::{ArgView, EventBatch, EventRef, EventView};
pub use binary::{
    is_iotb, read_block_index, read_iotb, read_iotb_lossy, write_iotb, write_iotb_indexed,
    IotbBlock, IotbCursor, DEFAULT_BLOCK_EVENTS, IOTB_INDEX_FOOTER_MAGIC, IOTB_MAGIC, IOTB_VERSION,
    IOTB_VERSION_INDEXED,
};
pub use block::{IotbBlockSource, RecordView};
pub use cursor::{CursorState, JsonlCursor};
pub use event::{ArgValue, TraceEvent};
pub use intern::{StrInterner, Sym};
pub use lossy::{read_jsonl_lossy, ErrorClass, ErrorPolicy, LossyRead, ReadOptions, SkippedLine};
pub use recorder::{Recorder, RecorderStats};
pub use retry::{is_transient, RetryPolicy, RetryRead};
pub use serial::{read_jsonl, write_jsonl, TraceIoError};
pub use source::{
    open_source, sniff_format, unseekable_kind, EventSource, IotbSource, JsonlSource, ReaderWrap,
    SourceError, SourceFormat, SourceOptions, SourcePos,
};

use serde::{Deserialize, Serialize};

/// An ordered collection of trace events, as produced by one recording
/// session.
///
/// `Trace` is a thin container; all coverage analysis lives in the `iocov`
/// core crate. It provides only the generic conveniences a trace transport
/// should: length, iteration, concatenation, and serialization.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Wraps a vector of events.
    #[must_use]
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        Trace { events }
    }

    /// The recorded events in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends all events of `other` to `self`.
    pub fn extend(&mut self, other: Trace) {
        self.events.extend(other.events);
    }

    /// Adds one event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Iterates over events.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Consumes the trace, yielding its events.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl IntoIterator for Trace {
    type Item = TraceEvent;
    type IntoIter = std::vec::IntoIter<TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEvent>>(iter: T) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<T: IntoIterator<Item = TraceEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str) -> TraceEvent {
        TraceEvent::build(name, 0, vec![], 0)
    }

    #[test]
    fn trace_push_len_iter() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(ev("open"));
        t.push(ev("close"));
        assert_eq!(t.len(), 2);
        let names: Vec<_> = t.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["open", "close"]);
    }

    #[test]
    fn trace_extend_concatenates_in_order() {
        let mut a = Trace::from_events(vec![ev("a")]);
        let b = Trace::from_events(vec![ev("b"), ev("c")]);
        a.extend(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.events()[2].name, "c");
    }

    #[test]
    fn trace_collect_and_into_iter() {
        let t: Trace = vec![ev("x"), ev("y")].into_iter().collect();
        let names: Vec<String> = t.into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["x", "y"]);
    }

    #[test]
    fn trace_ref_into_iter() {
        let t = Trace::from_events(vec![ev("x")]);
        let mut n = 0;
        for e in &t {
            assert_eq!(e.name, "x");
            n += 1;
        }
        assert_eq!(n, 1);
    }

    #[test]
    fn extend_trait_appends_events() {
        let mut t = Trace::new();
        Extend::extend(&mut t, vec![ev("p"), ev("q")]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.into_events().len(), 2);
    }
}
