//! Trace event and argument-value types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One decoded syscall argument, as an LTTng syscall tracepoint would
/// expose it.
///
/// The variants preserve the semantic category of the raw register value,
/// which the IOCov analyzer needs in order to partition each argument's
/// input space (paths for filtering and identifier coverage, flags/mode
/// words for bitmap coverage, counts/offsets for numeric coverage,
/// categorical selectors for categorical coverage).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArgValue {
    /// A signed integer (offsets, lengths that may be negative in ABI form).
    Int(i64),
    /// An unsigned integer (sizes, counts).
    UInt(u64),
    /// A file descriptor (including `AT_FDCWD` = -100).
    Fd(i32),
    /// A pathname string argument.
    Path(String),
    /// A non-path string argument (e.g. xattr names).
    Str(String),
    /// A flags bitmap word (e.g. `open` flags, `AT_*` flags).
    Flags(u32),
    /// A permission-bits word (`mode_t`).
    Mode(u32),
    /// A categorical selector with a fixed value set (e.g. `lseek` whence).
    Whence(u32),
    /// A userspace pointer; only its null-ness is semantically relevant.
    Ptr(u64),
}

impl ArgValue {
    /// The raw 64-bit register image of this argument, as the kernel ABI
    /// would see it (paths/strings report their length; the analyzer never
    /// uses the register image of pointer arguments).
    #[must_use]
    pub fn raw(&self) -> u64 {
        match self {
            ArgValue::Int(v) => *v as u64,
            ArgValue::UInt(v) => *v,
            ArgValue::Fd(v) => *v as i64 as u64,
            ArgValue::Flags(v) | ArgValue::Mode(v) | ArgValue::Whence(v) => u64::from(*v),
            ArgValue::Ptr(v) => *v,
            ArgValue::Path(s) | ArgValue::Str(s) => s.len() as u64,
        }
    }

    /// The path string, if this argument is a pathname.
    #[must_use]
    pub fn as_path(&self) -> Option<&str> {
        match self {
            ArgValue::Path(p) => Some(p),
            _ => None,
        }
    }

    /// The signed value, for `Int` and `Fd` arguments.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ArgValue::Int(v) => Some(*v),
            ArgValue::Fd(v) => Some(i64::from(*v)),
            _ => None,
        }
    }

    /// The unsigned value, for `UInt`, `Flags`, `Mode`, and `Whence`
    /// arguments.
    #[must_use]
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            ArgValue::UInt(v) => Some(*v),
            ArgValue::Flags(v) | ArgValue::Mode(v) | ArgValue::Whence(v) => Some(u64::from(*v)),
            _ => None,
        }
    }
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::Int(v) => write!(f, "{v}"),
            ArgValue::UInt(v) => write!(f, "{v}"),
            ArgValue::Fd(v) => write!(f, "fd:{v}"),
            ArgValue::Path(p) => write!(f, "{p:?}"),
            ArgValue::Str(s) => write!(f, "{s:?}"),
            ArgValue::Flags(v) => write!(f, "0x{v:x}"),
            ArgValue::Mode(v) => write!(f, "0o{v:o}"),
            ArgValue::Whence(v) => write!(f, "whence:{v}"),
            ArgValue::Ptr(v) => write!(f, "ptr:0x{v:x}"),
        }
    }
}

/// One traced syscall invocation.
///
/// Field order mirrors an LTTng `syscall_entry`/`syscall_exit` pair merged
/// into a single record: identity (sequence number, timestamp, pid), the
/// syscall name and ABI number, the decoded arguments in prototype order,
/// and the raw return value (`>= 0` success, `< 0` is `-errno`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Monotonic per-recorder sequence number (assigned on record).
    pub seq: u64,
    /// Logical timestamp in nanoseconds (assigned on record; monotonic).
    pub timestamp_ns: u64,
    /// Process id of the issuing (simulated) process.
    pub pid: u32,
    /// Syscall name, e.g. `"openat2"`.
    pub name: String,
    /// Syscall ABI number (x86-64 numbering where one exists).
    pub sysno: u32,
    /// Decoded arguments in prototype order.
    pub args: Vec<ArgValue>,
    /// Raw return value: `>= 0` on success, `-errno` on failure.
    pub retval: i64,
}

impl TraceEvent {
    /// Builds an event with unassigned identity fields (`seq`,
    /// `timestamp_ns`, `pid` all zero); [`Recorder::record`] fills them in.
    ///
    /// [`Recorder::record`]: crate::Recorder::record
    #[must_use]
    pub fn build(name: &str, sysno: u32, args: Vec<ArgValue>, retval: i64) -> Self {
        TraceEvent {
            seq: 0,
            timestamp_ns: 0,
            pid: 0,
            name: name.to_owned(),
            sysno,
            args,
            retval,
        }
    }

    /// Whether the call succeeded (`retval >= 0`).
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.retval >= 0
    }

    /// The positive errno number if the call failed.
    #[must_use]
    pub fn errno(&self) -> Option<u32> {
        if self.retval < 0 {
            u32::try_from(-self.retval).ok()
        } else {
            None
        }
    }

    /// Iterates over all pathname arguments of the event.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.args.iter().filter_map(ArgValue::as_path)
    }

    /// The first pathname argument, if any. Most file-system syscalls have
    /// at most one; `openat`-style calls put it second after the dirfd.
    #[must_use]
    pub fn primary_path(&self) -> Option<&str> {
        self.paths().next()
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}(", self.seq, self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ") = {}", self.retval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_raw_images() {
        assert_eq!(ArgValue::Int(-1).raw(), u64::MAX);
        assert_eq!(ArgValue::UInt(7).raw(), 7);
        assert_eq!(ArgValue::Fd(-100).raw(), (-100i64) as u64);
        assert_eq!(ArgValue::Flags(0x41).raw(), 0x41);
        assert_eq!(ArgValue::Mode(0o755).raw(), 0o755);
        assert_eq!(ArgValue::Whence(2).raw(), 2);
        assert_eq!(ArgValue::Ptr(0).raw(), 0);
        assert_eq!(ArgValue::Path("/ab".into()).raw(), 3);
    }

    #[test]
    fn arg_accessors_are_typed() {
        assert_eq!(ArgValue::Path("/x".into()).as_path(), Some("/x"));
        assert_eq!(ArgValue::Str("user.k".into()).as_path(), None);
        assert_eq!(ArgValue::Int(-5).as_int(), Some(-5));
        assert_eq!(ArgValue::Fd(3).as_int(), Some(3));
        assert_eq!(ArgValue::UInt(9).as_int(), None);
        assert_eq!(ArgValue::UInt(9).as_uint(), Some(9));
        assert_eq!(ArgValue::Flags(2).as_uint(), Some(2));
        assert_eq!(ArgValue::Int(1).as_uint(), None);
    }

    #[test]
    fn event_success_and_errno() {
        let ok = TraceEvent::build("read", 0, vec![], 42);
        assert!(ok.is_success());
        assert_eq!(ok.errno(), None);
        let err = TraceEvent::build("open", 2, vec![], -2);
        assert!(!err.is_success());
        assert_eq!(err.errno(), Some(2));
    }

    #[test]
    fn event_paths_iteration() {
        let e = TraceEvent::build(
            "openat",
            257,
            vec![
                ArgValue::Fd(-100),
                ArgValue::Path("/mnt/test/a".into()),
                ArgValue::Flags(0),
            ],
            3,
        );
        assert_eq!(e.primary_path(), Some("/mnt/test/a"));
        assert_eq!(e.paths().count(), 1);
    }

    #[test]
    fn event_display_is_strace_like() {
        let e = TraceEvent::build(
            "open",
            2,
            vec![ArgValue::Path("/f".into()), ArgValue::Flags(0x41)],
            -2,
        );
        let s = e.to_string();
        assert!(s.contains("open("));
        assert!(s.contains("\"/f\""));
        assert!(s.contains("0x41"));
        assert!(s.ends_with("= -2"));
    }

    #[test]
    fn arg_display_forms() {
        assert_eq!(ArgValue::Fd(3).to_string(), "fd:3");
        assert_eq!(ArgValue::Mode(0o644).to_string(), "0o644");
        assert_eq!(ArgValue::Whence(1).to_string(), "whence:1");
        assert_eq!(ArgValue::Ptr(16).to_string(), "ptr:0x10");
        assert_eq!(ArgValue::Int(-3).to_string(), "-3");
        assert_eq!(ArgValue::UInt(3).to_string(), "3");
        assert_eq!(ArgValue::Str("k".into()).to_string(), "\"k\"");
    }

    #[test]
    fn event_serde_roundtrip() {
        let e = TraceEvent::build(
            "write",
            1,
            vec![ArgValue::Fd(4), ArgValue::Ptr(1), ArgValue::UInt(4096)],
            4096,
        );
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
