//! Fault-tolerant JSONL trace ingestion.
//!
//! Real tracers emit garbage under load: a crashed tracer truncates its
//! final line mid-record, log shippers re-terminate lines with CRLF,
//! editors prepend a UTF-8 BOM, and buffer tearing interleaves raw bytes
//! into otherwise valid JSON. The strict [`read_jsonl`](crate::read_jsonl)
//! aborts an entire multi-gigabyte ingest on the first such line;
//! [`read_jsonl_lossy`] instead recovers every parseable event and
//! records one [`SkippedLine`] — physical line number, [`ErrorClass`],
//! and parser message — per line it had to drop, so the pipeline's
//! metrics layer can report exactly how lossy the ingest was.
//!
//! ```
//! use iocov_trace::{read_jsonl_lossy, ReadOptions};
//!
//! let bytes = b"{\"seq\":0,\"timestamp_ns\":0,\"pid\":1,\"name\":\"close\",\
//!               \"sysno\":3,\"args\":[{\"Fd\":3}],\"retval\":0}\n\
//!               this line is garbage\n";
//! let read = read_jsonl_lossy(&bytes[..], &ReadOptions::default()).unwrap();
//! assert_eq!(read.trace.len(), 1);
//! assert_eq!(read.skipped.len(), 1);
//! assert_eq!(read.skipped[0].line, 2);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::io::Read;

use serde::{Deserialize, Serialize};

use crate::cursor::{CursorState, JsonlCursor};
use crate::serial::TraceIoError;
use crate::Trace;

/// What to do when a line fails to parse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ErrorPolicy {
    /// Record a [`SkippedLine`] and continue (the lossy default).
    #[default]
    Skip,
    /// Abort with the same error the strict reader would return.
    Abort,
}

/// Options controlling [`read_jsonl_lossy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadOptions {
    /// Maximum number of skipped lines tolerated before the read aborts
    /// with [`TraceIoError::TooManyErrors`]. `None` (the default) never
    /// gives up.
    pub max_errors: Option<usize>,
    /// Per-line error policy.
    pub on_error: ErrorPolicy,
}

/// Why a line was skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ErrorClass {
    /// The line is not valid JSON (or not a valid event).
    MalformedJson,
    /// The final line was cut off mid-record (no trailing newline and
    /// unparseable — the signature of a tracer killed mid-write).
    TruncatedTail,
    /// The line is not valid UTF-8.
    InvalidUtf8,
    /// An `.iotb` binary record failed to decode (bad tag, out-of-range
    /// symbol, wrong payload size). Only produced by
    /// [`read_iotb_lossy`](crate::read_iotb_lossy).
    MalformedRecord,
}

impl ErrorClass {
    /// Stable kebab-case name, used in reports and metrics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorClass::MalformedJson => "malformed-json",
            ErrorClass::TruncatedTail => "truncated-tail",
            ErrorClass::InvalidUtf8 => "invalid-utf8",
            ErrorClass::MalformedRecord => "malformed-record",
        }
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One line the lossy reader had to drop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkippedLine {
    /// 1-based physical line number (blank lines count).
    pub line: usize,
    /// Error classification.
    pub class: ErrorClass,
    /// The underlying parser/decoder message.
    pub message: String,
}

impl fmt::Display for SkippedLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}: {}", self.line, self.class, self.message)
    }
}

/// The result of a lossy read: the recovered trace plus a full account
/// of everything that was dropped or normalized.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LossyRead {
    /// Every event that parsed, in input order.
    pub trace: Trace,
    /// Every line that was dropped, in input order.
    pub skipped: Vec<SkippedLine>,
    /// Physical lines scanned (blank lines included).
    pub lines: usize,
    /// Whether a UTF-8 BOM was stripped from the first line.
    pub bom_stripped: bool,
    /// Lines whose CRLF terminator was normalized.
    pub crlf_lines: usize,
}

impl LossyRead {
    /// Assembles a lossy-read result from a drained cursor's final
    /// state. This is the single source of truth for line/skip
    /// accounting: the batch readers ([`read_jsonl_lossy`],
    /// [`read_iotb_lossy`](crate::read_iotb_lossy)) are thin drains over
    /// the cursors ([`JsonlCursor`],
    /// [`IotbCursor`](crate::IotbCursor)), so batch and cursor ledgers
    /// cannot drift apart.
    #[must_use]
    pub fn from_cursor(trace: Trace, state: CursorState) -> Self {
        LossyRead {
            trace,
            skipped: state.skipped,
            lines: state.lines,
            bom_stripped: state.bom_stripped,
            crlf_lines: state.crlf_lines,
        }
    }

    /// Skip counts grouped by error class, in class order.
    #[must_use]
    pub fn skips_by_class(&self) -> BTreeMap<ErrorClass, usize> {
        let mut map = BTreeMap::new();
        for skip in &self.skipped {
            *map.entry(skip.class).or_insert(0) += 1;
        }
        map
    }
}

/// Reads a JSONL trace, recovering from malformed lines instead of
/// aborting. See the [module docs](self) for the failure model.
///
/// Blank lines are skipped silently (they are not errors); a UTF-8 BOM
/// and CRLF line endings are normalized and reported via
/// [`LossyRead::bom_stripped`] / [`LossyRead::crlf_lines`] rather than
/// counted as skips.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on genuine read failure,
/// [`TraceIoError::TooManyErrors`] once more than
/// [`ReadOptions::max_errors`] lines have been skipped, and — only under
/// [`ErrorPolicy::Abort`] — the strict reader's per-line errors.
pub fn read_jsonl_lossy<R: Read>(
    reader: R,
    options: &ReadOptions,
) -> Result<LossyRead, TraceIoError> {
    let mut cursor = JsonlCursor::new(reader, *options);
    let mut trace = Trace::new();
    while let Some(event) = cursor.next_event()? {
        trace.push(event);
    }
    Ok(LossyRead::from_cursor(trace, cursor.into_state()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArgValue, TraceEvent};
    use crate::write_jsonl;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::build(
                "open",
                2,
                vec![ArgValue::Path("/mnt/test/a".into()), ArgValue::Flags(0o101)],
                3,
            ),
            TraceEvent::build("write", 1, vec![ArgValue::Fd(3), ArgValue::UInt(64)], 64),
            TraceEvent::build("close", 3, vec![ArgValue::Fd(3)], 0),
        ]
    }

    fn jsonl(events: &[TraceEvent]) -> Vec<String> {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &Trace::from_events(events.to_vec())).unwrap();
        String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn clean_input_matches_strict_reader() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &Trace::from_events(events.clone())).unwrap();
        let read = read_jsonl_lossy(&buf[..], &ReadOptions::default()).unwrap();
        assert_eq!(read.trace.events(), &events[..]);
        assert!(read.skipped.is_empty());
        assert_eq!(read.lines, 3);
        assert!(!read.bom_stripped);
        assert_eq!(read.crlf_lines, 0);
    }

    #[test]
    fn malformed_lines_are_skipped_with_position_and_class() {
        let lines = jsonl(&sample_events());
        let text = format!(
            "{}\nnot json at all\n{}\n{{\"seq\": 1,\n{}\n",
            lines[0], lines[1], lines[2]
        );
        let read = read_jsonl_lossy(text.as_bytes(), &ReadOptions::default()).unwrap();
        assert_eq!(read.trace.len(), 3, "all valid events recovered");
        assert_eq!(read.skipped.len(), 2);
        assert_eq!(read.skipped[0].line, 2);
        assert_eq!(read.skipped[0].class, ErrorClass::MalformedJson);
        assert_eq!(read.skipped[1].line, 4);
        assert_eq!(read.skipped[1].class, ErrorClass::MalformedJson);
    }

    #[test]
    fn truncated_final_line_is_classified_as_truncated_tail() {
        let lines = jsonl(&sample_events());
        let truncated = &lines[2][..lines[2].len() / 2];
        let text = format!("{}\n{}\n{truncated}", lines[0], lines[1]);
        let read = read_jsonl_lossy(text.as_bytes(), &ReadOptions::default()).unwrap();
        assert_eq!(read.trace.len(), 2);
        assert_eq!(read.skipped.len(), 1);
        assert_eq!(read.skipped[0].class, ErrorClass::TruncatedTail);
        assert_eq!(read.skipped[0].line, 3);
    }

    #[test]
    fn bom_and_crlf_are_normalized_not_skipped() {
        let lines = jsonl(&sample_events());
        let text = format!("\u{feff}{}\r\n{}\r\n{}\n", lines[0], lines[1], lines[2]);
        let read = read_jsonl_lossy(text.as_bytes(), &ReadOptions::default()).unwrap();
        assert_eq!(read.trace.len(), 3);
        assert!(read.skipped.is_empty());
        assert!(read.bom_stripped);
        assert_eq!(read.crlf_lines, 2);
    }

    #[test]
    fn invalid_utf8_lines_are_skipped() {
        let lines = jsonl(&sample_events());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(lines[0].as_bytes());
        bytes.extend_from_slice(b"\n\xff\xfe torn buffer\n");
        bytes.extend_from_slice(lines[1].as_bytes());
        bytes.push(b'\n');
        let read = read_jsonl_lossy(&bytes[..], &ReadOptions::default()).unwrap();
        assert_eq!(read.trace.len(), 2);
        assert_eq!(read.skipped.len(), 1);
        assert_eq!(read.skipped[0].class, ErrorClass::InvalidUtf8);
    }

    #[test]
    fn all_corruption_classes_in_one_stream() {
        // The acceptance fixture shape: BOM + CRLF + malformed JSON +
        // truncated tail in a single input, zero events lost.
        let lines = jsonl(&sample_events());
        let truncated = &lines[0][..20];
        let text = format!(
            "\u{feff}{}\r\n\nbroken {{line\n{}\n{truncated}",
            lines[0], lines[1]
        );
        let read = read_jsonl_lossy(text.as_bytes(), &ReadOptions::default()).unwrap();
        assert_eq!(read.trace.len(), 2);
        let by_class = read.skips_by_class();
        assert_eq!(by_class[&ErrorClass::MalformedJson], 1);
        assert_eq!(by_class[&ErrorClass::TruncatedTail], 1);
        assert!(read.bom_stripped);
        assert_eq!(read.crlf_lines, 1);
    }

    #[test]
    fn max_errors_aborts_after_the_limit() {
        let options = ReadOptions {
            max_errors: Some(1),
            ..ReadOptions::default()
        };
        let text = "junk one\njunk two\njunk three\n";
        let err = read_jsonl_lossy(text.as_bytes(), &options).unwrap_err();
        match err {
            TraceIoError::TooManyErrors { errors, max } => {
                assert_eq!(errors, 2);
                assert_eq!(max, 1);
            }
            other => panic!("expected TooManyErrors, got {other}"),
        }
        // At the limit exactly: still fine.
        let one = read_jsonl_lossy(&b"junk\n"[..], &options).unwrap();
        assert_eq!(one.skipped.len(), 1);
    }

    #[test]
    fn abort_policy_behaves_like_strict_reader() {
        let options = ReadOptions {
            on_error: ErrorPolicy::Abort,
            ..ReadOptions::default()
        };
        let err = read_jsonl_lossy(&b"\nbad line\n"[..], &options).unwrap_err();
        match err {
            TraceIoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn skipped_line_display_and_serde() {
        let skip = SkippedLine {
            line: 9,
            class: ErrorClass::TruncatedTail,
            message: "unexpected end".into(),
        };
        assert_eq!(skip.to_string(), "line 9: truncated-tail: unexpected end");
        let json = serde_json::to_string(&skip).unwrap();
        let back: SkippedLine = serde_json::from_str(&json).unwrap();
        assert_eq!(skip, back);
    }

    #[test]
    fn batch_and_cursor_ledgers_agree_with_blank_lines() {
        // Regression for skip accounting drift: the batch reader and the
        // cursor must report identical 1-based line numbers (blank lines
        // count) for every skip. Blanks interleave skips and events here
        // so an off-by-one in either path would show.
        let lines = jsonl(&sample_events());
        let text = format!(
            "\n{}\n\n\njunk A\n{}\n\njunk B\n\n{}\n",
            lines[0], lines[1], lines[2]
        );
        let batch = read_jsonl_lossy(text.as_bytes(), &ReadOptions::default()).unwrap();
        let mut cursor = JsonlCursor::new(text.as_bytes(), ReadOptions::default());
        let mut events = Vec::new();
        while let Some(e) = cursor.next_event().unwrap() {
            events.push(e);
        }
        let state = cursor.into_state();
        assert_eq!(events, batch.trace.events());
        assert_eq!(state.skipped, batch.skipped);
        assert_eq!(state.lines, batch.lines);
        assert_eq!(
            batch.skipped.iter().map(|s| s.line).collect::<Vec<_>>(),
            [5, 8]
        );
        assert_eq!(batch.lines, 10);
    }

    #[test]
    fn empty_input_is_a_clean_lossy_read() {
        let read = read_jsonl_lossy(&b""[..], &ReadOptions::default()).unwrap();
        assert!(read.trace.is_empty());
        assert!(read.skipped.is_empty());
        assert_eq!(read.lines, 0);
    }
}
