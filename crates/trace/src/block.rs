//! Parallel decoding of block-indexed `.iotb` v2 containers.
//!
//! The serial [`IotbCursor`](crate::IotbCursor) is a single stream of
//! length-prefixed records: correct, resumable, and the decode
//! bottleneck of every multi-worker analysis run, because one reader
//! thread feeds every analyzer shard. A v2 container's block index
//! (see the [format docs](crate::binary)) removes that serialization
//! point: each block is an independently checksummed run of whole
//! records at a known byte offset, so N workers can decode N disjoint
//! block ranges of one shared in-memory buffer at once.
//!
//! ```text
//!   Arc<[u8]> (whole container, read once)
//!        │ block index: offset/len/events/checksum per block
//!   ┌────┴─────┬──────────┐
//!   worker 0   worker 1   worker …    claim blocks via atomic counter,
//!   │          │          │           gated to a bounded decode-ahead
//!   └───(id, DecodedBlock)┘           window past the consumer
//!              │ mpsc
//!   IotbBlockSource::next_batch       reassembles blocks in file
//!              │                      order (BTreeMap reorder buffer)
//!          EventSource consumer       → events in exact serial order
//! ```
//!
//! Because events are re-sequenced into file order before they leave
//! [`next_batch`](crate::EventSource::next_batch), every downstream
//! consumer — serial executor, pid-sharded pool, checkpoint writer —
//! sees exactly the stream the serial cursor would have produced, and
//! serialized reports stay byte-identical by construction.
//!
//! Workers decode records straight from the shared buffer into a
//! per-block columnar [`EventBatch`] — no per-record payload copy
//! (unlike the serial reader's `vec![0u8; len]` per record) and no
//! per-record heap allocations: names intern into the batch table by
//! `Arc` identity and path bytes land in the batch arena. The consumer
//! re-sequences rows into its output batch with
//! [`EventBatch::append_row`], so no owned [`TraceEvent`] is ever
//! materialized on this path.
//!
//! There is no `mmap` here: the container is read into one
//! `Arc<Vec<u8>>` up front. That is a deliberate dependency-free
//! stand-in with the same sharing semantics (one immutable buffer,
//! many readers); the index layout would serve a real mapping
//! identically.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::batch::EventBatch;
use crate::binary::{
    binary_error, decode_record, decode_record_into, fnv1a, read_block_index, read_table,
    IotbBlock, FNV_OFFSET, MAX_RECORD_LEN,
};
use crate::cursor::CursorState;
use crate::event::TraceEvent;
use crate::lossy::{ErrorClass, ErrorPolicy, ReadOptions, SkippedLine};
use crate::serial::TraceIoError;
use crate::source::{EventSource, SourceFormat, SourcePos};

/// How many blocks past the consumer's position workers may decode,
/// per worker: bounds reorder-buffer memory while keeping every worker
/// busy.
const DECODE_AHEAD_PER_WORKER: usize = 2;

/// A zero-copy view of one encoded record, borrowing the container
/// buffer. The fixed-width head fields decode on demand straight from
/// the slice; an owned [`TraceEvent`] (with interned strings resolved)
/// is materialized only by [`to_event`](Self::to_event), at yield
/// time.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    payload: &'a [u8],
}

impl<'a> RecordView<'a> {
    /// A view over one record's payload (the bytes after its length
    /// prefix). Validates only that the fixed-width head is present;
    /// arguments are validated by [`to_event`](Self::to_event).
    ///
    /// # Errors
    ///
    /// Returns a description of the structural problem.
    pub fn parse(payload: &'a [u8]) -> Result<Self, String> {
        if payload.len() < 40 {
            return Err(format!(
                "record payload too short: {} of 40 head bytes",
                payload.len()
            ));
        }
        Ok(RecordView { payload })
    }

    fn u64_at(&self, at: usize) -> u64 {
        u64::from_le_bytes(self.payload[at..at + 8].try_into().expect("8 bytes"))
    }

    fn u32_at(&self, at: usize) -> u32 {
        u32::from_le_bytes(self.payload[at..at + 4].try_into().expect("4 bytes"))
    }

    /// The record's sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.u64_at(0)
    }

    /// The record's timestamp in nanoseconds.
    #[must_use]
    pub fn timestamp_ns(&self) -> u64 {
        self.u64_at(8)
    }

    /// The recording process id.
    #[must_use]
    pub fn pid(&self) -> u32 {
        self.u32_at(16)
    }

    /// The syscall-name symbol (an index into the string table).
    #[must_use]
    pub fn name_sym(&self) -> u32 {
        self.u32_at(20)
    }

    /// The syscall number.
    #[must_use]
    pub fn sysno(&self) -> u32 {
        self.u32_at(24)
    }

    /// The syscall return value.
    #[must_use]
    pub fn retval(&self) -> i64 {
        i64::from_le_bytes(self.payload[28..36].try_into().expect("8 bytes"))
    }

    /// Materializes the owned event, resolving symbols against `table`
    /// and validating the argument list.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn to_event(&self, table: &[Arc<str>]) -> Result<TraceEvent, String> {
        decode_record(self.payload, table)
    }
}

/// A fully decoded block: one columnar batch of its records in file
/// order, plus per-record bookkeeping the consumer needs for exact
/// checkpoints — the absolute end offset of each record's frame and its
/// 1-based ordinal in the whole container (parallel to the batch rows).
struct DecodedBlock {
    batch: EventBatch,
    /// `(end_offset, ordinal)` for each batch row, in row order.
    meta: Vec<(u64, usize)>,
    skips: Vec<SkippedLine>,
    /// Absolute offset just past the block.
    end_offset: u64,
    /// Record ordinal after the block (for blocks that yield nothing).
    end_ordinal: usize,
}

/// The in-order block currently being consumed, with a row cursor.
struct CurrentBlock {
    batch: EventBatch,
    meta: Vec<(u64, usize)>,
    row: usize,
}

/// What a worker delivers for one block id.
type BlockResult = Result<DecodedBlock, TraceIoError>;

/// Gates workers to a bounded decode-ahead window past the consumer.
struct Gate {
    next_needed: Mutex<usize>,
    cv: Condvar,
    window: usize,
    shutdown: AtomicBool,
}

impl Gate {
    fn new(window: usize) -> Self {
        Gate {
            next_needed: Mutex::new(0),
            cv: Condvar::new(),
            window: window.max(1),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Blocks until block `id` is within the window (or shutdown);
    /// returns whether decoding should proceed.
    fn admit(&self, id: usize) -> bool {
        let mut next = self
            .next_needed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while id >= *next + self.window {
            if self.shutdown.load(Ordering::Acquire) {
                return false;
            }
            next = self
                .cv
                .wait(next)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        !self.shutdown.load(Ordering::Acquire)
    }

    fn advance(&self, next_needed: usize) {
        let mut next = self
            .next_needed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *next = (*next).max(next_needed);
        drop(next);
        self.cv.notify_all();
    }

    fn shut_down(&self) {
        self.shutdown.store(true, Ordering::Release);
        drop(
            self.next_needed
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        self.cv.notify_all();
    }
}

/// Parallel [`EventSource`] over a block-indexed v2 container held in
/// one shared buffer. Yields events in exact file order regardless of
/// worker count, so reports are byte-identical to the serial path; see
/// the [module docs](self) for the data flow.
pub struct IotbBlockSource {
    options: ReadOptions,
    state: CursorState,
    blocks: usize,
    next_block: usize,
    current: Option<CurrentBlock>,
    reorder: BTreeMap<usize, BlockResult>,
    rx: Receiver<(usize, BlockResult)>,
    gate: Arc<Gate>,
    workers: Vec<JoinHandle<()>>,
    /// Records whose end offset is at or below this were consumed
    /// before the checkpoint being resumed; drop them silently.
    resume_floor: u64,
    /// Skips with ordinals at or below this are already in the
    /// resumed ledger.
    skip_floor: usize,
    failed: bool,
}

impl IotbBlockSource {
    /// A source over a fresh container, decoding with `jobs` worker
    /// threads.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Binary`] when the container is not a
    /// valid v2 indexed file (including v1 files — callers route those
    /// to the serial cursor) or its header/table/index is corrupt.
    pub fn new(
        bytes: Arc<Vec<u8>>,
        options: ReadOptions,
        jobs: usize,
    ) -> Result<Self, TraceIoError> {
        Self::build(bytes, options, jobs, None)
    }

    /// Resumes from a checkpointed `state`, continuing exactly where
    /// the serial or parallel run left off: decoding restarts at the
    /// block containing the offset, and records already consumed are
    /// dropped before yielding.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Binary`] for container corruption or a
    /// resume offset outside the record region.
    pub fn resume(
        bytes: Arc<Vec<u8>>,
        options: ReadOptions,
        state: CursorState,
        jobs: usize,
    ) -> Result<Self, TraceIoError> {
        Self::build(bytes, options, jobs, Some(state))
    }

    fn build(
        bytes: Arc<Vec<u8>>,
        options: ReadOptions,
        jobs: usize,
        resume: Option<CursorState>,
    ) -> Result<Self, TraceIoError> {
        let blocks = read_block_index(&bytes)?
            .ok_or_else(|| binary_error("container has no block index (v1)"))?;
        let (table, table_end, _version) = read_table(&mut &bytes[..])?;
        let table: Arc<Vec<Arc<str>>> = Arc::new(table);

        // Record ordinals are global; precompute each block's base from
        // the index so workers can label skips without seeing
        // neighboring blocks.
        let mut bases = Vec::with_capacity(blocks.len());
        let mut base = 0usize;
        for block in &blocks {
            bases.push(base);
            base += usize::try_from(block.events).unwrap_or(usize::MAX);
        }

        let (state, start_block, resume_floor, skip_floor) = match resume {
            None => (
                CursorState {
                    byte_offset: table_end,
                    ..CursorState::default()
                },
                0,
                0,
                0,
            ),
            Some(state) => {
                let end = blocks.last().map_or(table_end, |b| b.offset + b.byte_len);
                if state.byte_offset < table_end || state.byte_offset > end {
                    return Err(binary_error(format!(
                        "resume offset {} is outside the record region ({table_end}..={end})",
                        state.byte_offset
                    )));
                }
                let start = blocks.partition_point(|b| b.offset + b.byte_len <= state.byte_offset);
                let floor = state.byte_offset;
                let lines = state.lines;
                (state, start, floor, lines)
            }
        };

        let blocks = Arc::new(blocks);
        let bases = Arc::new(bases);
        let jobs = jobs.max(1).min(blocks.len().max(1));
        let gate = Arc::new(Gate::new(jobs * DECODE_AHEAD_PER_WORKER));
        gate.advance(start_block);
        let counter = Arc::new(AtomicUsize::new(start_block));
        let (tx, rx) = channel();
        let strict = options.on_error == ErrorPolicy::Abort;
        let mut workers = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let bytes = Arc::clone(&bytes);
            let table = Arc::clone(&table);
            let blocks = Arc::clone(&blocks);
            let bases = Arc::clone(&bases);
            let gate = Arc::clone(&gate);
            let counter = Arc::clone(&counter);
            let tx: Sender<(usize, BlockResult)> = tx.clone();
            workers.push(std::thread::spawn(move || loop {
                let id = counter.fetch_add(1, Ordering::SeqCst);
                if id >= blocks.len() || !gate.admit(id) {
                    break;
                }
                let result = decode_block(&bytes, &blocks[id], &table, bases[id], strict);
                if tx.send((id, result)).is_err() {
                    break;
                }
            }));
        }

        Ok(IotbBlockSource {
            options,
            state,
            blocks: blocks.len(),
            next_block: start_block,
            current: None,
            reorder: BTreeMap::new(),
            rx,
            gate,
            workers,
            resume_floor,
            skip_floor,
            failed: false,
        })
    }

    /// The next in-order block, from the reorder buffer or the channel.
    fn take_block(&mut self, id: usize) -> Result<DecodedBlock, TraceIoError> {
        loop {
            if let Some(result) = self.reorder.remove(&id) {
                return result;
            }
            match self.rx.recv() {
                Ok((got, result)) if got == id => return result,
                Ok((got, result)) => {
                    self.reorder.insert(got, result);
                }
                Err(_) => {
                    return Err(binary_error(
                        "block decode worker exited before delivering its block",
                    ))
                }
            }
        }
    }

    /// Copies the next in-order record into `out`; returns whether one
    /// was appended (`false` means end of stream).
    fn next_into(&mut self, out: &mut EventBatch) -> Result<bool, TraceIoError> {
        loop {
            if let Some(cur) = &mut self.current {
                if cur.row < cur.meta.len() {
                    let row = cur.row;
                    cur.row += 1;
                    let (end_offset, ordinal) = cur.meta[row];
                    if end_offset <= self.resume_floor {
                        continue; // consumed before the resumed checkpoint
                    }
                    self.state.byte_offset = end_offset;
                    self.state.lines = ordinal;
                    self.state.events += 1;
                    out.append_row(&cur.batch, row);
                    return Ok(true);
                }
                self.current = None;
            }
            if self.next_block >= self.blocks {
                return Ok(false);
            }
            let id = self.next_block;
            let block = self.take_block(id)?;
            self.next_block = id + 1;
            self.gate.advance(self.next_block);
            for skip in block.skips {
                if skip.line <= self.skip_floor {
                    continue; // already in the resumed ledger
                }
                self.state.skipped.push(skip);
                if let Some(max) = self.options.max_errors {
                    if self.state.skipped.len() > max {
                        return Err(TraceIoError::TooManyErrors {
                            errors: self.state.skipped.len(),
                            max,
                        });
                    }
                }
            }
            if block.batch.is_empty() {
                // Nothing to yield from this block (skipped whole, or
                // fully below the resume floor): account for it now so
                // checkpoints do not point backwards.
                self.state.byte_offset = self.state.byte_offset.max(block.end_offset);
                self.state.lines = self.state.lines.max(block.end_ordinal);
            }
            self.current = Some(CurrentBlock {
                batch: block.batch,
                meta: block.meta,
                row: 0,
            });
        }
    }
}

impl EventSource for IotbBlockSource {
    fn next_batch(&mut self, max: usize) -> Result<EventBatch, TraceIoError> {
        if self.failed {
            return Ok(EventBatch::new());
        }
        let mut batch = EventBatch::with_capacity(max.min(1024));
        while batch.len() < max {
            match self.next_into(&mut batch) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    self.failed = true;
                    return Err(e);
                }
            }
        }
        Ok(batch)
    }

    fn position(&self) -> SourcePos {
        SourcePos {
            format: SourceFormat::Iotb,
            state: self.state.clone(),
        }
    }

    fn skip_ledger(&self) -> &[SkippedLine] {
        &self.state.skipped
    }
}

impl Drop for IotbBlockSource {
    fn drop(&mut self) {
        self.gate.shut_down();
        // Drain so no worker is ever blocked on a full channel (the
        // channel is unbounded, but be explicit about ordering): then
        // join to avoid leaking threads past the source's lifetime.
        while self.rx.try_recv().is_ok() {}
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Decodes one block against its index entry: verifies the block
/// checksum, then walks the frames as [`RecordView`]s over the shared
/// buffer.
///
/// Under [`ErrorPolicy::Abort`] any mismatch is an error. In lossy
/// mode a failed block checksum skips the whole block with one ledger
/// entry (the framing inside cannot be trusted), and a record that
/// fails to decode despite a good checksum — which a correct writer
/// never produces — is skipped individually.
fn decode_block(
    data: &[u8],
    block: &IotbBlock,
    table: &[Arc<str>],
    base_ordinal: usize,
    strict: bool,
) -> Result<DecodedBlock, TraceIoError> {
    let start = usize::try_from(block.offset).map_err(|_| binary_error("block offset overflow"))?;
    let len = usize::try_from(block.byte_len).map_err(|_| binary_error("block length overflow"))?;
    let end = start
        .checked_add(len)
        .filter(|&end| end <= data.len())
        .ok_or_else(|| binary_error("block extends past the container"))?;
    let slice = &data[start..end];
    let end_offset = end as u64;
    if fnv1a(slice, FNV_OFFSET) != block.checksum {
        let message = format!(
            "block checksum mismatch: {len} bytes at offset {} skipped",
            block.offset
        );
        if strict {
            return Err(binary_error(message));
        }
        return Ok(DecodedBlock {
            batch: EventBatch::new(),
            meta: Vec::new(),
            skips: vec![SkippedLine {
                line: base_ordinal + 1,
                class: ErrorClass::MalformedRecord,
                message,
            }],
            end_offset,
            end_ordinal: base_ordinal + 1,
        });
    }

    let events = usize::try_from(block.events).unwrap_or(0);
    let mut batch = EventBatch::with_capacity(events);
    let mut meta = Vec::with_capacity(events);
    let mut skips = Vec::new();
    let mut pos = 0usize;
    let mut ordinal = base_ordinal;
    while pos < slice.len() {
        ordinal += 1;
        if slice.len() - pos < 4 {
            return frame_corrupt(block, ordinal, strict, batch, meta, skips, end_offset);
        }
        let rec_len = u32::from_le_bytes(slice[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if rec_len > MAX_RECORD_LEN || slice.len() - pos - 4 < rec_len {
            return frame_corrupt(block, ordinal, strict, batch, meta, skips, end_offset);
        }
        let payload = &slice[pos + 4..pos + 4 + rec_len];
        pos += 4 + rec_len;
        // Decode straight into the block's columnar batch — no owned
        // TraceEvent is ever materialized on this path.
        match decode_record_into(payload, table, &mut batch) {
            Ok(()) => meta.push((block.offset + pos as u64, ordinal)),
            Err(detail) => {
                if strict {
                    return Err(TraceIoError::Record {
                        record: ordinal,
                        detail,
                    });
                }
                skips.push(SkippedLine {
                    line: ordinal,
                    class: ErrorClass::MalformedRecord,
                    message: detail,
                });
            }
        }
    }
    Ok(DecodedBlock {
        batch,
        meta,
        skips,
        end_offset,
        end_ordinal: ordinal,
    })
}

/// A framing failure inside a checksum-verified block: the index and
/// data disagree, so the rest of the block cannot be trusted.
#[allow(clippy::too_many_arguments)]
fn frame_corrupt(
    block: &IotbBlock,
    ordinal: usize,
    strict: bool,
    batch: EventBatch,
    meta: Vec<(u64, usize)>,
    mut skips: Vec<SkippedLine>,
    end_offset: u64,
) -> Result<DecodedBlock, TraceIoError> {
    let message = format!(
        "record framing corrupt inside checksummed block at offset {}",
        block.offset
    );
    if strict {
        return Err(binary_error(message));
    }
    skips.push(SkippedLine {
        line: ordinal,
        class: ErrorClass::MalformedRecord,
        message,
    });
    Ok(DecodedBlock {
        batch,
        meta,
        skips,
        end_offset,
        end_ordinal: ordinal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArgValue;
    use crate::{read_iotb_lossy, write_iotb_indexed, Trace};

    fn sample_trace(events: u32) -> Trace {
        Trace::from_events(
            (0..events)
                .map(|i| {
                    TraceEvent::build(
                        if i % 2 == 0 { "open" } else { "write" },
                        u32::from(i % 2 == 0),
                        vec![
                            ArgValue::Path(format!("/mnt/test/f{}", i % 7)),
                            ArgValue::Flags(i),
                        ],
                        i64::from(i),
                    )
                })
                .collect(),
        )
    }

    fn indexed(trace: &Trace, block_events: usize) -> Arc<Vec<u8>> {
        let mut bytes = Vec::new();
        write_iotb_indexed(&mut bytes, trace, block_events).unwrap();
        Arc::new(bytes)
    }

    fn drain(source: &mut IotbBlockSource, max: usize) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        loop {
            let batch = source.next_batch(max).unwrap();
            if batch.is_empty() {
                break;
            }
            events.extend(batch.to_events());
        }
        events
    }

    #[test]
    fn parallel_decode_matches_serial_order_at_every_job_count() {
        let trace = sample_trace(101);
        let bytes = indexed(&trace, 8);
        let serial = read_iotb_lossy(&bytes[..], &ReadOptions::default()).unwrap();
        assert_eq!(serial.trace, trace);
        for jobs in [1, 2, 4, 7] {
            let mut source =
                IotbBlockSource::new(Arc::clone(&bytes), ReadOptions::default(), jobs).unwrap();
            let events = drain(&mut source, 13);
            assert_eq!(events, trace.events(), "jobs={jobs}");
            assert!(source.skip_ledger().is_empty());
            let pos = source.position();
            assert_eq!(pos.state.events, 101);
            assert_eq!(pos.state.lines, 101);
        }
    }

    #[test]
    fn record_view_exposes_head_fields_without_copying() {
        let trace = sample_trace(3);
        let bytes = indexed(&trace, 8);
        let blocks = read_block_index(&bytes).unwrap().unwrap();
        let start = usize::try_from(blocks[0].offset).unwrap();
        let len = u32::from_le_bytes(bytes[start..start + 4].try_into().unwrap()) as usize;
        let view = RecordView::parse(&bytes[start + 4..start + 4 + len]).unwrap();
        let first = &trace.events()[0];
        assert_eq!(view.seq(), first.seq);
        assert_eq!(view.timestamp_ns(), first.timestamp_ns);
        assert_eq!(view.pid(), first.pid);
        assert_eq!(view.sysno(), first.sysno);
        assert_eq!(view.retval(), first.retval);
        let (table, _, _) = read_table(&mut &bytes[..]).unwrap();
        assert_eq!(&view.to_event(&table).unwrap(), first);
    }

    #[test]
    fn resume_mid_block_continues_exactly() {
        let trace = sample_trace(40);
        let bytes = indexed(&trace, 8);
        for jobs in [1, 3] {
            for stop_after in [0usize, 1, 7, 8, 9, 20, 39, 40] {
                let mut head =
                    IotbBlockSource::new(Arc::clone(&bytes), ReadOptions::default(), jobs).unwrap();
                let mut events = Vec::new();
                while events.len() < stop_after {
                    let batch = head.next_batch(stop_after - events.len()).unwrap();
                    assert!(!batch.is_empty());
                    events.extend(batch.to_events());
                }
                let pos = head.position();
                drop(head);
                let mut tail = IotbBlockSource::resume(
                    Arc::clone(&bytes),
                    ReadOptions::default(),
                    pos.state,
                    jobs,
                )
                .unwrap();
                events.extend(drain(&mut tail, 6));
                assert_eq!(events, trace.events(), "jobs={jobs} stop={stop_after}");
                assert_eq!(tail.position().state.events, 40);
            }
        }
    }

    #[test]
    fn corrupt_block_is_skipped_whole_in_lossy_mode() {
        let trace = sample_trace(24);
        let mut raw = Vec::new();
        write_iotb_indexed(&mut raw, &trace, 8).unwrap();
        let blocks = read_block_index(&raw).unwrap().unwrap();
        assert_eq!(blocks.len(), 3);
        // Flip a byte in the middle block's record data.
        let mid = usize::try_from(blocks[1].offset + 10).unwrap();
        raw[mid] ^= 0x40;
        let bytes = Arc::new(raw);

        let mut lossy =
            IotbBlockSource::new(Arc::clone(&bytes), ReadOptions::default(), 2).unwrap();
        let events = drain(&mut lossy, 5);
        let expected: Vec<_> = trace.events()[..8]
            .iter()
            .chain(&trace.events()[16..])
            .cloned()
            .collect();
        assert_eq!(events, expected);
        assert_eq!(lossy.skip_ledger().len(), 1);
        assert_eq!(lossy.skip_ledger()[0].class, ErrorClass::MalformedRecord);
        assert_eq!(lossy.skip_ledger()[0].line, 9);
        assert!(lossy.skip_ledger()[0].message.contains("checksum"));

        let strict = ReadOptions {
            on_error: ErrorPolicy::Abort,
            ..ReadOptions::default()
        };
        let mut source = IotbBlockSource::new(bytes, strict, 2).unwrap();
        let mut err = None;
        loop {
            match source.next_batch(5) {
                Ok(batch) if batch.is_empty() => break,
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(err.unwrap().to_string().contains("checksum"));
    }

    #[test]
    fn max_errors_budget_applies_to_block_skips() {
        let trace = sample_trace(24);
        let mut raw = Vec::new();
        write_iotb_indexed(&mut raw, &trace, 8).unwrap();
        let blocks = read_block_index(&raw).unwrap().unwrap();
        for block in &blocks[..2] {
            let at = usize::try_from(block.offset + 10).unwrap();
            raw[at] ^= 0x40;
        }
        let options = ReadOptions {
            max_errors: Some(1),
            ..ReadOptions::default()
        };
        let mut source = IotbBlockSource::new(Arc::new(raw), options, 2).unwrap();
        let mut err = None;
        loop {
            match source.next_batch(50) {
                Ok(batch) if batch.is_empty() => break,
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(
            err,
            Some(TraceIoError::TooManyErrors { errors: 2, max: 1 })
        ));
    }

    #[test]
    fn v1_container_is_rejected() {
        let trace = sample_trace(4);
        let mut bytes = Vec::new();
        crate::write_iotb(&mut bytes, &trace).unwrap();
        let Err(err) = IotbBlockSource::new(Arc::new(bytes), ReadOptions::default(), 2) else {
            panic!("v1 container must be rejected");
        };
        assert!(err.to_string().contains("no block index"), "{err}");
    }

    #[test]
    fn empty_container_yields_nothing() {
        let bytes = indexed(&Trace::new(), 8);
        let mut source = IotbBlockSource::new(bytes, ReadOptions::default(), 4).unwrap();
        assert!(source.next_batch(10).unwrap().is_empty());
        assert_eq!(source.position().state.events, 0);
    }
}
