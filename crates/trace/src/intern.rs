//! Append-only string interning.
//!
//! The analysis hot path touches the same few dozen strings millions of
//! times: syscall names, variant names, flag names, and mount-relative
//! paths. [`StrInterner`] maps each distinct string to a dense [`Sym`]
//! (a `u32` index) exactly once, so the hot path can hash and compare
//! 4-byte symbols instead of cloning heap strings. The table is
//! append-only — symbols are never invalidated — and `Arc`-shareable, so
//! one interner can serve every shard thread of a parallel analysis and
//! the `.iotb` string table writer at the same time.
//!
//! ```
//! use iocov_trace::StrInterner;
//!
//! let interner = StrInterner::new();
//! let a = interner.intern("openat");
//! let b = interner.intern("openat");
//! assert_eq!(a, b);
//! assert_eq!(interner.resolve(a).as_deref(), Some("openat"));
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// A symbol: a dense index into one [`StrInterner`]'s table.
///
/// Symbols are only meaningful relative to the interner that issued
/// them; they order by first-interned-wins insertion order, not
/// lexicographically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The raw table index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Wraps a raw table index (e.g. one decoded from an `.iotb`
    /// string-table reference). Resolving an out-of-range symbol yields
    /// `None`.
    #[must_use]
    pub fn from_index(index: u32) -> Self {
        Sym(index)
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Arc<str>, Sym>,
    strings: Vec<Arc<str>>,
}

/// A thread-safe append-only symbol table. See the [module docs](self).
#[derive(Debug, Default)]
pub struct StrInterner {
    inner: RwLock<Inner>,
}

impl StrInterner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        StrInterner::default()
    }

    /// Interns `s`, returning its symbol. Repeated calls with equal
    /// strings return equal symbols; distinct strings get distinct
    /// symbols in first-seen order.
    pub fn intern(&self, s: &str) -> Sym {
        if let Some(&sym) = self.inner.read().map.get(s) {
            return sym;
        }
        let mut inner = self.inner.write();
        // Re-check: another thread may have interned between the locks.
        if let Some(&sym) = inner.map.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(inner.strings.len()).expect("interner overflow"));
        let arc: Arc<str> = Arc::from(s);
        inner.strings.push(Arc::clone(&arc));
        inner.map.insert(arc, sym);
        sym
    }

    /// Interns an already-shared string, sharing the `Arc` instead of
    /// copying the bytes when the string is new. Decode workers hold
    /// `Arc<str>` entries from `.iotb` string tables, so this avoids
    /// re-allocating payloads the reader already owns.
    pub fn intern_arc(&self, s: &Arc<str>) -> Sym {
        if let Some(&sym) = self.inner.read().map.get(s.as_ref()) {
            return sym;
        }
        let mut inner = self.inner.write();
        // Re-check: another thread may have interned between the locks.
        if let Some(&sym) = inner.map.get(s.as_ref()) {
            return sym;
        }
        let sym = Sym(u32::try_from(inner.strings.len()).expect("interner overflow"));
        inner.strings.push(Arc::clone(s));
        inner.map.insert(Arc::clone(s), sym);
        sym
    }

    /// The string behind `sym`, or `None` if the symbol was not issued
    /// by this interner.
    #[must_use]
    pub fn resolve(&self, sym: Sym) -> Option<Arc<str>> {
        self.inner.read().strings.get(sym.0 as usize).cloned()
    }

    /// Number of distinct strings interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// Whether nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of the table in symbol order, for writing an
    /// `.iotb` string table.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.inner.read().strings.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let i = StrInterner::new();
        assert!(i.is_empty());
        let a = i.intern("open");
        let b = i.intern("close");
        let a2 = i.intern("open");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_returns_the_interned_string() {
        let i = StrInterner::new();
        let s = i.intern("/mnt/test/a");
        assert_eq!(i.resolve(s).as_deref(), Some("/mnt/test/a"));
        assert!(i.resolve(Sym::from_index(99)).is_none());
    }

    #[test]
    fn snapshot_preserves_first_seen_order() {
        let i = StrInterner::new();
        i.intern("b");
        i.intern("a");
        i.intern("b");
        let snap = i.snapshot();
        let strs: Vec<&str> = snap.iter().map(AsRef::as_ref).collect();
        assert_eq!(strs, ["b", "a"]);
    }

    #[test]
    fn shared_across_threads() {
        let i = Arc::new(StrInterner::new());
        let base = i.intern("base");
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || (i.intern("base"), i.intern(&format!("t{t}"))))
            })
            .collect();
        for h in handles {
            let (b, own) = h.join().unwrap();
            assert_eq!(b, base);
            assert!(i.resolve(own).is_some());
        }
        // "base" + 4 distinct per-thread strings.
        assert_eq!(i.len(), 5);
    }
}
