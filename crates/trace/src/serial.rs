//! Trace serialization: JSON Lines reading and writing.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::event::TraceEvent;
use crate::Trace;

/// An error reading or writing a serialized trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse; carries the 1-based line number.
    Parse {
        line: usize,
        source: serde_json::Error,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::Parse { line, source } => {
                write!(f, "trace parse error on line {line}: {source}")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace as JSON Lines (one event per line). Writers can be
/// passed by `&mut` reference.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the writer fails.
///
/// ```
/// use iocov_trace::{read_jsonl, write_jsonl, Trace, TraceEvent};
///
/// # fn main() -> Result<(), iocov_trace::TraceIoError> {
/// let trace = Trace::from_events(vec![TraceEvent::build("close", 3, vec![], 0)]);
/// let mut buf = Vec::new();
/// write_jsonl(&mut buf, &trace)?;
/// let back = read_jsonl(&buf[..])?;
/// assert_eq!(trace, back);
/// # Ok(())
/// # }
/// ```
pub fn write_jsonl<W: Write>(mut writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    for event in trace {
        let line =
            serde_json::to_string(event).map_err(|e| TraceIoError::Parse { line: 0, source: e })?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads a JSON Lines trace. Blank lines are skipped. Readers can be
/// passed by `&mut` reference.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on read failure or
/// [`TraceIoError::Parse`] (with the offending line number) on malformed
/// JSON.
pub fn read_jsonl<R: Read>(reader: R) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(reader);
    let mut events = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event: TraceEvent = serde_json::from_str(&line).map_err(|e| TraceIoError::Parse {
            line: idx + 1,
            source: e,
        })?;
        events.push(event);
    }
    Ok(Trace::from_events(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArgValue;

    fn sample_trace() -> Trace {
        Trace::from_events(vec![
            TraceEvent::build(
                "open",
                2,
                vec![ArgValue::Path("/mnt/test/a".into()), ArgValue::Flags(0o101)],
                3,
            ),
            TraceEvent::build(
                "write",
                1,
                vec![ArgValue::Fd(3), ArgValue::UInt(4096)],
                4096,
            ),
            TraceEvent::build("close", 3, vec![ArgValue::Fd(3)], 0),
        ])
    }

    #[test]
    fn jsonl_roundtrip_preserves_trace() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &trace).unwrap();
        let back = read_jsonl(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn output_is_one_line_per_event() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &trace).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &trace).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        text.insert(0, '\n');
        let back = read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn parse_error_reports_line_number() {
        let text = "{\"bad\": true}\n";
        let err = read_jsonl(text.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other}"),
        }
        assert!(err.to_string().contains("line 1"));
        assert!(err.source().is_some());
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let back = read_jsonl(&b""[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn io_error_variant_displays() {
        let e = TraceIoError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }
}
