//! Trace serialization: JSON Lines reading and writing.
//!
//! Two readers share one line scanner ([`LineReader`]): the strict
//! [`read_jsonl`], which aborts on the first malformed line, and the
//! fault-tolerant [`read_jsonl_lossy`](crate::read_jsonl_lossy) in the
//! [`lossy`](crate::lossy) module, which records skips and keeps going.
//! Both normalize a UTF-8 BOM on the first line and CRLF line endings,
//! and both report 1-based physical line numbers that count blank lines.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Read, Write};

use crate::event::TraceEvent;
use crate::Trace;

/// An error reading or writing a serialized trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse; carries the 1-based line number.
    Parse {
        line: usize,
        source: serde_json::Error,
    },
    /// An event failed to serialize; carries the 0-based event index.
    Serialize {
        index: usize,
        source: serde_json::Error,
    },
    /// Lossy reading gave up: more lines were skipped than
    /// [`ReadOptions::max_errors`](crate::ReadOptions::max_errors) allows.
    TooManyErrors {
        /// Skips recorded before giving up (`max + 1`).
        errors: usize,
        /// The configured limit.
        max: usize,
    },
    /// An `.iotb` binary container is unusable: bad magic, unsupported
    /// version, or a corrupt string table. Fatal even in lossy mode —
    /// every record depends on the table.
    Binary {
        /// What was wrong with the container.
        detail: String,
    },
    /// An `.iotb` binary record failed to decode under the strict
    /// reader; carries the 1-based record number.
    Record {
        /// 1-based record ordinal.
        record: usize,
        /// Decoder message.
        detail: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::Parse { line, source } => {
                write!(f, "trace parse error on line {line}: {source}")
            }
            TraceIoError::Serialize { index, source } => {
                write!(f, "trace serialize error for event {index}: {source}")
            }
            TraceIoError::TooManyErrors { errors, max } => {
                write!(
                    f,
                    "trace has too many malformed lines: {errors} skipped, limit {max}"
                )
            }
            TraceIoError::Binary { detail } => {
                write!(f, "binary trace container error: {detail}")
            }
            TraceIoError::Record { record, detail } => {
                write!(f, "binary trace error at record {record}: {detail}")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { source, .. } | TraceIoError::Serialize { source, .. } => {
                Some(source)
            }
            TraceIoError::TooManyErrors { .. }
            | TraceIoError::Binary { .. }
            | TraceIoError::Record { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// One physical line of a JSONL stream, already normalized.
#[derive(Debug)]
pub(crate) struct RawLine {
    /// 1-based physical line number (blank lines count).
    pub number: usize,
    /// Line bytes with the terminator (and any `\r`) stripped.
    pub bytes: Vec<u8>,
    /// Whether the line ended with a `\n` (false only for a truncated
    /// final line).
    pub terminated: bool,
    /// Whether a `\r\n` terminator was normalized away.
    pub crlf: bool,
    /// Whether a UTF-8 BOM was stripped (first line only).
    pub bom: bool,
}

impl RawLine {
    /// The line's original on-disk length in bytes, counting everything
    /// normalization removed (BOM, `\r`, `\n`). Summing `raw_len` over
    /// consumed lines yields the exact stream byte offset — the anchor a
    /// checkpoint needs to resume a read mid-file.
    pub(crate) fn raw_len(&self) -> u64 {
        (self.bytes.len()
            + usize::from(self.terminated)
            + usize::from(self.crlf)
            + if self.bom { 3 } else { 0 }) as u64
    }
}

/// A physical-line scanner over raw bytes.
///
/// `BufRead::lines` would abort on invalid UTF-8 with an opaque
/// `io::Error`; this scanner stays at the byte level so the lossy reader
/// can classify and skip such lines, and so both readers agree on line
/// numbering and CRLF/BOM normalization.
pub(crate) struct LineReader<R> {
    inner: R,
    number: usize,
}

impl<R: BufRead> LineReader<R> {
    pub(crate) fn new(inner: R) -> Self {
        LineReader { inner, number: 0 }
    }

    /// A scanner resuming mid-stream: `inner` is already positioned at
    /// the start of line `start_line + 1`, and reported line numbers
    /// continue from there. BOM stripping stays first-line-only, so a
    /// resumed scanner never strips one.
    pub(crate) fn with_start(inner: R, start_line: usize) -> Self {
        LineReader {
            inner,
            number: start_line,
        }
    }

    /// Reads the next physical line, or `None` at end of stream.
    pub(crate) fn next_line(&mut self) -> Result<Option<RawLine>, std::io::Error> {
        let mut bytes = Vec::new();
        if self.inner.read_until(b'\n', &mut bytes)? == 0 {
            return Ok(None);
        }
        self.number += 1;
        let terminated = bytes.last() == Some(&b'\n');
        if terminated {
            bytes.pop();
        }
        let crlf = terminated && bytes.last() == Some(&b'\r');
        if crlf {
            bytes.pop();
        }
        let bom = self.number == 1 && bytes.starts_with(&[0xEF, 0xBB, 0xBF]);
        if bom {
            bytes.drain(..3);
        }
        Ok(Some(RawLine {
            number: self.number,
            bytes,
            terminated,
            crlf,
            bom,
        }))
    }
}

/// Whether a normalized line holds nothing but whitespace.
pub(crate) fn is_blank(bytes: &[u8]) -> bool {
    bytes.iter().all(u8::is_ascii_whitespace)
}

/// Writes a trace as JSON Lines (one event per line). Writers can be
/// passed by `&mut` reference.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the writer fails, or
/// [`TraceIoError::Serialize`] (with the 0-based event index) if an
/// event cannot be serialized.
///
/// ```
/// use iocov_trace::{read_jsonl, write_jsonl, Trace, TraceEvent};
///
/// # fn main() -> Result<(), iocov_trace::TraceIoError> {
/// let trace = Trace::from_events(vec![TraceEvent::build("close", 3, vec![], 0)]);
/// let mut buf = Vec::new();
/// write_jsonl(&mut buf, &trace)?;
/// let back = read_jsonl(&buf[..])?;
/// assert_eq!(trace, back);
/// # Ok(())
/// # }
/// ```
pub fn write_jsonl<W: Write>(writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    // Reads are buffered; without this, each event costs two write
    // syscalls when the caller hands us a raw `File`.
    let mut writer = std::io::BufWriter::new(writer);
    for (index, event) in trace.iter().enumerate() {
        let line = serde_json::to_string(event)
            .map_err(|e| TraceIoError::Serialize { index, source: e })?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads a JSON Lines trace strictly: the first malformed line aborts
/// the read. Blank lines are skipped (but still counted in line
/// numbering), a leading UTF-8 BOM and CRLF line endings are
/// normalized. Readers can be passed by `&mut` reference.
///
/// For traces from real tracers that may contain garbage, prefer
/// [`read_jsonl_lossy`](crate::read_jsonl_lossy).
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on read failure (including invalid
/// UTF-8) or [`TraceIoError::Parse`] (with the offending 1-based
/// physical line number) on malformed JSON.
pub fn read_jsonl<R: Read>(reader: R) -> Result<Trace, TraceIoError> {
    let mut lines = LineReader::new(std::io::BufReader::new(reader));
    let mut events = Vec::new();
    while let Some(line) = lines.next_line()? {
        if is_blank(&line.bytes) {
            continue;
        }
        let text = std::str::from_utf8(&line.bytes).map_err(|e| {
            TraceIoError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", line.number),
            ))
        })?;
        let event: TraceEvent = serde_json::from_str(text).map_err(|e| TraceIoError::Parse {
            line: line.number,
            source: e,
        })?;
        events.push(event);
    }
    Ok(Trace::from_events(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArgValue;

    fn sample_trace() -> Trace {
        Trace::from_events(vec![
            TraceEvent::build(
                "open",
                2,
                vec![ArgValue::Path("/mnt/test/a".into()), ArgValue::Flags(0o101)],
                3,
            ),
            TraceEvent::build(
                "write",
                1,
                vec![ArgValue::Fd(3), ArgValue::UInt(4096)],
                4096,
            ),
            TraceEvent::build("close", 3, vec![ArgValue::Fd(3)], 0),
        ])
    }

    #[test]
    fn jsonl_roundtrip_preserves_trace() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &trace).unwrap();
        let back = read_jsonl(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn output_is_one_line_per_event() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &trace).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &trace).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        text.insert(0, '\n');
        let back = read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn parse_error_reports_line_number() {
        let text = "{\"bad\": true}\n";
        let err = read_jsonl(text.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other}"),
        }
        assert!(err.to_string().contains("line 1"));
        assert!(err.source().is_some());
    }

    #[test]
    fn parse_error_line_number_counts_blank_lines() {
        // Regression: blank (and whitespace-only) lines must advance the
        // reported physical line number — line 4 here, not line 2.
        let text = "\n   \n\n{\"bad\": true}\n";
        let err = read_jsonl(text.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse { line, .. } => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn crlf_and_bom_are_normalized_in_strict_mode() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &trace).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut crlf = String::from("\u{feff}");
        crlf.push_str(&text.replace('\n', "\r\n"));
        let back = read_jsonl(crlf.as_bytes()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn crlf_lines_count_toward_error_line_numbers() {
        let text = "\r\n{\"bad\": true}\r\n";
        let err = read_jsonl(text.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let back = read_jsonl(&b""[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn invalid_utf8_is_an_io_error_with_line_number() {
        let bytes = b"\n\xff\xfe garbage\n";
        let err = read_jsonl(&bytes[..]).unwrap_err();
        match &err {
            TraceIoError::Io(e) => {
                assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
                assert!(e.to_string().contains("line 2"), "{e}");
            }
            other => panic!("expected i/o error, got {other}"),
        }
    }

    #[test]
    fn io_error_variant_displays() {
        let e = TraceIoError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn serialize_error_carries_event_index() {
        // No TraceEvent actually fails to serialize, so exercise the
        // variant's Display/source contract directly.
        let source = serde_json::from_str::<TraceEvent>("{").unwrap_err();
        let e = TraceIoError::Serialize { index: 7, source };
        assert!(e.to_string().contains("event 7"));
        assert!(e.source().is_some());
    }

    #[test]
    fn too_many_errors_variant_displays() {
        let e = TraceIoError::TooManyErrors { errors: 3, max: 2 };
        let text = e.to_string();
        assert!(text.contains("3 skipped"));
        assert!(text.contains("limit 2"));
        assert!(e.source().is_none());
    }
}
