//! Composable, pull-based event sources.
//!
//! Every ingestion path in the pipeline — strict or lossy, JSONL or
//! `.iotb`, fresh or resumed from a checkpoint — is one implementation
//! of a single trait: an [`EventSource`] yields events in batches,
//! reports a serializable resume point ([`SourcePos`]) valid at any
//! batch boundary, and exposes the lossy skip ledger. Format
//! auto-sniffing lives in the [`open_source`] factory (it used to be
//! CLI-side glue), so callers ask for "the events in this file" and the
//! right cursor is chosen for them:
//!
//! ```text
//!   open_source(path)                EventSource        consumer
//!   ┌──────────────┐   sniff   ┌──────────────────┐   next_batch()
//!   │ magic bytes? ├──────────▶│ JsonlSource      ├──▶ Pipeline /
//!   │ --format?    │           │ IotbSource       │    Executor
//!   │ resume pos?  │           │ (strict | lossy) │
//!   └──────────────┘           └──────────────────┘
//! ```
//!
//! Strictness is not a separate implementation: [`ErrorPolicy::Abort`]
//! in [`ReadOptions`] makes either cursor fail with exactly the strict
//! batch reader's errors (`read_jsonl` / `read_iotb`), which keeps the
//! matrix of sources at two cursors instead of four readers.

use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::batch::EventBatch;
use crate::binary::{is_iotb, IotbCursor, IOTB_INDEX_FOOTER_MAGIC};
use crate::block::IotbBlockSource;
use crate::cursor::{CursorState, JsonlCursor};
use crate::lossy::{ReadOptions, SkippedLine};
use crate::serial::TraceIoError;

#[cfg(doc)]
use crate::lossy::ErrorPolicy;

/// On-disk trace container format.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceFormat {
    /// JSON Lines, one event per line.
    #[default]
    Jsonl,
    /// The `.iotb` compact binary container.
    Iotb,
}

impl SourceFormat {
    /// Stable kebab-case name, used in errors and checkpoints.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SourceFormat::Jsonl => "jsonl",
            SourceFormat::Iotb => "iotb",
        }
    }
}

impl fmt::Display for SourceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A serializable resume point: the format being scanned plus the
/// cursor's state. What a checkpoint stores, and what [`open_source`]
/// accepts to continue an interrupted scan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourcePos {
    /// Which cursor produced the state.
    pub format: SourceFormat,
    /// The cursor's resume state.
    pub state: CursorState,
}

/// A pull-based, resumable stream of trace events.
pub trait EventSource {
    /// Pulls up to `max` events as one columnar [`EventBatch`]. An
    /// empty batch means end of stream.
    ///
    /// Every implementation returns exactly `max` events while the
    /// stream has them, so batch boundaries — and anything derived
    /// from them, like batch-count metrics — are identical across
    /// decode paths.
    ///
    /// # Errors
    ///
    /// Returns the underlying cursor's errors: I/O failure, an
    /// exhausted lossy skip budget, or — under strict options — the
    /// first malformed line/record.
    fn next_batch(&mut self, max: usize) -> Result<EventBatch, TraceIoError>;

    /// The current resume point. Valid to checkpoint at any batch
    /// boundary.
    fn position(&self) -> SourcePos;

    /// Every line/record dropped so far (lossy mode).
    fn skip_ledger(&self) -> &[SkippedLine];
}

/// [`EventSource`] over a JSONL stream, wrapping [`JsonlCursor`].
pub struct JsonlSource<R> {
    cursor: JsonlCursor<R>,
}

impl<R: Read> JsonlSource<R> {
    /// A source over a fresh stream.
    pub fn new(reader: R, options: ReadOptions) -> Self {
        JsonlSource {
            cursor: JsonlCursor::new(reader, options),
        }
    }

    /// Resumes from a checkpointed state. The caller must have seeked
    /// `reader` to [`CursorState::byte_offset`].
    pub fn resume(reader: R, options: ReadOptions, state: CursorState) -> Self {
        JsonlSource {
            cursor: JsonlCursor::resume(reader, options, state),
        }
    }
}

impl<R: Read> EventSource for JsonlSource<R> {
    fn next_batch(&mut self, max: usize) -> Result<EventBatch, TraceIoError> {
        // JSONL lines deserialize through serde into an owned event;
        // it is packed into the batch immediately and dropped, so the
        // per-event allocations never cross the source boundary.
        let mut batch = EventBatch::with_capacity(max.min(1024));
        while batch.len() < max {
            match self.cursor.next_event()? {
                Some(event) => batch.push_event(&event),
                None => break,
            }
        }
        Ok(batch)
    }

    fn position(&self) -> SourcePos {
        SourcePos {
            format: SourceFormat::Jsonl,
            state: self.cursor.state().clone(),
        }
    }

    fn skip_ledger(&self) -> &[SkippedLine] {
        &self.cursor.state().skipped
    }
}

/// [`EventSource`] over an `.iotb` container, wrapping [`IotbCursor`].
pub struct IotbSource<R> {
    cursor: IotbCursor<R>,
}

impl<R: Read> IotbSource<R> {
    /// A source over a fresh container.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Binary`] on header/string-table
    /// corruption.
    pub fn new(reader: R, options: ReadOptions) -> Result<Self, TraceIoError> {
        Ok(IotbSource {
            cursor: IotbCursor::new(reader, options)?,
        })
    }

    /// Resumes from a checkpointed state; `reader` must be positioned
    /// at the start of the container (see [`IotbCursor::resume`]).
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Binary`] on container corruption or a
    /// bad resume offset.
    pub fn resume(
        reader: R,
        options: ReadOptions,
        state: CursorState,
    ) -> Result<Self, TraceIoError> {
        Ok(IotbSource {
            cursor: IotbCursor::resume(reader, options, state)?,
        })
    }
}

impl<R: Read> EventSource for IotbSource<R> {
    fn next_batch(&mut self, max: usize) -> Result<EventBatch, TraceIoError> {
        // `next_into` decodes records straight into the batch columns —
        // no owned `TraceEvent` is materialized on this path.
        let mut batch = EventBatch::with_capacity(max.min(1024));
        while batch.len() < max {
            if !self.cursor.next_into(&mut batch)? {
                break;
            }
        }
        Ok(batch)
    }

    fn position(&self) -> SourcePos {
        SourcePos {
            format: SourceFormat::Iotb,
            state: self.cursor.state().clone(),
        }
    }

    fn skip_ledger(&self) -> &[SkippedLine] {
        &self.cursor.state().skipped
    }
}

/// Reader decoration applied by [`open_source`] to the data file —
/// retry layers, fault injection. Sniffing always reads the plain file.
pub type ReaderWrap = Box<dyn Fn(File) -> Box<dyn Read>>;

/// How [`open_source`] opens a trace file.
#[derive(Default)]
pub struct SourceOptions {
    /// Per-line/record error handling, shared by both cursors.
    pub read: ReadOptions,
    /// Forced container format; `None` sniffs the magic bytes.
    pub format: Option<SourceFormat>,
    /// Resume point from a checkpoint. Its format must match the
    /// resolved one ([`SourceError::FormatMismatch`] otherwise).
    pub resume: Option<SourcePos>,
    /// Optional reader decoration for the data file.
    pub wrap: Option<ReaderWrap>,
    /// Decode parallelism for block-indexed `.iotb` containers: when
    /// greater than 1 and the file carries a v2 index, records are
    /// decoded by that many worker threads
    /// ([`IotbBlockSource`]). `0`/`1`, JSONL, and v1 containers use
    /// the serial cursors.
    pub decode_jobs: usize,
}

/// Why [`open_source`] failed — split by phase so callers can keep
/// their own message conventions per failure site.
#[derive(Debug)]
pub enum SourceError {
    /// The file could not be opened.
    Open(std::io::Error),
    /// The magic-byte sniff read failed.
    Sniff(std::io::Error),
    /// Seeking to a JSONL resume offset failed.
    Seek(std::io::Error),
    /// A resume was requested over a source that cannot replay earlier
    /// bytes — a pipe, FIFO, socket, or device instead of a regular
    /// file. Detected up front so the caller gets an actionable
    /// message instead of a raw seek failure mid-open.
    Unseekable {
        /// What the path turned out to be ("fifo", "socket", …).
        kind: &'static str,
    },
    /// The resume position was taken over a different container format
    /// than the file resolves to.
    FormatMismatch {
        /// The file's actual format.
        resolved: SourceFormat,
        /// The format recorded in the resume position.
        resumed: SourceFormat,
    },
    /// The cursor rejected the stream (container corruption, bad
    /// resume offset).
    Trace(TraceIoError),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Open(e) => write!(f, "cannot open trace: {e}"),
            SourceError::Sniff(e) => write!(f, "cannot sniff trace format: {e}"),
            SourceError::Seek(e) => write!(f, "cannot seek to resume offset: {e}"),
            SourceError::Unseekable { kind } => write!(
                f,
                "cannot resume from a {kind}: resuming re-reads earlier trace bytes, which only \
                 a regular file can replay; save the stream to a file and resume from that path"
            ),
            SourceError::FormatMismatch { resolved, resumed } => write!(
                f,
                "resume position is for a {resumed} trace but the file is {resolved}"
            ),
            SourceError::Trace(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Open(e) | SourceError::Sniff(e) | SourceError::Seek(e) => Some(e),
            SourceError::Trace(e) => Some(e),
            SourceError::FormatMismatch { .. } | SourceError::Unseekable { .. } => None,
        }
    }
}

/// Sniffs a file's container format from its magic bytes. Files shorter
/// than the magic are JSONL (possibly empty).
///
/// # Errors
///
/// Returns [`SourceError::Open`] / [`SourceError::Sniff`] on I/O
/// failure.
pub fn sniff_format(path: &str) -> Result<SourceFormat, SourceError> {
    let mut file = File::open(path).map_err(SourceError::Open)?;
    let mut magic = [0u8; 4];
    let mut filled = 0;
    while filled < magic.len() {
        match file.read(&mut magic[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(SourceError::Sniff(e)),
        }
    }
    Ok(if is_iotb(&magic[..filled]) {
        SourceFormat::Iotb
    } else {
        SourceFormat::Jsonl
    })
}

/// Opens a trace file as an [`EventSource`]: resolves the format
/// (forced or sniffed), validates any resume position against it,
/// positions the reader, applies the wrap hook, and picks the cursor.
///
/// # Errors
///
/// See [`SourceError`]; cursor-construction failures (e.g. `.iotb`
/// container corruption) surface as [`SourceError::Trace`].
pub fn open_source(
    path: &str,
    options: SourceOptions,
) -> Result<Box<dyn EventSource>, SourceError> {
    if options.resume.is_some() {
        // Resuming re-reads earlier bytes (a JSONL seek, an iotb table
        // re-read), which a pipe or device cannot replay. Detect it
        // before opening: opening a FIFO with no writer would block
        // forever, and a raw seek error mid-open is not actionable.
        let meta = std::fs::metadata(path).map_err(SourceError::Open)?;
        if !meta.is_file() {
            return Err(SourceError::Unseekable {
                kind: file_type_name(&meta.file_type()),
            });
        }
    }
    let format = match options.format {
        Some(format) => format,
        None => sniff_format(path)?,
    };
    if let Some(pos) = &options.resume {
        if pos.format != format {
            return Err(SourceError::FormatMismatch {
                resolved: format,
                resumed: pos.format,
            });
        }
    }
    let mut file = File::open(path).map_err(SourceError::Open)?;
    let wrap = options
        .wrap
        .unwrap_or_else(|| Box::new(|f: File| Box::new(f) as Box<dyn Read>));
    match format {
        SourceFormat::Jsonl => match options.resume {
            Some(pos) => {
                // Seek the raw file before decorating it: wrap layers
                // (retry, fault injection) need not be seekable.
                file.seek(SeekFrom::Start(pos.state.byte_offset))
                    .map_err(SourceError::Seek)?;
                Ok(Box::new(JsonlSource::resume(
                    wrap(file),
                    options.read,
                    pos.state,
                )))
            }
            None => Ok(Box::new(JsonlSource::new(wrap(file), options.read))),
        },
        SourceFormat::Iotb => {
            if options.decode_jobs > 1 && footer_says_indexed(path) {
                // Block-indexed v2 container: read it once into a
                // shared buffer (through the wrap hook, so fault
                // injection still applies) and decode blocks in
                // parallel. A v2 footer without a valid index is
                // corruption, fatal like a bad string table.
                let mut reader = wrap(file);
                let mut bytes = Vec::new();
                reader
                    .read_to_end(&mut bytes)
                    .map_err(|e| SourceError::Trace(TraceIoError::Io(e)))?;
                let bytes = Arc::new(bytes);
                let jobs = options.decode_jobs;
                let source = match options.resume {
                    Some(pos) => IotbBlockSource::resume(bytes, options.read, pos.state, jobs),
                    None => IotbBlockSource::new(bytes, options.read, jobs),
                }
                .map_err(SourceError::Trace)?;
                return Ok(Box::new(source));
            }
            let source = match options.resume {
                // The iotb cursor re-reads the table itself, so the
                // reader stays at the container start.
                Some(pos) => IotbSource::resume(wrap(file), options.read, pos.state),
                None => IotbSource::new(wrap(file), options.read),
            }
            .map_err(SourceError::Trace)?;
            Ok(Box::new(source))
        }
    }
}

/// Classifies a path that cannot support seek-based replay: returns the
/// human-readable file-type name ("pipe (FIFO)", "socket", …) when
/// `path` exists and is not a regular file, `None` when it is one (or
/// does not exist — the open path will surface that error itself).
///
/// Checkpoint/resume configs need this up front: a checkpoint cursor
/// records a byte offset that resume must seek back to, so offering to
/// checkpoint a FIFO or socket stream writes state no run can ever use.
#[must_use]
pub fn unseekable_kind(path: &str) -> Option<&'static str> {
    let meta = std::fs::metadata(path).ok()?;
    if meta.is_file() {
        None
    } else {
        Some(file_type_name(&meta.file_type()))
    }
}

/// Human-readable name of a non-regular file type, for
/// [`SourceError::Unseekable`].
fn file_type_name(file_type: &std::fs::FileType) -> &'static str {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileTypeExt;
        if file_type.is_fifo() {
            return "pipe (FIFO)";
        }
        if file_type.is_socket() {
            return "socket";
        }
        if file_type.is_char_device() {
            return "character device";
        }
        if file_type.is_block_device() {
            return "block device";
        }
    }
    if file_type.is_dir() {
        return "directory";
    }
    "non-regular file"
}

/// Whether the file ends with the v2 index footer magic — the cheap
/// sniff that gates reading the whole container into memory for
/// indexed decoding. Any I/O trouble answers "no" and lets the serial
/// path produce the real error.
fn footer_says_indexed(path: &str) -> bool {
    let Ok(mut file) = File::open(path) else {
        return false;
    };
    let Ok(len) = file.seek(SeekFrom::End(0)) else {
        return false;
    };
    if len < 16 || file.seek(SeekFrom::Start(len - 8)).is_err() {
        return false;
    }
    let mut magic = [0u8; 8];
    let mut filled = 0;
    while filled < magic.len() {
        match file.read(&mut magic[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    magic == IOTB_INDEX_FOOTER_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArgValue, TraceEvent};
    use crate::{write_iotb, write_jsonl, Trace};

    fn sample_trace() -> Trace {
        Trace::from_events(
            (0u32..5)
                .map(|i| {
                    TraceEvent::build(
                        "write",
                        1,
                        vec![ArgValue::Fd(3), ArgValue::UInt(u64::from(i))],
                        64,
                    )
                })
                .collect(),
        )
    }

    struct TempFile(String);

    impl TempFile {
        fn new(tag: &str, bytes: &[u8]) -> Self {
            let path = std::env::temp_dir()
                .join(format!("iocov-source-{}-{tag}", std::process::id()))
                .to_string_lossy()
                .into_owned();
            std::fs::write(&path, bytes).unwrap();
            TempFile(path)
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn drain(source: &mut dyn EventSource, max: usize) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        loop {
            let batch = source.next_batch(max).unwrap();
            if batch.is_empty() {
                break;
            }
            events.extend(batch.to_events());
        }
        events
    }

    #[test]
    fn factory_sniffs_both_formats() {
        let trace = sample_trace();
        let mut jsonl = Vec::new();
        write_jsonl(&mut jsonl, &trace).unwrap();
        let mut iotb = Vec::new();
        write_iotb(&mut iotb, &trace).unwrap();

        for (tag, bytes, format) in [
            ("a.jsonl", &jsonl, SourceFormat::Jsonl),
            ("a.iotb", &iotb, SourceFormat::Iotb),
        ] {
            let file = TempFile::new(tag, bytes);
            assert_eq!(sniff_format(&file.0).unwrap(), format);
            let mut source = open_source(&file.0, SourceOptions::default()).unwrap();
            assert_eq!(source.position().format, format);
            let events = drain(source.as_mut(), 2);
            assert_eq!(events, trace.events());
            assert!(source.skip_ledger().is_empty());
        }
    }

    #[test]
    fn resume_format_mismatch_is_structured() {
        let mut iotb = Vec::new();
        write_iotb(&mut iotb, &sample_trace()).unwrap();
        let file = TempFile::new("mismatch.iotb", &iotb);
        let Err(err) = open_source(
            &file.0,
            SourceOptions {
                resume: Some(SourcePos::default()),
                ..SourceOptions::default()
            },
        ) else {
            panic!("expected format mismatch")
        };
        match &err {
            SourceError::FormatMismatch { resolved, resumed } => {
                assert_eq!(*resolved, SourceFormat::Iotb);
                assert_eq!(*resumed, SourceFormat::Jsonl);
            }
            other => panic!("expected format mismatch, got {other}"),
        }
        assert!(err.to_string().contains("jsonl"), "{err}");
    }

    #[test]
    fn resume_continues_where_position_left_off() {
        let trace = sample_trace();
        let mut jsonl = Vec::new();
        write_jsonl(&mut jsonl, &trace).unwrap();
        let mut iotb = Vec::new();
        write_iotb(&mut iotb, &trace).unwrap();

        for (tag, bytes) in [("r.jsonl", &jsonl), ("r.iotb", &iotb)] {
            let file = TempFile::new(tag, bytes);
            let mut head = open_source(&file.0, SourceOptions::default()).unwrap();
            let mut events = head.next_batch(2).unwrap().to_events();
            let pos = head.position();
            drop(head);
            let mut tail = open_source(
                &file.0,
                SourceOptions {
                    resume: Some(pos),
                    ..SourceOptions::default()
                },
            )
            .unwrap();
            events.extend(drain(tail.as_mut(), 3));
            assert_eq!(events, trace.events(), "{tag}");
        }
    }

    #[test]
    fn missing_file_is_an_open_error() {
        let Err(err) = open_source("/nonexistent/trace.jsonl", SourceOptions::default()) else {
            panic!("expected open error")
        };
        assert!(matches!(err, SourceError::Open(_)), "{err}");
    }

    #[test]
    fn short_file_sniffs_as_jsonl() {
        let file = TempFile::new("short", b"IO");
        assert_eq!(sniff_format(&file.0).unwrap(), SourceFormat::Jsonl);
    }

    #[test]
    fn indexed_container_routes_to_block_source_and_matches_serial() {
        let trace = sample_trace();
        let mut indexed = Vec::new();
        crate::write_iotb_indexed(&mut indexed, &trace, 2).unwrap();
        let file = TempFile::new("indexed.iotb", &indexed);

        for jobs in [0, 1, 2, 4] {
            let mut source = open_source(
                &file.0,
                SourceOptions {
                    decode_jobs: jobs,
                    ..SourceOptions::default()
                },
            )
            .unwrap();
            let events = drain(source.as_mut(), 3);
            assert_eq!(events, trace.events(), "jobs={jobs}");
            assert_eq!(source.position().format, SourceFormat::Iotb);
            assert!(source.skip_ledger().is_empty());
        }
    }

    #[test]
    fn v1_container_stays_on_serial_path_even_with_jobs() {
        let trace = sample_trace();
        let mut iotb = Vec::new();
        write_iotb(&mut iotb, &trace).unwrap();
        let file = TempFile::new("v1-jobs.iotb", &iotb);
        let mut source = open_source(
            &file.0,
            SourceOptions {
                decode_jobs: 4,
                ..SourceOptions::default()
            },
        )
        .unwrap();
        assert_eq!(drain(source.as_mut(), 2), trace.events());
    }

    #[test]
    fn resume_over_indexed_container_continues_exactly() {
        let trace = sample_trace();
        let mut indexed = Vec::new();
        crate::write_iotb_indexed(&mut indexed, &trace, 2).unwrap();
        let file = TempFile::new("resume-indexed.iotb", &indexed);

        let options = SourceOptions {
            decode_jobs: 4,
            ..SourceOptions::default()
        };
        let mut head = open_source(&file.0, options).unwrap();
        let mut events = head.next_batch(3).unwrap().to_events();
        let pos = head.position();
        drop(head);
        let mut tail = open_source(
            &file.0,
            SourceOptions {
                decode_jobs: 4,
                resume: Some(pos),
                ..SourceOptions::default()
            },
        )
        .unwrap();
        events.extend(drain(tail.as_mut(), 3));
        assert_eq!(events, trace.events());
    }

    #[test]
    fn indexed_open_reads_through_the_wrap_hook() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let trace = sample_trace();
        let mut indexed = Vec::new();
        crate::write_iotb_indexed(&mut indexed, &trace, 2).unwrap();
        let file = TempFile::new("wrapped.iotb", &indexed);

        static WRAPPED: AtomicBool = AtomicBool::new(false);
        let mut source = open_source(
            &file.0,
            SourceOptions {
                decode_jobs: 2,
                wrap: Some(Box::new(|f: File| {
                    WRAPPED.store(true, Ordering::SeqCst);
                    Box::new(f) as Box<dyn Read>
                })),
                ..SourceOptions::default()
            },
        )
        .unwrap();
        assert!(WRAPPED.load(Ordering::SeqCst));
        assert_eq!(drain(source.as_mut(), 2), trace.events());
    }

    #[cfg(unix)]
    #[test]
    fn resume_from_fifo_is_a_structured_unseekable_error() {
        let path = std::env::temp_dir()
            .join(format!("iocov-source-{}-resume.fifo", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&path);
        let status = std::process::Command::new("mkfifo")
            .arg(&path)
            .status()
            .expect("mkfifo");
        assert!(status.success());

        let result = open_source(
            &path,
            SourceOptions {
                resume: Some(SourcePos {
                    format: SourceFormat::Jsonl,
                    ..SourcePos::default()
                }),
                ..SourceOptions::default()
            },
        );
        let _ = std::fs::remove_file(&path);
        let Err(err) = result else {
            panic!("expected unseekable error")
        };
        assert!(
            matches!(
                err,
                SourceError::Unseekable {
                    kind: "pipe (FIFO)"
                }
            ),
            "{err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("cannot resume from a pipe (FIFO)"), "{msg}");
        assert!(msg.contains("save the stream to a file"), "{msg}");
    }

    #[cfg(unix)]
    #[test]
    fn unseekable_kind_classifies_fifos_and_clears_regular_files() {
        let dir = std::env::temp_dir();
        let fifo = dir
            .join(format!("iocov-source-{}-kind.fifo", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&fifo);
        let status = std::process::Command::new("mkfifo")
            .arg(&fifo)
            .status()
            .expect("mkfifo");
        assert!(status.success());
        assert_eq!(unseekable_kind(&fifo), Some("pipe (FIFO)"));
        let _ = std::fs::remove_file(&fifo);

        let file = dir
            .join(format!("iocov-source-{}-kind.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        std::fs::write(&file, b"").unwrap();
        assert_eq!(unseekable_kind(&file), None);
        let _ = std::fs::remove_file(&file);

        // A missing path is not classified: the open will report it.
        assert_eq!(unseekable_kind("/no/such/iocov/path"), None);
    }
}
