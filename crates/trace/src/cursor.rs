//! A resumable, offset-tracking JSONL event cursor.
//!
//! The batch readers ([`read_jsonl`](crate::read_jsonl),
//! [`read_jsonl_lossy`](crate::read_jsonl_lossy)) consume a whole stream
//! and return a [`Trace`](crate::Trace); a [`JsonlCursor`] instead yields
//! one event at a time while maintaining a [`CursorState`] — exact byte
//! offset, line count, event count, and the full lossy-skip record — that
//! can be serialized into a checkpoint and later handed back to
//! [`JsonlCursor::resume`] with a reader seeked to
//! [`CursorState::byte_offset`]. A resumed cursor continues line
//! numbering, skip accounting, and `max_errors` budgeting exactly where
//! the checkpointed one stopped, so an interrupted + resumed scan is
//! indistinguishable from an uninterrupted one.

use std::io::{BufReader, Read};

use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;
use crate::lossy::{ErrorClass, ErrorPolicy, ReadOptions, SkippedLine};
use crate::serial::{is_blank, LineReader, TraceIoError};

/// Everything a [`JsonlCursor`] needs to resume mid-stream.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CursorState {
    /// Byte offset of the first unconsumed line (seek target on resume).
    pub byte_offset: u64,
    /// Physical lines consumed (blank lines count).
    pub lines: usize,
    /// Events yielded.
    pub events: u64,
    /// Every line dropped so far (lossy mode).
    pub skipped: Vec<SkippedLine>,
    /// Whether a UTF-8 BOM was stripped from the first line.
    pub bom_stripped: bool,
    /// Lines whose CRLF terminator was normalized.
    pub crlf_lines: usize,
}

/// A streaming JSONL reader that tracks its own resume point.
pub struct JsonlCursor<R> {
    lines: LineReader<BufReader<R>>,
    options: ReadOptions,
    state: CursorState,
}

impl<R: Read> JsonlCursor<R> {
    /// A cursor over a fresh stream.
    pub fn new(reader: R, options: ReadOptions) -> Self {
        JsonlCursor {
            lines: LineReader::new(BufReader::new(reader)),
            options,
            state: CursorState::default(),
        }
    }

    /// Resumes from a checkpointed `state`. The caller must have seeked
    /// `reader` to `state.byte_offset`.
    pub fn resume(reader: R, options: ReadOptions, state: CursorState) -> Self {
        JsonlCursor {
            lines: LineReader::with_start(BufReader::new(reader), state.lines),
            options,
            state,
        }
    }

    /// The current resume point. Valid to checkpoint after any
    /// [`next_event`](Self::next_event) return — the offset always sits
    /// on a line boundary past everything already consumed.
    #[must_use]
    pub fn state(&self) -> &CursorState {
        &self.state
    }

    /// Consumes the cursor, yielding its final state.
    #[must_use]
    pub fn into_state(self) -> CursorState {
        self.state
    }

    /// Yields the next event, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on read failure,
    /// [`TraceIoError::TooManyErrors`] when the lossy skip budget is
    /// exhausted, and — under [`ErrorPolicy::Abort`] — the strict
    /// reader's per-line errors.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceIoError> {
        while let Some(line) = self.lines.next_line()? {
            self.state.byte_offset += line.raw_len();
            self.state.lines = line.number;
            self.state.bom_stripped |= line.bom;
            self.state.crlf_lines += usize::from(line.crlf);
            if is_blank(&line.bytes) {
                continue;
            }
            let (class, message) = match std::str::from_utf8(&line.bytes) {
                Err(e) => (ErrorClass::InvalidUtf8, e.to_string()),
                Ok(text) => match serde_json::from_str::<TraceEvent>(text) {
                    Ok(event) => {
                        self.state.events += 1;
                        return Ok(Some(event));
                    }
                    Err(e) => {
                        if self.options.on_error == ErrorPolicy::Abort {
                            return Err(TraceIoError::Parse {
                                line: line.number,
                                source: e,
                            });
                        }
                        let class = if line.terminated {
                            ErrorClass::MalformedJson
                        } else {
                            ErrorClass::TruncatedTail
                        };
                        (class, e.to_string())
                    }
                },
            };
            if self.options.on_error == ErrorPolicy::Abort {
                // Only reachable for invalid UTF-8 (JSON aborts above).
                return Err(TraceIoError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: {message}", line.number),
                )));
            }
            self.state.skipped.push(SkippedLine {
                line: line.number,
                class,
                message,
            });
            if let Some(max) = self.options.max_errors {
                if self.state.skipped.len() > max {
                    return Err(TraceIoError::TooManyErrors {
                        errors: self.state.skipped.len(),
                        max,
                    });
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArgValue;
    use crate::lossy::read_jsonl_lossy;
    use crate::{write_jsonl, Trace};

    fn sample_bytes() -> Vec<u8> {
        let trace = Trace::from_events(
            (0u32..6)
                .map(|i| {
                    TraceEvent::build(
                        "write",
                        1,
                        vec![ArgValue::Fd(3), ArgValue::UInt(u64::from(i) * 7)],
                        64,
                    )
                })
                .collect(),
        );
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &trace).unwrap();
        buf
    }

    fn corrupt_bytes() -> Vec<u8> {
        let clean = String::from_utf8(sample_bytes()).unwrap();
        let lines: Vec<&str> = clean.lines().collect();
        let mut text = format!("\u{feff}{}\r\n", lines[0]);
        text.push_str("not json\n\n");
        for l in &lines[1..5] {
            text.push_str(l);
            text.push('\n');
        }
        let mut bytes = text.into_bytes();
        bytes.extend_from_slice(b"\xff\xfe torn\n");
        bytes.extend_from_slice(&lines[5].as_bytes()[..lines[5].len() / 2]);
        bytes
    }

    fn drain<R: Read>(cursor: &mut JsonlCursor<R>) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        while let Some(e) = cursor.next_event().unwrap() {
            events.push(e);
        }
        events
    }

    #[test]
    fn cursor_matches_batch_lossy_reader() {
        let bytes = corrupt_bytes();
        let batch = read_jsonl_lossy(&bytes[..], &ReadOptions::default()).unwrap();
        let mut cursor = JsonlCursor::new(&bytes[..], ReadOptions::default());
        let events = drain(&mut cursor);
        let state = cursor.into_state();
        assert_eq!(events, batch.trace.events());
        assert_eq!(state.skipped, batch.skipped);
        assert_eq!(state.lines, batch.lines);
        assert_eq!(state.bom_stripped, batch.bom_stripped);
        assert_eq!(state.crlf_lines, batch.crlf_lines);
        assert_eq!(state.byte_offset, bytes.len() as u64);
        assert_eq!(state.events, events.len() as u64);
    }

    #[test]
    fn resume_at_every_event_boundary_is_seamless() {
        let bytes = corrupt_bytes();
        let mut full = JsonlCursor::new(&bytes[..], ReadOptions::default());
        let full_events = drain(&mut full);
        let full_state = full.into_state();

        for stop_after in 0..=full_events.len() {
            let mut head = JsonlCursor::new(&bytes[..], ReadOptions::default());
            let mut events = Vec::new();
            for _ in 0..stop_after {
                events.push(head.next_event().unwrap().unwrap());
            }
            let saved = head.into_state();
            // Round-trip the state through serde, as a checkpoint would.
            let saved: CursorState =
                serde_json::from_str(&serde_json::to_string(&saved).unwrap()).unwrap();
            let tail_bytes = &bytes[usize::try_from(saved.byte_offset).unwrap()..];
            let mut tail = JsonlCursor::resume(tail_bytes, ReadOptions::default(), saved);
            events.extend(drain(&mut tail));
            assert_eq!(events, full_events, "stop_after={stop_after}");
            assert_eq!(tail.into_state(), full_state, "stop_after={stop_after}");
        }
    }

    #[test]
    fn strict_policy_aborts_like_read_jsonl() {
        let options = ReadOptions {
            on_error: ErrorPolicy::Abort,
            ..ReadOptions::default()
        };
        let mut cursor = JsonlCursor::new(&b"\nbad line\n"[..], options);
        match cursor.next_event().unwrap_err() {
            TraceIoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn max_errors_budget_spans_resume() {
        let options = ReadOptions {
            max_errors: Some(2),
            ..ReadOptions::default()
        };
        let bytes = b"junk one\njunk two\njunk three\n";
        let mut head = JsonlCursor::new(&bytes[..], options);
        assert!(head.next_event().unwrap_err().to_string().contains("limit"));

        // Consume one junk line's worth by resuming after the first line
        // with one skip on the books: the budget continues, not resets.
        let mut head = JsonlCursor::new(&b"junk one\n"[..], options);
        assert!(head.next_event().unwrap().is_none());
        let mut state = head.into_state();
        assert_eq!(state.skipped.len(), 1);
        state.byte_offset = 0;
        let mut tail = JsonlCursor::resume(&b"junk two\njunk three\n"[..], options, state);
        match tail.next_event().unwrap_err() {
            TraceIoError::TooManyErrors { errors, max } => {
                assert_eq!(errors, 3);
                assert_eq!(max, 2);
            }
            other => panic!("expected TooManyErrors, got {other}"),
        }
    }
}
