//! Columnar event batches: the allocation-free hot-path representation.
//!
//! [`TraceEvent`] is the serde/interop type — one heap `String` for the
//! syscall name, one `Vec<ArgValue>`, and an owned `String` per path
//! argument, *per event*. That is the right shape for JSON wire
//! compatibility and for tests, but it taxes the decode→filter→analyze
//! hot path with O(events × args) allocator round-trips.
//!
//! [`EventBatch`] is the struct-of-arrays alternative: fixed-width
//! columns for `seq`/`timestamp_ns`/`pid`/`sysno`/`retval`, a dense
//! batch-local name table of `Arc<str>` syscall names referenced by
//! `u32` id, one shared [`PackedArg`] column addressed by per-event
//! ranges, and a single `String` bump arena holding every path/str
//! payload. Appending an event touches only column tails, so a batch of
//! N events costs O(columns) allocations (amortized) instead of
//! O(N × args).
//!
//! Lifetime rules:
//!
//! * [`EventRef`]/[`ArgView`] borrow from the batch and never outlive
//!   it; they are `Copy` and cost nothing to pass around.
//! * The arena only grows while the batch is being built; rows are never
//!   mutated or removed, so every issued `(start, len)` range stays
//!   valid for the life of the batch.
//! * Conversion to and from `Vec<TraceEvent>` is lossless
//!   ([`EventBatch::from_events`] / [`EventBatch::to_events`]), which is
//!   what keeps reports, checkpoints, and wire formats byte-identical to
//!   the owned-event pipeline.

use std::collections::HashMap;
use std::sync::Arc;

use crate::event::{ArgValue, TraceEvent};

/// One argument in packed columnar form. Scalars are stored inline;
/// variable-length `Path`/`Str` payloads live in the batch's text arena
/// and are referenced by `(start, len)` byte ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PackedArg {
    Int(i64),
    UInt(u64),
    Fd(i32),
    Path { start: u32, len: u32 },
    Str { start: u32, len: u32 },
    Flags(u32),
    Mode(u32),
    Whence(u32),
    Ptr(u64),
}

/// A borrowed view of one decoded argument. Mirrors [`ArgValue`] with
/// `&str` payloads borrowed from the batch arena (or from an owned
/// event), so consumers can be written once against either layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgView<'a> {
    /// A signed integer (offsets, lengths that may be negative in ABI form).
    Int(i64),
    /// An unsigned integer (sizes, counts).
    UInt(u64),
    /// A file descriptor (including `AT_FDCWD` = -100).
    Fd(i32),
    /// A pathname string argument.
    Path(&'a str),
    /// A non-path string argument (e.g. xattr names).
    Str(&'a str),
    /// A flags bitmap word.
    Flags(u32),
    /// A permission-bits word (`mode_t`).
    Mode(u32),
    /// A categorical selector with a fixed value set.
    Whence(u32),
    /// A userspace pointer; only its null-ness is semantically relevant.
    Ptr(u64),
}

impl<'a> ArgView<'a> {
    /// Borrows a view of an owned [`ArgValue`].
    #[must_use]
    pub fn of(arg: &'a ArgValue) -> ArgView<'a> {
        match arg {
            ArgValue::Int(v) => ArgView::Int(*v),
            ArgValue::UInt(v) => ArgView::UInt(*v),
            ArgValue::Fd(v) => ArgView::Fd(*v),
            ArgValue::Path(s) => ArgView::Path(s),
            ArgValue::Str(s) => ArgView::Str(s),
            ArgValue::Flags(v) => ArgView::Flags(*v),
            ArgValue::Mode(v) => ArgView::Mode(*v),
            ArgValue::Whence(v) => ArgView::Whence(*v),
            ArgValue::Ptr(v) => ArgView::Ptr(*v),
        }
    }

    /// Materializes the owned [`ArgValue`] equivalent of this view.
    #[must_use]
    pub fn to_owned_arg(self) -> ArgValue {
        match self {
            ArgView::Int(v) => ArgValue::Int(v),
            ArgView::UInt(v) => ArgValue::UInt(v),
            ArgView::Fd(v) => ArgValue::Fd(v),
            ArgView::Path(s) => ArgValue::Path(s.to_owned()),
            ArgView::Str(s) => ArgValue::Str(s.to_owned()),
            ArgView::Flags(v) => ArgValue::Flags(v),
            ArgView::Mode(v) => ArgValue::Mode(v),
            ArgView::Whence(v) => ArgValue::Whence(v),
            ArgView::Ptr(v) => ArgValue::Ptr(v),
        }
    }

    /// The path string, if this argument is a pathname.
    #[must_use]
    pub fn as_path(self) -> Option<&'a str> {
        match self {
            ArgView::Path(p) => Some(p),
            _ => None,
        }
    }
}

/// Uniform read access to one event, whether it is an owned
/// [`TraceEvent`] or a row of an [`EventBatch`].
///
/// The relevance tracker, the variant normalizer, and the report
/// accumulator are all generic over this trait, which is what
/// guarantees the keep/drop and partition decisions cannot diverge
/// between the owned-event path and the batch path.
pub trait EventView {
    /// Monotonic per-recorder sequence number.
    fn seq(&self) -> u64;
    /// Logical timestamp in nanoseconds.
    fn timestamp_ns(&self) -> u64;
    /// Process id of the issuing process.
    fn pid(&self) -> u32;
    /// Syscall name, e.g. `"openat2"`.
    fn name(&self) -> &str;
    /// Syscall ABI number.
    fn sysno(&self) -> u32;
    /// Raw return value: `>= 0` on success, `-errno` on failure.
    fn retval(&self) -> i64;
    /// Number of decoded arguments.
    fn arg_count(&self) -> usize;
    /// The argument at `index`, or `None` past the end.
    fn arg(&self, index: usize) -> Option<ArgView<'_>>;
}

impl EventView for TraceEvent {
    fn seq(&self) -> u64 {
        self.seq
    }
    fn timestamp_ns(&self) -> u64 {
        self.timestamp_ns
    }
    fn pid(&self) -> u32 {
        self.pid
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn sysno(&self) -> u32 {
        self.sysno
    }
    fn retval(&self) -> i64 {
        self.retval
    }
    fn arg_count(&self) -> usize {
        self.args.len()
    }
    fn arg(&self, index: usize) -> Option<ArgView<'_>> {
        self.args.get(index).map(ArgView::of)
    }
}

/// A struct-of-arrays batch of trace events. See the [module docs](self).
#[derive(Debug, Default, Clone)]
pub struct EventBatch {
    seq: Vec<u64>,
    timestamp_ns: Vec<u64>,
    pid: Vec<u32>,
    sysno: Vec<u32>,
    retval: Vec<i64>,
    /// Per-event index into `name_table`.
    name_id: Vec<u32>,
    /// Per-event `(start, len)` range into `args`.
    arg_range: Vec<(u32, u32)>,
    /// All arguments of all events, in event order.
    args: Vec<PackedArg>,
    /// Bump arena for `Path`/`Str` payload bytes.
    text: String,
    /// Distinct syscall names seen by this batch, in first-seen order.
    name_table: Vec<Arc<str>>,
    /// Reverse lookup for `name_table` (names repeat heavily; hashing a
    /// short name is far cheaper than allocating it).
    name_lookup: HashMap<Arc<str>, u32>,
}

impl EventBatch {
    /// Creates an empty batch.
    #[must_use]
    pub fn new() -> Self {
        EventBatch::default()
    }

    /// Creates an empty batch with column capacity for `events` events.
    #[must_use]
    pub fn with_capacity(events: usize) -> Self {
        EventBatch {
            seq: Vec::with_capacity(events),
            timestamp_ns: Vec::with_capacity(events),
            pid: Vec::with_capacity(events),
            sysno: Vec::with_capacity(events),
            retval: Vec::with_capacity(events),
            name_id: Vec::with_capacity(events),
            arg_range: Vec::with_capacity(events),
            args: Vec::with_capacity(events.saturating_mul(3)),
            ..EventBatch::default()
        }
    }

    /// Number of events in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the batch holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Interns `name` into the batch-local name table, allocating only
    /// the first time each distinct name is seen.
    fn intern_name(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_lookup.get(name) {
            return id;
        }
        self.insert_name(Arc::from(name))
    }

    /// Interns an already-shared name (e.g. an `.iotb` string-table
    /// entry) without copying the bytes.
    fn intern_name_arc(&mut self, name: &Arc<str>) -> u32 {
        if let Some(&id) = self.name_lookup.get(name.as_ref()) {
            return id;
        }
        self.insert_name(Arc::clone(name))
    }

    fn insert_name(&mut self, name: Arc<str>) -> u32 {
        let id = u32::try_from(self.name_table.len()).expect("batch name table overflow");
        self.name_table.push(Arc::clone(&name));
        self.name_lookup.insert(name, id);
        id
    }

    fn push_text(&mut self, payload: &str) -> PackedText {
        let start = u32::try_from(self.text.len()).expect("batch arena overflow");
        self.text.push_str(payload);
        let len = u32::try_from(payload.len()).expect("batch arena overflow");
        PackedText { start, len }
    }

    fn text_slice(&self, start: u32, len: u32) -> &str {
        &self.text[start as usize..(start + len) as usize]
    }

    /// Appends one owned event by copying it into the columns.
    pub fn push_event(&mut self, event: &TraceEvent) {
        let name_id = self.intern_name(&event.name);
        let start = u32::try_from(self.args.len()).expect("batch args overflow");
        for arg in &event.args {
            let packed = self.pack_arg(ArgView::of(arg));
            self.args.push(packed);
        }
        let len = u32::try_from(event.args.len()).expect("batch args overflow");
        self.push_head(
            event.seq,
            event.timestamp_ns,
            event.pid,
            name_id,
            event.sysno,
            event.retval,
            (start, len),
        );
    }

    fn pack_arg(&mut self, arg: ArgView<'_>) -> PackedArg {
        match arg {
            ArgView::Int(v) => PackedArg::Int(v),
            ArgView::UInt(v) => PackedArg::UInt(v),
            ArgView::Fd(v) => PackedArg::Fd(v),
            ArgView::Flags(v) => PackedArg::Flags(v),
            ArgView::Mode(v) => PackedArg::Mode(v),
            ArgView::Whence(v) => PackedArg::Whence(v),
            ArgView::Ptr(v) => PackedArg::Ptr(v),
            ArgView::Path(s) => {
                let PackedText { start, len } = self.push_text(s);
                PackedArg::Path { start, len }
            }
            ArgView::Str(s) => {
                let PackedText { start, len } = self.push_text(s);
                PackedArg::Str { start, len }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_head(
        &mut self,
        seq: u64,
        timestamp_ns: u64,
        pid: u32,
        name_id: u32,
        sysno: u32,
        retval: i64,
        arg_range: (u32, u32),
    ) {
        self.seq.push(seq);
        self.timestamp_ns.push(timestamp_ns);
        self.pid.push(pid);
        self.name_id.push(name_id);
        self.sysno.push(sysno);
        self.retval.push(retval);
        self.arg_range.push(arg_range);
    }

    /// Copies row `row` of `other` into this batch: columns are copied,
    /// the name is re-interned by `Arc` identity (no byte copy for
    /// repeat names), and path/str payloads are re-based into this
    /// batch's arena. Allocation-free per event once tables warm up.
    ///
    /// # Panics
    ///
    /// Panics if `row >= other.len()`.
    pub fn append_row(&mut self, other: &EventBatch, row: usize) {
        assert!(row < other.len(), "append_row: row {row} out of bounds");
        let name_id = self.intern_name_arc(&other.name_table[other.name_id[row] as usize]);
        let (ostart, olen) = other.arg_range[row];
        let start = u32::try_from(self.args.len()).expect("batch args overflow");
        for i in ostart..ostart + olen {
            let packed = match other.args[i as usize] {
                PackedArg::Path { start, len } => {
                    let t = self.push_text(other.text_slice(start, len));
                    PackedArg::Path {
                        start: t.start,
                        len: t.len,
                    }
                }
                PackedArg::Str { start, len } => {
                    let t = self.push_text(other.text_slice(start, len));
                    PackedArg::Str {
                        start: t.start,
                        len: t.len,
                    }
                }
                scalar => scalar,
            };
            self.args.push(packed);
        }
        self.push_head(
            other.seq[row],
            other.timestamp_ns[row],
            other.pid[row],
            name_id,
            other.sysno[row],
            other.retval[row],
            (start, olen),
        );
    }

    /// Appends every row of `other`, in order — [`EventBatch::append_row`]
    /// over the whole batch, used to coalesce sub-threshold batches
    /// without materializing owned events.
    pub fn append_batch(&mut self, other: &EventBatch) {
        for row in 0..other.len() {
            self.append_row(other, row);
        }
    }

    /// Begins a decoder-driven row: pushes arguments first via the
    /// returned builder, then seals the head columns. If the builder is
    /// dropped without [`RowBuilder::commit`], the partially-pushed
    /// arguments and arena bytes are rolled back and the batch is left
    /// exactly as before — malformed records never leave partial rows.
    pub(crate) fn begin_row(&mut self) -> RowBuilder<'_> {
        let arg_mark = self.args.len();
        let text_mark = self.text.len();
        RowBuilder {
            batch: self,
            arg_mark,
            text_mark,
            committed: false,
        }
    }

    /// Builds a batch by copying a slice of owned events.
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut batch = EventBatch::with_capacity(events.len());
        for event in events {
            batch.push_event(event);
        }
        batch
    }

    /// Materializes every row as an owned [`TraceEvent`]. Lossless
    /// inverse of [`EventBatch::from_events`].
    #[must_use]
    pub fn to_events(&self) -> Vec<TraceEvent> {
        self.iter().map(|e| e.to_event()).collect()
    }

    /// The event at `row`, or `None` past the end.
    #[must_use]
    pub fn get(&self, row: usize) -> Option<EventRef<'_>> {
        (row < self.len()).then_some(EventRef { batch: self, row })
    }

    /// Iterates the batch rows as borrowed [`EventRef`]s.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = EventRef<'_>> + '_ {
        (0..self.len()).map(move |row| EventRef { batch: self, row })
    }

    /// Estimated number of heap allocations the owned
    /// `Vec<TraceEvent>` representation of this batch would need: one
    /// name `String` and one args `Vec` per event, plus one `String`
    /// per path/str argument. The batch itself amortizes all of these
    /// into O(columns) buffers; the pipeline metrics report this figure
    /// as `allocs_estimated` so the saving is observable.
    #[must_use]
    pub fn estimated_owned_allocs(&self) -> u64 {
        let texts = self
            .args
            .iter()
            .filter(|a| matches!(a, PackedArg::Path { .. } | PackedArg::Str { .. }))
            .count() as u64;
        (self.len() as u64) * 2 + texts
    }
}

impl From<Vec<TraceEvent>> for EventBatch {
    fn from(events: Vec<TraceEvent>) -> Self {
        EventBatch::from_events(&events)
    }
}

struct PackedText {
    start: u32,
    len: u32,
}

/// An in-progress decoder row; see [`EventBatch::begin_row`].
pub(crate) struct RowBuilder<'a> {
    batch: &'a mut EventBatch,
    arg_mark: usize,
    text_mark: usize,
    committed: bool,
}

impl RowBuilder<'_> {
    /// Appends one argument to the pending row.
    pub(crate) fn push_arg(&mut self, arg: ArgView<'_>) {
        let packed = self.batch.pack_arg(arg);
        self.batch.args.push(packed);
    }

    /// Interns the syscall name for the pending row without copying.
    pub(crate) fn intern_name_arc(&mut self, name: &Arc<str>) -> u32 {
        self.batch.intern_name_arc(name)
    }

    /// Seals the row by pushing the head columns.
    pub(crate) fn commit(
        mut self,
        seq: u64,
        timestamp_ns: u64,
        pid: u32,
        name_id: u32,
        sysno: u32,
        retval: i64,
    ) {
        let start = u32::try_from(self.arg_mark).expect("batch args overflow");
        let len = u32::try_from(self.batch.args.len() - self.arg_mark).expect("batch overflow");
        self.batch
            .push_head(seq, timestamp_ns, pid, name_id, sysno, retval, (start, len));
        self.committed = true;
    }
}

impl Drop for RowBuilder<'_> {
    fn drop(&mut self) {
        if !self.committed {
            // Abandoned row (decode error): roll back its args and arena
            // bytes. A name interned for the row may survive in the name
            // table; that is harmless (it is never referenced by a row).
            self.batch.args.truncate(self.arg_mark);
            self.batch.text.truncate(self.text_mark);
        }
    }
}

/// A borrowed, `Copy` view of one row of an [`EventBatch`].
#[derive(Debug, Clone, Copy)]
pub struct EventRef<'a> {
    batch: &'a EventBatch,
    row: usize,
}

impl<'a> EventRef<'a> {
    /// The syscall name, borrowed from the batch name table.
    #[must_use]
    pub fn name(self) -> &'a str {
        &self.batch.name_table[self.batch.name_id[self.row] as usize]
    }

    /// The argument at `index`, borrowed from the batch columns.
    #[must_use]
    pub fn arg(self, index: usize) -> Option<ArgView<'a>> {
        let (start, len) = self.batch.arg_range[self.row];
        if index >= len as usize {
            return None;
        }
        let packed = self.batch.args[start as usize + index];
        Some(match packed {
            PackedArg::Int(v) => ArgView::Int(v),
            PackedArg::UInt(v) => ArgView::UInt(v),
            PackedArg::Fd(v) => ArgView::Fd(v),
            PackedArg::Flags(v) => ArgView::Flags(v),
            PackedArg::Mode(v) => ArgView::Mode(v),
            PackedArg::Whence(v) => ArgView::Whence(v),
            PackedArg::Ptr(v) => ArgView::Ptr(v),
            PackedArg::Path { start, len } => ArgView::Path(self.batch.text_slice(start, len)),
            PackedArg::Str { start, len } => ArgView::Str(self.batch.text_slice(start, len)),
        })
    }

    /// Materializes this row as an owned [`TraceEvent`].
    #[must_use]
    pub fn to_event(self) -> TraceEvent {
        let (_, len) = self.batch.arg_range[self.row];
        let args = (0..len as usize)
            .map(|i| self.arg(i).expect("in-range arg").to_owned_arg())
            .collect();
        TraceEvent {
            seq: self.batch.seq[self.row],
            timestamp_ns: self.batch.timestamp_ns[self.row],
            pid: self.batch.pid[self.row],
            name: self.name().to_owned(),
            sysno: self.batch.sysno[self.row],
            args,
            retval: self.batch.retval[self.row],
        }
    }
}

impl EventView for EventRef<'_> {
    fn seq(&self) -> u64 {
        self.batch.seq[self.row]
    }
    fn timestamp_ns(&self) -> u64 {
        self.batch.timestamp_ns[self.row]
    }
    fn pid(&self) -> u32 {
        self.batch.pid[self.row]
    }
    fn name(&self) -> &str {
        EventRef::name(*self)
    }
    fn sysno(&self) -> u32 {
        self.batch.sysno[self.row]
    }
    fn retval(&self) -> i64 {
        self.batch.retval[self.row]
    }
    fn arg_count(&self) -> usize {
        self.batch.arg_range[self.row].1 as usize
    }
    fn arg(&self, index: usize) -> Option<ArgView<'_>> {
        EventRef::arg(*self, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let mut e1 = TraceEvent::build(
            "openat",
            257,
            vec![
                ArgValue::Fd(-100),
                ArgValue::Path("/mnt/test/a".into()),
                ArgValue::Flags(0x41),
                ArgValue::Mode(0o644),
            ],
            3,
        );
        e1.seq = 1;
        e1.timestamp_ns = 10;
        e1.pid = 42;
        let mut e2 = TraceEvent::build("read", 0, vec![ArgValue::Fd(3), ArgValue::UInt(4096)], 17);
        e2.seq = 2;
        e2.timestamp_ns = 20;
        e2.pid = 42;
        let mut e3 = TraceEvent::build(
            "setxattr",
            188,
            vec![
                ArgValue::Path("b".into()),
                ArgValue::Str("user.k".into()),
                ArgValue::Ptr(1),
                ArgValue::UInt(4),
                ArgValue::Flags(0),
            ],
            -2,
        );
        e3.seq = 3;
        e3.timestamp_ns = 30;
        e3.pid = 43;
        vec![e1, e2, e3]
    }

    #[test]
    fn roundtrip_is_lossless() {
        let events = sample_events();
        let batch = EventBatch::from_events(&events);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.to_events(), events);
    }

    #[test]
    fn refs_mirror_owned_events() {
        let events = sample_events();
        let batch = EventBatch::from_events(&events);
        for (event, row) in events.iter().zip(batch.iter()) {
            assert_eq!(EventView::seq(event), EventView::seq(&row));
            assert_eq!(EventView::pid(event), EventView::pid(&row));
            assert_eq!(EventView::name(event), EventView::name(&row));
            assert_eq!(EventView::sysno(event), EventView::sysno(&row));
            assert_eq!(EventView::retval(event), EventView::retval(&row));
            assert_eq!(EventView::arg_count(event), EventView::arg_count(&row));
            for i in 0..event.args.len() {
                assert_eq!(EventView::arg(event, i), EventView::arg(&row, i));
            }
            assert_eq!(EventView::arg(&row, event.args.len()), None);
        }
    }

    #[test]
    fn names_are_deduplicated() {
        let mut events = Vec::new();
        for seq in 0..100 {
            let mut e = TraceEvent::build("close", 3, vec![ArgValue::Fd(3)], 0);
            e.seq = seq;
            events.push(e);
        }
        let batch = EventBatch::from_events(&events);
        assert_eq!(batch.name_table.len(), 1);
        assert_eq!(batch.len(), 100);
    }

    #[test]
    fn append_row_rebases_text() {
        let events = sample_events();
        let src = EventBatch::from_events(&events);
        let mut dst = EventBatch::new();
        // Copy in reverse so the arena offsets cannot line up by luck.
        for row in (0..src.len()).rev() {
            dst.append_row(&src, row);
        }
        let mut copied = dst.to_events();
        copied.reverse();
        assert_eq!(copied, events);
    }

    #[test]
    fn abandoned_row_rolls_back() {
        let mut batch = EventBatch::from_events(&sample_events());
        let args_before = batch.args.len();
        let text_before = batch.text.len();
        {
            let mut row = batch.begin_row();
            row.push_arg(ArgView::Path("/poisoned"));
            row.push_arg(ArgView::Fd(9));
            // dropped without commit
        }
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.args.len(), args_before);
        assert_eq!(batch.text.len(), text_before);
        assert_eq!(batch.to_events(), sample_events());
    }

    #[test]
    fn estimated_owned_allocs_counts_names_vecs_and_texts() {
        let batch = EventBatch::from_events(&sample_events());
        // 3 events × (name + args vec) + 3 path/str payloads.
        assert_eq!(batch.estimated_owned_allocs(), 9);
    }

    #[test]
    fn empty_batch() {
        let batch = EventBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.iter().count(), 0);
        assert!(batch.get(0).is_none());
        assert_eq!(batch.estimated_owned_allocs(), 0);
    }
}
