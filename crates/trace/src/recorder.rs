//! The trace recorder: thread-safe event sink with optional ring buffering.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::event::TraceEvent;
use crate::Trace;

/// Statistics about a recording session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderStats {
    /// Events accepted into the buffer.
    pub recorded: u64,
    /// Events discarded because the ring buffer was full (oldest-first),
    /// mirroring LTTng's `discard`/`overwrite` accounting.
    pub dropped: u64,
}

/// A thread-safe syscall-event sink.
///
/// Mirrors the essential behaviour of an LTTng session:
///
/// * recording can be paused/resumed ([`set_enabled`](Self::set_enabled));
/// * an optional capacity bound turns the buffer into a ring that
///   overwrites the oldest events and counts drops;
/// * each accepted event is stamped with a monotonic sequence number and a
///   logical nanosecond timestamp (deterministic, not wall-clock, so runs
///   are reproducible).
///
/// ```
/// use iocov_trace::{Recorder, TraceEvent};
///
/// let rec = Recorder::with_capacity(2);
/// for i in 0..3 {
///     rec.record(TraceEvent::build("close", 3, vec![], i));
/// }
/// let stats = rec.stats();
/// assert_eq!(stats.recorded, 3);
/// assert_eq!(stats.dropped, 1);
/// assert_eq!(rec.take().len(), 2);
/// ```
#[derive(Debug)]
pub struct Recorder {
    buffer: Mutex<VecDeque<TraceEvent>>,
    capacity: Option<usize>,
    enabled: AtomicBool,
    seq: AtomicU64,
    clock_ns: AtomicU64,
    dropped: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An unbounded recorder.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            buffer: Mutex::new(VecDeque::new()),
            capacity: None,
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            clock_ns: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// A ring-buffered recorder keeping at most `capacity` events
    /// (oldest events are overwritten and counted as dropped).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            buffer: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity: Some(capacity),
            ..Recorder::new()
        }
    }

    /// Pauses or resumes recording. Events arriving while paused are
    /// silently ignored (not counted as drops), like a stopped LTTng
    /// session.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the recorder currently accepts events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records an event, stamping `seq`, `timestamp_ns`, and leaving `pid`
    /// as provided by the caller.
    pub fn record(&self, mut event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // Logical clock: 1 µs per event keeps timestamps strictly
        // increasing and human-scaled without being wall-clock dependent.
        event.timestamp_ns = self.clock_ns.fetch_add(1_000, Ordering::Relaxed);
        let mut buf = self.buffer.lock();
        if let Some(cap) = self.capacity {
            if buf.len() >= cap && cap > 0 {
                buf.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            if cap == 0 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        buf.push_back(event);
    }

    /// Number of currently buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffer.lock().len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buffer.lock().is_empty()
    }

    /// Session statistics (total recorded and dropped).
    #[must_use]
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            recorded: self.seq.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Drains the buffer into a [`Trace`], leaving the recorder running
    /// (sequence numbers keep increasing across takes).
    #[must_use]
    pub fn take(&self) -> Trace {
        let mut buf = self.buffer.lock();
        Trace::from_events(buf.drain(..).collect())
    }

    /// Copies the current buffer contents without draining.
    #[must_use]
    pub fn peek(&self) -> Trace {
        let buf = self.buffer.lock();
        Trace::from_events(buf.iter().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArgValue;

    fn ev(retval: i64) -> TraceEvent {
        TraceEvent::build("read", 0, vec![ArgValue::Fd(3)], retval)
    }

    #[test]
    fn record_stamps_monotonic_identity() {
        let rec = Recorder::new();
        rec.record(ev(1));
        rec.record(ev(2));
        let t = rec.take();
        assert_eq!(t.events()[0].seq, 0);
        assert_eq!(t.events()[1].seq, 1);
        assert!(t.events()[0].timestamp_ns < t.events()[1].timestamp_ns);
    }

    #[test]
    fn disabled_recorder_ignores_events() {
        let rec = Recorder::new();
        rec.set_enabled(false);
        assert!(!rec.is_enabled());
        rec.record(ev(0));
        assert!(rec.is_empty());
        assert_eq!(rec.stats().recorded, 0);
        rec.set_enabled(true);
        rec.record(ev(0));
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let rec = Recorder::with_capacity(3);
        for i in 0..5 {
            rec.record(ev(i));
        }
        let t = rec.take();
        assert_eq!(t.len(), 3);
        let retvals: Vec<i64> = t.iter().map(|e| e.retval).collect();
        assert_eq!(retvals, [2, 3, 4]);
        assert_eq!(rec.stats().dropped, 2);
        assert_eq!(rec.stats().recorded, 5);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let rec = Recorder::with_capacity(0);
        rec.record(ev(0));
        assert!(rec.is_empty());
        assert_eq!(rec.stats().dropped, 1);
    }

    #[test]
    fn take_drains_but_keeps_sequencing() {
        let rec = Recorder::new();
        rec.record(ev(0));
        let first = rec.take();
        assert_eq!(first.len(), 1);
        assert!(rec.is_empty());
        rec.record(ev(0));
        let second = rec.take();
        assert_eq!(second.events()[0].seq, 1);
    }

    #[test]
    fn peek_does_not_drain() {
        let rec = Recorder::new();
        rec.record(ev(0));
        assert_eq!(rec.peek().len(), 1);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing_when_unbounded() {
        let rec = std::sync::Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rec = std::sync::Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    rec.record(ev(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.len(), 2000);
        let t = rec.take();
        let mut seqs: Vec<u64> = t.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 2000, "sequence numbers must be unique");
    }
}
