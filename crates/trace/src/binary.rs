//! The `.iotb` compact binary trace format.
//!
//! JSONL pays a full serde parse and several heap `String`s per event.
//! `.iotb` stores every distinct string — syscall names, paths, xattr
//! keys — exactly once in a leading string table, and each record
//! references them as 4-byte symbols, so re-reading a multi-million-event
//! trace is a linear scan of fixed-width little-endian fields.
//!
//! # Layout (version 1)
//!
//! ```text
//! magic    4 bytes  b"IOTB"
//! version  u32 LE   1
//! strings  u32 LE count, then count × (u32 LE byte length, UTF-8 bytes)
//! checksum u64 LE   FNV-1a over the string entries (lengths + bytes)
//! records  until EOF:
//!   u32 LE payload length, then the payload:
//!     seq u64, timestamp_ns u64, pid u32, name Sym u32, sysno u32,
//!     retval i64, argc u32, then argc × (tag u8, value)
//! ```
//!
//! Argument tags: `0` Int(i64) `1` UInt(u64) `2` Fd(i32) `3` Path(Sym)
//! `4` Str(Sym) `5` Flags(u32) `6` Mode(u32) `7` Whence(u32) `8` Ptr(u64).
//!
//! # Layout (version 2, block-indexed)
//!
//! Version 2 ([`write_iotb_indexed`]) keeps the header, string table,
//! and record encoding of version 1 byte-for-byte, and appends an index
//! that lets a reader decode disjoint block ranges in parallel:
//!
//! ```text
//! records  grouped into blocks of up to N events each
//! sentinel u32 LE 0xFFFF_FFFF  (an impossible record length prefix)
//! index    u32 LE block count, then per block:
//!            u64 LE absolute byte offset of the block's first prefix
//!            u64 LE block byte length (prefixes + payloads)
//!            u64 LE event count
//!            u64 LE FNV-1a over the block's bytes
//!          u64 LE FNV-1a over the index bytes above
//! footer   u64 LE absolute byte offset of the index, 8 bytes b"IOTBXEND"
//! ```
//!
//! The serial reader ([`IotbCursor`]) streams a v2 container exactly
//! like v1 and treats the sentinel as a clean end of records; the index
//! is consumed only by the parallel
//! [`IotbBlockSource`](crate::IotbBlockSource), which verifies the
//! per-block checksums it actually decodes. Index integrity is the
//! indexed decoder's concern: corruption there is fatal to indexed
//! opens ([`read_block_index`]), while the serial path ignores the
//! index entirely.
//!
//! Versioning rule: readers reject any other `version` outright — records
//! are not self-describing, so there is no forward-compatible partial
//! read. Adding argument tags is allowed within a version only for tags
//! old readers could never have produced errors on (i.e. never, in
//! practice — bump the version instead).
//!
//! # Failure model
//!
//! The header and string table are load-bearing for every record, so
//! corruption there is fatal even in lossy mode ([`TraceIoError::Binary`]).
//! Past the table, [`read_iotb_lossy`] degrades per record exactly like
//! [`read_jsonl_lossy`](crate::read_jsonl_lossy): a record whose payload
//! decodes wrong is skipped with [`ErrorClass::MalformedRecord`] and the
//! scan continues at the next length prefix; a record cut off by EOF is
//! skipped with [`ErrorClass::TruncatedTail`] and ends the scan. A length
//! prefix larger than [`MAX_RECORD_LEN`] means the framing itself is
//! gone, so the scan records one skip and stops rather than chase a
//! corrupt offset. Skips report 1-based *record* ordinals in
//! [`SkippedLine::line`].

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Read, Write};
use std::sync::Arc;

use crate::batch::{ArgView, EventBatch};
use crate::cursor::CursorState;
use crate::event::{ArgValue, TraceEvent};
use crate::intern::StrInterner;
use crate::lossy::{ErrorClass, ErrorPolicy, LossyRead, ReadOptions, SkippedLine};
use crate::serial::TraceIoError;
use crate::Trace;

/// The `.iotb` magic bytes.
pub const IOTB_MAGIC: [u8; 4] = *b"IOTB";

/// The plain serial container version.
pub const IOTB_VERSION: u32 = 1;

/// The block-indexed container version ([`write_iotb_indexed`]).
pub const IOTB_VERSION_INDEXED: u32 = 2;

/// Default events per index block in a v2 container — small enough to
/// spread a medium trace over many workers, large enough that the
/// 32-byte index entry and per-block checksum are noise.
pub const DEFAULT_BLOCK_EVENTS: usize = 4096;

/// The 8 trailing bytes of a v2 container, preceded by the u64 index
/// offset. Sniffable without parsing the front of the file.
pub const IOTB_INDEX_FOOTER_MAGIC: [u8; 8] = *b"IOTBXEND";

/// Length-prefix value that terminates the record region of a v2
/// container. Above [`MAX_RECORD_LEN`] by construction, so a reader
/// that ignores versions would stop with "framing lost" instead of
/// misreading the index as records.
pub(crate) const INDEX_SENTINEL: u32 = u32::MAX;

/// Upper bound on one record's payload length. A longer prefix can only
/// come from corrupted framing: even a pathological event with thousands
/// of maximum-width arguments stays far below this.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// Upper bound on one string-table entry's byte length.
const MAX_STRING_LEN: usize = 1 << 20;

/// Upper bound on the string-table entry count, to refuse absurd
/// allocations from a corrupt header before reading entry data.
const MAX_STRINGS: usize = 1 << 24;

/// Preallocation caps for untrusted table metadata. A declared entry
/// count or byte length is trusted only up to these bounds before the
/// bytes actually arrive; anything larger grows incrementally, so a
/// 12-byte forged header cannot demand hundreds of megabytes up front.
const TABLE_PREALLOC_ENTRIES: usize = 1 << 12;
const STRING_PREALLOC_BYTES: usize = 1 << 13;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Whether `bytes` starts with the `.iotb` magic — the format sniff used
/// by `iocov analyze --format=auto`.
#[must_use]
pub fn is_iotb(bytes: &[u8]) -> bool {
    bytes.len() >= IOTB_MAGIC.len() && bytes[..IOTB_MAGIC.len()] == IOTB_MAGIC
}

pub(crate) fn binary_error(detail: impl Into<String>) -> TraceIoError {
    TraceIoError::Binary {
        detail: detail.into(),
    }
}

/// Writes a trace in `.iotb` form. The string table is built in
/// first-appearance order over event names and `Path`/`Str` arguments.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the writer fails.
pub fn write_iotb<W: Write>(writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    let mut w = BufWriter::new(writer);
    let interner = intern_trace(trace);
    write_header_and_table(&mut w, &interner, IOTB_VERSION)?;

    let mut payload = Vec::new();
    for event in trace.iter() {
        payload.clear();
        encode_record(&mut payload, event, &interner);
        let len = u32::try_from(payload.len()).map_err(|_| binary_error("record too large"))?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&payload)?;
    }
    w.flush()?;
    Ok(())
}

/// Interns every string the trace's records will reference, in
/// first-appearance order.
fn intern_trace(trace: &Trace) -> StrInterner {
    let interner = StrInterner::new();
    for event in trace.iter() {
        interner.intern(&event.name);
        for arg in &event.args {
            if let ArgValue::Path(s) | ArgValue::Str(s) = arg {
                interner.intern(s);
            }
        }
    }
    interner
}

/// Writes the magic, version, string table, and table checksum,
/// returning the total bytes written (= the first record's offset).
fn write_header_and_table<W: Write>(
    w: &mut W,
    interner: &StrInterner,
    version: u32,
) -> Result<u64, TraceIoError> {
    w.write_all(&IOTB_MAGIC)?;
    w.write_all(&version.to_le_bytes())?;
    let table = interner.snapshot();
    let count = u32::try_from(table.len()).map_err(|_| binary_error("string table too large"))?;
    w.write_all(&count.to_le_bytes())?;
    let mut hash = FNV_OFFSET;
    let mut written = 12u64;
    for s in &table {
        let len = u32::try_from(s.len()).map_err(|_| binary_error("string too long"))?;
        let len_bytes = len.to_le_bytes();
        hash = fnv1a(&len_bytes, hash);
        hash = fnv1a(s.as_bytes(), hash);
        w.write_all(&len_bytes)?;
        w.write_all(s.as_bytes())?;
        written += 4 + s.len() as u64;
    }
    w.write_all(&hash.to_le_bytes())?;
    Ok(written + 8)
}

/// One entry of a v2 container's block index: a decodable,
/// independently checksummed run of whole records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IotbBlock {
    /// Absolute byte offset of the block's first length prefix.
    pub offset: u64,
    /// Byte length of the block (prefixes + payloads).
    pub byte_len: u64,
    /// Events encoded in the block.
    pub events: u64,
    /// FNV-1a over the block's bytes.
    pub checksum: u64,
}

/// Writes a trace as a block-indexed v2 container: identical record
/// bytes to [`write_iotb`], grouped into blocks of up to `block_events`
/// events, followed by the sentinel, index, and footer (see the
/// [module docs](self)).
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the writer fails.
pub fn write_iotb_indexed<W: Write>(
    writer: W,
    trace: &Trace,
    block_events: usize,
) -> Result<(), TraceIoError> {
    let block_events = block_events.max(1);
    let mut w = BufWriter::new(writer);
    let interner = intern_trace(trace);
    let mut offset = write_header_and_table(&mut w, &interner, IOTB_VERSION_INDEXED)?;

    let mut blocks: Vec<IotbBlock> = Vec::new();
    let mut block_start = offset;
    let mut block_hash = FNV_OFFSET;
    let mut block_count = 0u64;
    let mut payload = Vec::new();
    for event in trace.iter() {
        payload.clear();
        encode_record(&mut payload, event, &interner);
        let len = u32::try_from(payload.len()).map_err(|_| binary_error("record too large"))?;
        let len_bytes = len.to_le_bytes();
        w.write_all(&len_bytes)?;
        w.write_all(&payload)?;
        block_hash = fnv1a(&len_bytes, block_hash);
        block_hash = fnv1a(&payload, block_hash);
        offset += 4 + payload.len() as u64;
        block_count += 1;
        if block_count as usize == block_events {
            blocks.push(IotbBlock {
                offset: block_start,
                byte_len: offset - block_start,
                events: block_count,
                checksum: block_hash,
            });
            block_start = offset;
            block_hash = FNV_OFFSET;
            block_count = 0;
        }
    }
    if block_count > 0 {
        blocks.push(IotbBlock {
            offset: block_start,
            byte_len: offset - block_start,
            events: block_count,
            checksum: block_hash,
        });
    }

    w.write_all(&INDEX_SENTINEL.to_le_bytes())?;
    let index_offset = offset + 4;
    let count = u32::try_from(blocks.len()).map_err(|_| binary_error("block index too large"))?;
    let mut index_bytes = Vec::with_capacity(4 + blocks.len() * 32);
    index_bytes.extend_from_slice(&count.to_le_bytes());
    for block in &blocks {
        index_bytes.extend_from_slice(&block.offset.to_le_bytes());
        index_bytes.extend_from_slice(&block.byte_len.to_le_bytes());
        index_bytes.extend_from_slice(&block.events.to_le_bytes());
        index_bytes.extend_from_slice(&block.checksum.to_le_bytes());
    }
    let index_hash = fnv1a(&index_bytes, FNV_OFFSET);
    w.write_all(&index_bytes)?;
    w.write_all(&index_hash.to_le_bytes())?;
    w.write_all(&index_offset.to_le_bytes())?;
    w.write_all(&IOTB_INDEX_FOOTER_MAGIC)?;
    w.flush()?;
    Ok(())
}

/// Parses the block index of a complete in-memory container. Returns
/// `Ok(None)` for a v1 container (no index to parse).
///
/// The index checksum and the structural sanity of every entry are
/// verified here; per-block data checksums are verified by the decoder
/// that actually reads each block.
///
/// # Errors
///
/// Returns [`TraceIoError::Binary`] when a v2 container's sentinel,
/// index, or footer is missing or corrupt — fatal for indexed opens,
/// by the same rule that makes string-table corruption fatal.
pub fn read_block_index(bytes: &[u8]) -> Result<Option<Vec<IotbBlock>>, TraceIoError> {
    if bytes.len() < 12 || !is_iotb(bytes) {
        return Err(binary_error("bad magic: not an .iotb trace"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version == IOTB_VERSION {
        return Ok(None);
    }
    if version != IOTB_VERSION_INDEXED {
        return Err(binary_error(format!(
            "unsupported version {version} (expected {IOTB_VERSION} or {IOTB_VERSION_INDEXED})"
        )));
    }
    if bytes.len() < 16 || bytes[bytes.len() - 8..] != IOTB_INDEX_FOOTER_MAGIC {
        return Err(binary_error("v2 container is missing its index footer"));
    }
    let index_offset = u64::from_le_bytes(
        bytes[bytes.len() - 16..bytes.len() - 8]
            .try_into()
            .expect("8 bytes"),
    );
    let index_start = usize::try_from(index_offset)
        .ok()
        .filter(|&start| start >= 16 && start + 12 <= bytes.len())
        .ok_or_else(|| binary_error("v2 index offset out of range"))?;
    if bytes[index_start - 4..index_start] != INDEX_SENTINEL.to_le_bytes() {
        return Err(binary_error("v2 record sentinel missing before index"));
    }
    let count = u32::from_le_bytes(
        bytes[index_start..index_start + 4]
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    let entries_len = count
        .checked_mul(32)
        .filter(|&n| index_start + 4 + n + 8 + 16 == bytes.len())
        .ok_or_else(|| binary_error("v2 index length does not match the container"))?;
    let index_bytes = &bytes[index_start..index_start + 4 + entries_len];
    let stored = u64::from_le_bytes(
        bytes[index_start + 4 + entries_len..index_start + 4 + entries_len + 8]
            .try_into()
            .expect("8 bytes"),
    );
    let computed = fnv1a(index_bytes, FNV_OFFSET);
    if stored != computed {
        return Err(binary_error(format!(
            "v2 index checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    let sentinel_at = index_start as u64 - 4;
    let mut blocks = Vec::with_capacity(count.min(TABLE_PREALLOC_ENTRIES));
    let mut expected_offset: Option<u64> = None;
    for entry in index_bytes[4..].chunks_exact(32) {
        let block = IotbBlock {
            offset: u64::from_le_bytes(entry[0..8].try_into().expect("8 bytes")),
            byte_len: u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes")),
            events: u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes")),
            checksum: u64::from_le_bytes(entry[24..32].try_into().expect("8 bytes")),
        };
        let contiguous = expected_offset.is_none_or(|at| at == block.offset);
        let end = block.offset.checked_add(block.byte_len);
        if !contiguous || block.byte_len == 0 || end.is_none_or(|end| end > sentinel_at) {
            return Err(binary_error(format!(
                "v2 index entry at offset {} does not describe the record region",
                block.offset
            )));
        }
        expected_offset = end;
        blocks.push(block);
    }
    Ok(Some(blocks))
}

fn encode_record(out: &mut Vec<u8>, event: &TraceEvent, interner: &StrInterner) {
    out.extend_from_slice(&event.seq.to_le_bytes());
    out.extend_from_slice(&event.timestamp_ns.to_le_bytes());
    out.extend_from_slice(&event.pid.to_le_bytes());
    out.extend_from_slice(&interner.intern(&event.name).index().to_le_bytes());
    out.extend_from_slice(&event.sysno.to_le_bytes());
    out.extend_from_slice(&event.retval.to_le_bytes());
    out.extend_from_slice(&(event.args.len() as u32).to_le_bytes());
    for arg in &event.args {
        match arg {
            ArgValue::Int(v) => {
                out.push(0);
                out.extend_from_slice(&v.to_le_bytes());
            }
            ArgValue::UInt(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            ArgValue::Fd(v) => {
                out.push(2);
                out.extend_from_slice(&v.to_le_bytes());
            }
            ArgValue::Path(s) => {
                out.push(3);
                out.extend_from_slice(&interner.intern(s).index().to_le_bytes());
            }
            ArgValue::Str(s) => {
                out.push(4);
                out.extend_from_slice(&interner.intern(s).index().to_le_bytes());
            }
            ArgValue::Flags(v) => {
                out.push(5);
                out.extend_from_slice(&v.to_le_bytes());
            }
            ArgValue::Mode(v) => {
                out.push(6);
                out.extend_from_slice(&v.to_le_bytes());
            }
            ArgValue::Whence(v) => {
                out.push(7);
                out.extend_from_slice(&v.to_le_bytes());
            }
            ArgValue::Ptr(v) => {
                out.push(8);
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
}

/// How much of a fixed-size read actually arrived; `Partial` carries
/// the byte count that did.
enum Fill {
    Full,
    Eof,
    Partial(usize),
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<Fill> {
    let mut n = 0;
    while n < buf.len() {
        match r.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(if n == buf.len() {
        Fill::Full
    } else if n == 0 {
        Fill::Eof
    } else {
        Fill::Partial(n)
    })
}

/// Reads and verifies the header + string table, returning the table,
/// the absolute byte offset of the first record's length prefix (the
/// anchor [`IotbCursor`] checkpoints are measured from), and the
/// container version.
///
/// Every count and length here is attacker-controlled until the
/// checksum verifies, so buffers are preallocated only up to fixed
/// caps and grown as bytes actually arrive — a forged header earns an
/// allocation proportional to the file, never to its own claims.
pub(crate) fn read_table<R: Read>(r: &mut R) -> Result<(Vec<Arc<str>>, u64, u32), TraceIoError> {
    let mut header = [0u8; 12];
    match read_exact_or_eof(r, &mut header)? {
        Fill::Full => {}
        Fill::Eof | Fill::Partial(_) => return Err(binary_error("truncated header")),
    }
    if header[..4] != IOTB_MAGIC {
        return Err(binary_error("bad magic: not an .iotb trace"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != IOTB_VERSION && version != IOTB_VERSION_INDEXED {
        return Err(binary_error(format!(
            "unsupported version {version} (expected {IOTB_VERSION} or {IOTB_VERSION_INDEXED})"
        )));
    }
    let count = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
    if count > MAX_STRINGS {
        return Err(binary_error(format!(
            "string table count {count} too large"
        )));
    }
    let mut table = Vec::with_capacity(count.min(TABLE_PREALLOC_ENTRIES));
    let mut hash = FNV_OFFSET;
    let mut consumed = 12u64;
    let mut chunk = [0u8; 8192];
    for index in 0..count {
        let mut len_bytes = [0u8; 4];
        match read_exact_or_eof(r, &mut len_bytes)? {
            Fill::Full => {}
            _ => {
                return Err(binary_error(format!(
                    "truncated string table at entry {index}"
                )))
            }
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_STRING_LEN {
            return Err(binary_error(format!(
                "string table entry {index} length {len} too large"
            )));
        }
        let mut bytes = Vec::with_capacity(len.min(STRING_PREALLOC_BYTES));
        while bytes.len() < len {
            let want = (len - bytes.len()).min(chunk.len());
            match read_exact_or_eof(r, &mut chunk[..want])? {
                Fill::Full => bytes.extend_from_slice(&chunk[..want]),
                _ => {
                    return Err(binary_error(format!(
                        "truncated string table at entry {index}"
                    )))
                }
            }
        }
        hash = fnv1a(&len_bytes, hash);
        hash = fnv1a(&bytes, hash);
        consumed += 4 + len as u64;
        let s = String::from_utf8(bytes)
            .map_err(|_| binary_error(format!("string table entry {index} is not valid UTF-8")))?;
        table.push(Arc::from(s.as_str()));
    }
    let mut checksum = [0u8; 8];
    match read_exact_or_eof(r, &mut checksum)? {
        Fill::Full => {}
        _ => return Err(binary_error("truncated string table checksum")),
    }
    let stored = u64::from_le_bytes(checksum);
    if stored != hash {
        return Err(binary_error(format!(
            "string table checksum mismatch: stored {stored:#018x}, computed {hash:#018x}"
        )));
    }
    Ok((table, consumed + 8, version))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "record payload too short: needed {n} bytes at offset {}",
                self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn i32(&mut self) -> Result<i32, String> {
        Ok(i32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

fn resolve_ref(table: &[Arc<str>], index: u32) -> Result<&Arc<str>, String> {
    table
        .get(index as usize)
        .ok_or_else(|| format!("symbol {index} out of range (table has {})", table.len()))
}

/// Decodes one framed record payload directly into `batch` columns —
/// the allocation-free hot path. The syscall name is interned into the
/// batch by `Arc` identity and path/str payloads go straight into the
/// batch arena, so a valid record costs zero per-record allocations
/// once the batch buffers are warm. A malformed record leaves the batch
/// untouched (the partial row is rolled back).
pub(crate) fn decode_record_into(
    payload: &[u8],
    table: &[Arc<str>],
    batch: &mut EventBatch,
) -> Result<(), String> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let seq = c.u64()?;
    let timestamp_ns = c.u64()?;
    let pid = c.u32()?;
    let name = resolve_ref(table, c.u32()?)?;
    let sysno = c.u32()?;
    let retval = c.i64()?;
    let argc = c.u32()? as usize;
    // Each argument occupies at least 5 bytes; reject counts the payload
    // cannot possibly hold before decoding them.
    if argc > payload.len() / 5 {
        return Err(format!("argument count {argc} impossible for payload"));
    }
    let mut row = batch.begin_row();
    for _ in 0..argc {
        let arg = match c.u8()? {
            0 => ArgView::Int(c.i64()?),
            1 => ArgView::UInt(c.u64()?),
            2 => ArgView::Fd(c.i32()?),
            3 => ArgView::Path(resolve_ref(table, c.u32()?)?.as_ref()),
            4 => ArgView::Str(resolve_ref(table, c.u32()?)?.as_ref()),
            5 => ArgView::Flags(c.u32()?),
            6 => ArgView::Mode(c.u32()?),
            7 => ArgView::Whence(c.u32()?),
            8 => ArgView::Ptr(c.u64()?),
            tag => return Err(format!("unknown argument tag {tag}")),
        };
        row.push_arg(arg);
    }
    if c.pos != payload.len() {
        return Err(format!(
            "trailing bytes in record: {} of {} consumed",
            c.pos,
            payload.len()
        ));
    }
    let name_id = row.intern_name_arc(name);
    row.commit(seq, timestamp_ns, pid, name_id, sysno, retval);
    Ok(())
}

/// Decodes one record into an owned [`TraceEvent`]. Delegates to
/// [`decode_record_into`] so the two paths validate identically (same
/// checks, same error strings) by construction.
pub(crate) fn decode_record(payload: &[u8], table: &[Arc<str>]) -> Result<TraceEvent, String> {
    let mut batch = EventBatch::new();
    decode_record_into(payload, table, &mut batch)?;
    Ok(batch.get(0).expect("committed row").to_event())
}

/// Reads an `.iotb` trace, recovering from corrupt records instead of
/// aborting. See the [module docs](self) for the failure model;
/// [`LossyRead::lines`] counts record slots scanned and
/// [`SkippedLine::line`] is the 1-based record ordinal.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on genuine read failure,
/// [`TraceIoError::Binary`] on header/string-table corruption,
/// [`TraceIoError::TooManyErrors`] once more than
/// [`ReadOptions::max_errors`] records have been skipped, and — only
/// under [`ErrorPolicy::Abort`] — [`TraceIoError::Record`] for the first
/// bad record.
pub fn read_iotb_lossy<R: Read>(
    reader: R,
    options: &ReadOptions,
) -> Result<LossyRead, TraceIoError> {
    let mut cursor = IotbCursor::new(reader, *options)?;
    // Decode through the columnar batch path (one arena, zero per-record
    // allocations), materializing owned events only once at the end.
    let mut batch = EventBatch::new();
    while cursor.next_into(&mut batch)? {}
    let trace = Trace::from_events(batch.to_events());
    Ok(LossyRead::from_cursor(trace, cursor.into_state()))
}

/// A resumable `.iotb` record cursor — the binary counterpart of
/// [`JsonlCursor`](crate::JsonlCursor). The batch reader
/// [`read_iotb_lossy`] is a thin drain over this type, so the two share
/// one skip-accounting implementation by construction.
///
/// [`CursorState`] fields map onto records: `lines` is the 1-based
/// record ordinal, `byte_offset` the absolute container offset of the
/// next unread length prefix, and `bom_stripped`/`crlf_lines` stay zero
/// (JSONL-only concepts). The offset is only advanced past fully
/// consumed records, so the state is checkpoint-valid after any
/// [`next_event`](Self::next_event) return.
#[derive(Debug)]
pub struct IotbCursor<R> {
    reader: BufReader<R>,
    table: Vec<Arc<str>>,
    options: ReadOptions,
    state: CursorState,
    version: u32,
    /// Records recovered by resynchronizing past a corrupt length
    /// prefix, paired with the absolute end offset of each — yielded
    /// before any further reads so checkpoints stay exact.
    pending: VecDeque<(TraceEvent, u64)>,
    done: bool,
}

impl<R: Read> IotbCursor<R> {
    /// A cursor over a fresh container. Reads and verifies the header
    /// and string table eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on read failure or
    /// [`TraceIoError::Binary`] on header/string-table corruption.
    pub fn new(reader: R, options: ReadOptions) -> Result<Self, TraceIoError> {
        let mut reader = BufReader::new(reader);
        let (table, table_end, version) = read_table(&mut reader)?;
        Ok(IotbCursor {
            reader,
            table,
            options,
            state: CursorState {
                byte_offset: table_end,
                ..CursorState::default()
            },
            version,
            pending: VecDeque::new(),
            done: false,
        })
    }

    /// Resumes from a checkpointed `state`. Because readers need not be
    /// seekable, `reader` must be positioned at the **start** of the
    /// container: the string table is re-read and re-verified, then
    /// bytes up to [`CursorState::byte_offset`] are discarded.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Binary`] for container corruption or a
    /// resume offset that does not land inside the record region.
    pub fn resume(
        reader: R,
        options: ReadOptions,
        state: CursorState,
    ) -> Result<Self, TraceIoError> {
        let mut reader = BufReader::new(reader);
        let (table, table_end, version) = read_table(&mut reader)?;
        if state.byte_offset < table_end {
            return Err(binary_error(format!(
                "resume offset {} is inside the string table (records start at {table_end})",
                state.byte_offset
            )));
        }
        let skip = state.byte_offset - table_end;
        let discarded = std::io::copy(&mut (&mut reader).take(skip), &mut std::io::sink())?;
        if discarded != skip {
            return Err(binary_error(format!(
                "resume offset {} is past the end of the container",
                state.byte_offset
            )));
        }
        Ok(IotbCursor {
            reader,
            table,
            options,
            state,
            version,
            pending: VecDeque::new(),
            done: false,
        })
    }

    /// The current resume point. Valid to checkpoint after any
    /// [`next_event`](Self::next_event) return.
    #[must_use]
    pub fn state(&self) -> &CursorState {
        &self.state
    }

    /// Consumes the cursor, yielding its final state.
    #[must_use]
    pub fn into_state(self) -> CursorState {
        self.state
    }

    /// Yields the next event, or `None` at end of stream (including
    /// after a skip that ends the scan — truncated tail, lost framing).
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on read failure,
    /// [`TraceIoError::TooManyErrors`] when the lossy skip budget is
    /// exhausted, and — under [`ErrorPolicy::Abort`] —
    /// [`TraceIoError::Record`] for the first bad record.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceIoError> {
        let mut batch = EventBatch::new();
        if self.next_into(&mut batch)? {
            Ok(Some(batch.get(0).expect("one decoded row").to_event()))
        } else {
            Ok(None)
        }
    }

    /// Decodes the next record directly into `batch` — the
    /// allocation-free counterpart of [`next_event`](Self::next_event).
    /// Returns whether a record was appended; `false` means end of
    /// stream. Skip accounting, resynchronization, and
    /// [`state`](Self::state) checkpoint validity are identical to the
    /// owned-event path (which is a one-row wrapper over this method).
    ///
    /// # Errors
    ///
    /// Same failure model as [`next_event`](Self::next_event).
    pub fn next_into(&mut self, batch: &mut EventBatch) -> Result<bool, TraceIoError> {
        loop {
            if let Some((event, end_offset)) = self.pending.pop_front() {
                self.state.lines += 1;
                self.state.byte_offset = end_offset;
                self.state.events += 1;
                batch.push_event(&event);
                return Ok(true);
            }
            if self.done {
                return Ok(false);
            }
            let mut len_bytes = [0u8; 4];
            let fill = read_exact_or_eof(&mut self.reader, &mut len_bytes)?;
            if matches!(fill, Fill::Eof) {
                self.done = true;
                continue;
            }
            if matches!(fill, Fill::Full)
                && self.version >= IOTB_VERSION_INDEXED
                && u32::from_le_bytes(len_bytes) == INDEX_SENTINEL
            {
                // Clean end of a v2 record region: the block index
                // follows, which the serial reader never consumes. The
                // offset stays on the sentinel so a resume re-reads it
                // and ends just as cleanly.
                self.done = true;
                continue;
            }
            let record = self.state.lines + 1;
            self.state.lines = record;
            let failure: (ErrorClass, String, bool) = if matches!(fill, Fill::Partial(_)) {
                (
                    ErrorClass::TruncatedTail,
                    "record length prefix cut off by end of stream".to_owned(),
                    true,
                )
            } else {
                let len = u32::from_le_bytes(len_bytes) as usize;
                if len > MAX_RECORD_LEN {
                    // The framing itself is corrupt; chasing this length
                    // would desynchronize every later record.
                    (
                        ErrorClass::MalformedRecord,
                        format!("record length {len} exceeds cap {MAX_RECORD_LEN}; framing lost"),
                        true,
                    )
                } else {
                    let mut payload = vec![0u8; len];
                    match read_exact_or_eof(&mut self.reader, &mut payload)? {
                        Fill::Full => {
                            self.state.byte_offset += (4 + len) as u64;
                            match decode_record_into(&payload, &self.table, batch) {
                                Ok(()) => {
                                    self.state.events += 1;
                                    return Ok(true);
                                }
                                Err(detail) => (ErrorClass::MalformedRecord, detail, false),
                            }
                        }
                        Fill::Eof => (
                            ErrorClass::TruncatedTail,
                            format!("record payload cut off: expected {len} bytes"),
                            true,
                        ),
                        Fill::Partial(got) => {
                            // The stream ended mid-"payload". Either the
                            // file really was cut here (a truncated
                            // tail), or the length prefix itself was
                            // corrupt and what we just swallowed holds
                            // intact records. Distinguish them by
                            // looking for an offset where the remaining
                            // bytes parse exactly as whole valid
                            // records — corruption, not EOF, if found.
                            match resync_tail(&payload[..got], &self.table) {
                                Some((skip_to, recovered)) => {
                                    let tail_start = self.state.byte_offset + 4;
                                    let resync_at = tail_start + skip_to as u64;
                                    let count = recovered.len();
                                    for (event, end_rel) in recovered {
                                        self.pending
                                            .push_back((event, tail_start + end_rel as u64));
                                    }
                                    self.state.byte_offset = resync_at;
                                    (
                                        ErrorClass::MalformedRecord,
                                        format!(
                                            "record length prefix claims {len} bytes but only \
                                             {got} remain; resynchronized at offset {resync_at}, \
                                             recovering {count} trailing record(s)"
                                        ),
                                        true,
                                    )
                                }
                                None => (
                                    ErrorClass::TruncatedTail,
                                    format!("record payload cut off: expected {len} bytes"),
                                    true,
                                ),
                            }
                        }
                    }
                }
            };
            let (class, message, stop) = failure;
            if self.options.on_error == ErrorPolicy::Abort {
                return Err(TraceIoError::Record {
                    record,
                    detail: message,
                });
            }
            self.state.skipped.push(SkippedLine {
                line: record,
                class,
                message,
            });
            if let Some(max) = self.options.max_errors {
                if self.state.skipped.len() > max {
                    return Err(TraceIoError::TooManyErrors {
                        errors: self.state.skipped.len(),
                        max,
                    });
                }
            }
            if stop {
                self.done = true;
            }
        }
    }
}

/// Scans the bytes swallowed by an overlong length prefix for the
/// earliest offset at which the remainder parses exactly as one or
/// more complete, fully valid framed records. `Some((offset,
/// records))` means the prefix was corruption, not truncation; each
/// recovered record carries its end offset relative to `tail`'s start.
///
/// A false positive needs a 4-byte prefix matching the remaining
/// length exactly *and* a payload that decodes with every symbol in
/// range and no trailing bytes — vanishingly unlikely from a genuine
/// mid-record cut.
fn resync_tail(tail: &[u8], table: &[Arc<str>]) -> Option<(usize, Vec<(TraceEvent, usize)>)> {
    for start in 0..tail.len().saturating_sub(4) {
        let mut pos = start;
        let mut records = Vec::new();
        let mut valid = true;
        while pos < tail.len() {
            if tail.len() - pos < 4 {
                valid = false;
                break;
            }
            let len = u32::from_le_bytes(tail[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if len > MAX_RECORD_LEN || tail.len() - pos - 4 < len {
                valid = false;
                break;
            }
            match decode_record(&tail[pos + 4..pos + 4 + len], table) {
                Ok(event) => {
                    pos += 4 + len;
                    records.push((event, pos));
                }
                Err(_) => {
                    valid = false;
                    break;
                }
            }
        }
        if valid && !records.is_empty() {
            return Some((start, records));
        }
    }
    None
}

/// Reads an `.iotb` trace strictly: the first bad record aborts.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`], [`TraceIoError::Binary`] for container
/// corruption, or [`TraceIoError::Record`] (with the 1-based record
/// number) for the first undecodable record.
pub fn read_iotb<R: Read>(reader: R) -> Result<Trace, TraceIoError> {
    let options = ReadOptions {
        on_error: ErrorPolicy::Abort,
        ..ReadOptions::default()
    };
    Ok(read_iotb_lossy(reader, &options)?.trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_events(vec![
            TraceEvent {
                seq: 1,
                timestamp_ns: 10,
                pid: 42,
                name: "open".into(),
                sysno: 2,
                args: vec![
                    ArgValue::Path("/mnt/test/a".into()),
                    ArgValue::Flags(0o101),
                    ArgValue::Mode(0o644),
                ],
                retval: 3,
            },
            TraceEvent {
                seq: 2,
                timestamp_ns: 20,
                pid: 42,
                name: "write".into(),
                sysno: 1,
                args: vec![ArgValue::Fd(3), ArgValue::Ptr(0x1000), ArgValue::UInt(4096)],
                retval: 4096,
            },
            TraceEvent {
                seq: 3,
                timestamp_ns: u64::MAX,
                pid: 7,
                name: "close".into(),
                sysno: 3,
                args: vec![ArgValue::Fd(3)],
                retval: 0,
            },
        ])
    }

    fn encoded(trace: &Trace) -> Vec<u8> {
        let mut buf = Vec::new();
        write_iotb(&mut buf, trace).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = sample_trace();
        let back = read_iotb(&encoded(&trace)[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = Trace::new();
        let back = read_iotb(&encoded(&trace)[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn strings_are_stored_once() {
        let trace = Trace::from_events(vec![
            TraceEvent::build("open", 2, vec![ArgValue::Path("/mnt/test/f".into())], 3),
            TraceEvent::build("open", 2, vec![ArgValue::Path("/mnt/test/f".into())], 4),
        ]);
        let bytes = encoded(&trace);
        let haystack = String::from_utf8_lossy(&bytes);
        assert_eq!(haystack.matches("/mnt/test/f").count(), 1);
    }

    #[test]
    fn magic_is_sniffable() {
        let bytes = encoded(&sample_trace());
        assert!(is_iotb(&bytes));
        assert!(!is_iotb(b"{\"seq\":0}"));
        assert!(!is_iotb(b"IO"));
    }

    #[test]
    fn bad_magic_is_a_binary_error() {
        let mut bytes = encoded(&sample_trace());
        bytes[0] = b'X';
        let err = read_iotb(&bytes[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::Binary { .. }), "{err}");
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = encoded(&sample_trace());
        bytes[4] = 9;
        let err = read_iotb(&bytes[..]).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn string_table_corruption_is_fatal_even_in_lossy_mode() {
        let mut bytes = encoded(&sample_trace());
        // Flip a byte inside the first string table entry ("open").
        let entry_start = 12 + 4;
        bytes[entry_start] ^= 0x20;
        let err = read_iotb_lossy(&bytes[..], &ReadOptions::default()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn corrupt_record_is_skipped_lossily() {
        let trace = sample_trace();
        let mut bytes = encoded(&trace);
        // Corrupt the second record's argument tag region: find the
        // record boundaries by re-reading lengths after the table.
        let table_end = table_end_offset(&bytes);
        let rec1_len = u32::from_le_bytes(bytes[table_end..table_end + 4].try_into().unwrap());
        let rec2_start = table_end + 4 + rec1_len as usize;
        // Last byte of record 2's payload is part of an argument; an
        // unknown tag is easier: overwrite the first arg tag (offset 40
        // into the payload).
        bytes[rec2_start + 4 + 40] = 0xEE;
        let read = read_iotb_lossy(&bytes[..], &ReadOptions::default()).unwrap();
        assert_eq!(read.trace.len(), 2, "records 1 and 3 recovered");
        assert_eq!(read.skipped.len(), 1);
        assert_eq!(read.skipped[0].line, 2);
        assert_eq!(read.skipped[0].class, ErrorClass::MalformedRecord);
        assert_eq!(read.lines, 3);
    }

    #[test]
    fn truncated_tail_is_classified_and_ends_the_scan() {
        let trace = sample_trace();
        let bytes = encoded(&trace);
        let cut = bytes.len() - 5;
        let read = read_iotb_lossy(&bytes[..cut], &ReadOptions::default()).unwrap();
        assert_eq!(read.trace.len(), 2);
        assert_eq!(read.skipped.len(), 1);
        assert_eq!(read.skipped[0].class, ErrorClass::TruncatedTail);
        assert_eq!(read.skipped[0].line, 3);
    }

    #[test]
    fn oversized_length_prefix_stops_the_scan() {
        let trace = sample_trace();
        let mut bytes = encoded(&trace);
        let table_end = table_end_offset(&bytes);
        bytes[table_end..table_end + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let read = read_iotb_lossy(&bytes[..], &ReadOptions::default()).unwrap();
        assert!(read.trace.is_empty());
        assert_eq!(read.skipped.len(), 1);
        assert_eq!(read.skipped[0].class, ErrorClass::MalformedRecord);
        assert!(read.skipped[0].message.contains("framing lost"));
    }

    #[test]
    fn forged_string_count_is_rejected_without_prealloc() {
        // A 12-byte file whose header demands the maximum table: the
        // reader must fail on the missing bytes, not allocate for the
        // claim. (The prealloc cap is what makes this safe; the
        // observable contract is the truncation error.)
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&IOTB_MAGIC);
        bytes.extend_from_slice(&IOTB_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::try_from(MAX_STRINGS).unwrap().to_le_bytes());
        let err = read_iotb(&bytes[..]).unwrap_err();
        assert!(
            err.to_string()
                .contains("truncated string table at entry 0"),
            "{err}"
        );
    }

    #[test]
    fn forged_entry_length_is_rejected_without_prealloc() {
        // One table entry claiming a megabyte, backed by three bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&IOTB_MAGIC);
        bytes.extend_from_slice(&IOTB_VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u32::try_from(MAX_STRING_LEN).unwrap().to_le_bytes());
        bytes.extend_from_slice(b"abc");
        let err = read_iotb(&bytes[..]).unwrap_err();
        assert!(
            err.to_string()
                .contains("truncated string table at entry 0"),
            "{err}"
        );
    }

    #[test]
    fn oversized_string_count_is_rejected_outright() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&IOTB_MAGIC);
        bytes.extend_from_slice(&IOTB_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_iotb(&bytes[..]).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
    }

    #[test]
    fn corrupt_length_prefix_resyncs_to_trailing_records() {
        let trace = sample_trace();
        let mut bytes = encoded(&trace);
        let table_end = table_end_offset(&bytes);
        // Overwrite record 1's length prefix with a large-but-capped
        // bogus length that overruns EOF: records 2 and 3 are intact
        // and must be recovered, and the skip is corruption — not a
        // silently shortened file.
        bytes[table_end..table_end + 4]
            .copy_from_slice(&u32::try_from(MAX_RECORD_LEN).unwrap().to_le_bytes());
        let read = read_iotb_lossy(&bytes[..], &ReadOptions::default()).unwrap();
        assert_eq!(read.trace.events(), &trace.events()[1..]);
        assert_eq!(read.skipped.len(), 1);
        assert_eq!(read.skipped[0].class, ErrorClass::MalformedRecord);
        assert!(
            read.skipped[0].message.contains("resynchronized"),
            "{}",
            read.skipped[0].message
        );
        assert_eq!(read.skipped[0].line, 1);
        assert_eq!(read.lines, 3);
    }

    #[test]
    fn resynced_recovery_is_resumable_at_every_boundary() {
        let trace = sample_trace();
        let mut bytes = encoded(&trace);
        let table_end = table_end_offset(&bytes);
        bytes[table_end..table_end + 4]
            .copy_from_slice(&u32::try_from(MAX_RECORD_LEN).unwrap().to_le_bytes());
        let mut full = IotbCursor::new(&bytes[..], ReadOptions::default()).unwrap();
        let mut full_events = Vec::new();
        while let Some(e) = full.next_event().unwrap() {
            full_events.push(e);
        }
        let full_state = full.into_state();
        assert_eq!(full_events.len(), 2);

        for stop_after in 0..=full_events.len() {
            let mut head = IotbCursor::new(&bytes[..], ReadOptions::default()).unwrap();
            let mut events = Vec::new();
            for _ in 0..stop_after {
                events.push(head.next_event().unwrap().unwrap());
            }
            let saved = head.into_state();
            let mut tail = IotbCursor::resume(&bytes[..], ReadOptions::default(), saved).unwrap();
            while let Some(e) = tail.next_event().unwrap() {
                events.push(e);
            }
            assert_eq!(events, full_events, "stop_after={stop_after}");
            // The head that never saw the corrupt prefix discovers the
            // skip itself on resume; ledgers must converge either way.
            assert_eq!(
                tail.into_state().skipped,
                full_state.skipped,
                "stop_after={stop_after}"
            );
        }
    }

    #[test]
    fn genuinely_truncated_payload_still_classifies_as_tail() {
        // The resync probe must not reclassify a real truncation.
        let trace = sample_trace();
        let bytes = encoded(&trace);
        for cut_back in 1..20 {
            if cut_back >= bytes.len() - table_end_offset(&bytes) {
                break;
            }
            let cut = bytes.len() - cut_back;
            let read = read_iotb_lossy(&bytes[..cut], &ReadOptions::default()).unwrap();
            for skip in &read.skipped {
                assert_eq!(skip.class, ErrorClass::TruncatedTail, "cut_back={cut_back}");
            }
        }
    }

    #[test]
    fn indexed_container_roundtrips_serially() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        write_iotb_indexed(&mut bytes, &trace, 2).unwrap();
        assert_eq!(&bytes[bytes.len() - 8..], &IOTB_INDEX_FOOTER_MAGIC);
        // The serial readers stream v2 exactly like v1.
        let back = read_iotb(&bytes[..]).unwrap();
        assert_eq!(back, trace);
        let read = read_iotb_lossy(&bytes[..], &ReadOptions::default()).unwrap();
        assert!(read.skipped.is_empty());
        assert_eq!(read.trace, trace);
    }

    #[test]
    fn indexed_container_resumes_at_every_boundary() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        write_iotb_indexed(&mut bytes, &trace, 2).unwrap();
        let mut full = IotbCursor::new(&bytes[..], ReadOptions::default()).unwrap();
        let mut full_events = Vec::new();
        while let Some(e) = full.next_event().unwrap() {
            full_events.push(e);
        }
        let full_state = full.into_state();
        for stop_after in 0..=full_events.len() {
            let mut head = IotbCursor::new(&bytes[..], ReadOptions::default()).unwrap();
            let mut events = Vec::new();
            for _ in 0..stop_after {
                events.push(head.next_event().unwrap().unwrap());
            }
            let saved = head.into_state();
            let mut tail = IotbCursor::resume(&bytes[..], ReadOptions::default(), saved).unwrap();
            while let Some(e) = tail.next_event().unwrap() {
                events.push(e);
            }
            assert_eq!(events, full_events, "stop_after={stop_after}");
            assert_eq!(tail.into_state(), full_state, "stop_after={stop_after}");
        }
    }

    #[test]
    fn block_index_is_parsed_and_verified() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        write_iotb_indexed(&mut bytes, &trace, 2).unwrap();
        let blocks = read_block_index(&bytes).unwrap().expect("v2 has an index");
        assert_eq!(blocks.len(), 2, "3 events at 2 per block");
        assert_eq!(blocks[0].events, 2);
        assert_eq!(blocks[1].events, 1);
        assert_eq!(blocks[0].offset, table_end_offset(&bytes) as u64);
        assert_eq!(blocks[0].offset + blocks[0].byte_len, blocks[1].offset);
        for block in &blocks {
            let start = usize::try_from(block.offset).unwrap();
            let end = start + usize::try_from(block.byte_len).unwrap();
            assert_eq!(fnv1a(&bytes[start..end], FNV_OFFSET), block.checksum);
        }
    }

    #[test]
    fn v1_container_has_no_index() {
        let bytes = encoded(&sample_trace());
        assert!(read_block_index(&bytes).unwrap().is_none());
    }

    #[test]
    fn corrupt_index_is_fatal_for_indexed_opens() {
        let trace = sample_trace();
        let mut ok = Vec::new();
        write_iotb_indexed(&mut ok, &trace, 2).unwrap();

        let mut bad_footer = ok.clone();
        let len = bad_footer.len();
        bad_footer[len - 1] = b'?';
        let err = read_block_index(&bad_footer).unwrap_err();
        assert!(err.to_string().contains("footer"), "{err}");

        let mut bad_index = ok.clone();
        // Flip a byte inside the first index entry (count field is the
        // first 4 bytes of the index; entries follow).
        let index_start = len - 16 - 8 - 2 * 32 - 4;
        bad_index[index_start + 6] ^= 0x01;
        let err = read_block_index(&bad_index).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        let mut truncated = ok;
        truncated.truncate(len - 9);
        let err = read_block_index(&truncated).unwrap_err();
        assert!(err.to_string().contains("footer"), "{err}");
    }

    #[test]
    fn empty_indexed_container_roundtrips() {
        let mut bytes = Vec::new();
        write_iotb_indexed(&mut bytes, &Trace::new(), 2).unwrap();
        assert!(read_iotb(&bytes[..]).unwrap().is_empty());
        assert!(read_block_index(&bytes).unwrap().unwrap().is_empty());
    }

    #[test]
    fn strict_reader_reports_record_number() {
        let trace = sample_trace();
        let mut bytes = encoded(&trace);
        let table_end = table_end_offset(&bytes);
        let rec1_len = u32::from_le_bytes(bytes[table_end..table_end + 4].try_into().unwrap());
        let rec2_start = table_end + 4 + rec1_len as usize;
        bytes[rec2_start + 4 + 40] = 0xEE;
        let err = read_iotb(&bytes[..]).unwrap_err();
        match &err {
            TraceIoError::Record { record, .. } => assert_eq!(*record, 2),
            other => panic!("expected record error, got {other}"),
        }
        assert!(err.to_string().contains("record 2"));
    }

    #[test]
    fn max_errors_is_honored() {
        let trace = sample_trace();
        let mut bytes = encoded(&trace);
        let table_end = table_end_offset(&bytes);
        // Corrupt records 1 and 2 (unknown tags), keep record 3.
        let rec1_len =
            u32::from_le_bytes(bytes[table_end..table_end + 4].try_into().unwrap()) as usize;
        bytes[table_end + 4 + 40] = 0xEE;
        let rec2_start = table_end + 4 + rec1_len;
        bytes[rec2_start + 4 + 40] = 0xEE;
        let strict_cap = ReadOptions {
            max_errors: Some(1),
            ..ReadOptions::default()
        };
        let err = read_iotb_lossy(&bytes[..], &strict_cap).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::TooManyErrors { errors: 2, max: 1 }
        ));
        let roomy = ReadOptions {
            max_errors: Some(2),
            ..ReadOptions::default()
        };
        let read = read_iotb_lossy(&bytes[..], &roomy).unwrap();
        assert_eq!(read.trace.len(), 1);
        assert_eq!(read.skipped.len(), 2);
    }

    #[test]
    fn out_of_range_symbol_is_malformed() {
        let trace = Trace::from_events(vec![TraceEvent::build("close", 3, vec![], 0)]);
        let mut bytes = encoded(&trace);
        let table_end = table_end_offset(&bytes);
        // Name symbol lives at payload offset 20 (seq 8 + ts 8 + pid 4).
        bytes[table_end + 4 + 20..table_end + 4 + 24].copy_from_slice(&77u32.to_le_bytes());
        let read = read_iotb_lossy(&bytes[..], &ReadOptions::default()).unwrap();
        assert!(read.trace.is_empty());
        assert!(read.skipped[0].message.contains("out of range"));
    }

    #[test]
    fn cursor_matches_batch_lossy_reader() {
        let trace = sample_trace();
        let mut bytes = encoded(&trace);
        // Corrupt record 2 (unknown tag) and truncate the tail so the
        // cursor exercises both skip classes.
        let table_end = table_end_offset(&bytes);
        let rec1_len = u32::from_le_bytes(bytes[table_end..table_end + 4].try_into().unwrap());
        bytes[table_end + 4 + rec1_len as usize + 4 + 40] = 0xEE;
        bytes.truncate(bytes.len() - 3);
        let batch = read_iotb_lossy(&bytes[..], &ReadOptions::default()).unwrap();
        let mut cursor = IotbCursor::new(&bytes[..], ReadOptions::default()).unwrap();
        let mut events = Vec::new();
        while let Some(e) = cursor.next_event().unwrap() {
            events.push(e);
        }
        let state = cursor.into_state();
        assert_eq!(events, batch.trace.events());
        assert_eq!(state.skipped, batch.skipped);
        assert_eq!(state.lines, batch.lines);
        assert_eq!(state.events, events.len() as u64);
    }

    #[test]
    fn cursor_resume_at_every_record_boundary_is_seamless() {
        let trace = sample_trace();
        let bytes = encoded(&trace);
        let mut full = IotbCursor::new(&bytes[..], ReadOptions::default()).unwrap();
        let mut full_events = Vec::new();
        while let Some(e) = full.next_event().unwrap() {
            full_events.push(e);
        }
        let full_state = full.into_state();
        assert_eq!(full_state.byte_offset, bytes.len() as u64);

        for stop_after in 0..=full_events.len() {
            let mut head = IotbCursor::new(&bytes[..], ReadOptions::default()).unwrap();
            let mut events = Vec::new();
            for _ in 0..stop_after {
                events.push(head.next_event().unwrap().unwrap());
            }
            let saved = head.into_state();
            // Round-trip the state through serde, as a checkpoint would.
            let saved: CursorState =
                serde_json::from_str(&serde_json::to_string(&saved).unwrap()).unwrap();
            // Resume takes the whole container, not a seeked tail.
            let mut tail = IotbCursor::resume(&bytes[..], ReadOptions::default(), saved).unwrap();
            while let Some(e) = tail.next_event().unwrap() {
                events.push(e);
            }
            assert_eq!(events, full_events, "stop_after={stop_after}");
            assert_eq!(tail.into_state(), full_state, "stop_after={stop_after}");
        }
    }

    #[test]
    fn cursor_resume_rejects_offsets_outside_the_record_region() {
        let bytes = encoded(&sample_trace());
        let inside_table = CursorState {
            byte_offset: 4,
            ..CursorState::default()
        };
        let err = IotbCursor::resume(&bytes[..], ReadOptions::default(), inside_table).unwrap_err();
        assert!(err.to_string().contains("inside the string table"), "{err}");
        let past_end = CursorState {
            byte_offset: bytes.len() as u64 + 100,
            ..CursorState::default()
        };
        let err = IotbCursor::resume(&bytes[..], ReadOptions::default(), past_end).unwrap_err();
        assert!(err.to_string().contains("past the end"), "{err}");
    }

    /// Byte offset of the first record's length prefix.
    fn table_end_offset(bytes: &[u8]) -> usize {
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let mut pos = 12;
        for _ in 0..count {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4 + len;
        }
        pos + 8 // checksum
    }
}
