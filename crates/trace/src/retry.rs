//! Bounded retry-with-backoff for transient I/O errors.
//!
//! A multi-hour trace read over NFS or a flaky disk sees
//! `ErrorKind::Interrupted` (signal delivery) and `ErrorKind::WouldBlock`
//! (scheduler hiccups on nonblocking descriptors) as a matter of course.
//! `BufRead::read_until` already retries `Interrupted` internally, but
//! `WouldBlock` aborts the whole ingest. [`RetryRead`] absorbs both:
//! transient errors are retried with exponential backoff up to a bounded
//! budget, then surfaced as a hard `ErrorKind::TimedOut` error so a
//! genuinely dead input cannot spin forever. Hard errors (anything else)
//! pass through untouched — retry must never mask a real failure.

use std::io::{self, Read};
use std::time::Duration;

/// Whether an I/O error is transient (retryable) rather than hard.
#[must_use]
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock)
}

/// Retry budget and backoff curve for transient I/O errors.
///
/// The backoff for the *n*-th consecutive transient error is
/// `base_backoff * 2^(n-1)`, capped at `max_backoff`; `Interrupted`
/// retries immediately (backoff only applies to `WouldBlock`). The
/// consecutive-error counter resets on any successful call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive transient errors tolerated before giving up.
    pub max_retries: u32,
    /// First `WouldBlock` backoff.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// The backoff before the `attempt`-th consecutive retry (1-based).
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// A `Read` adapter that retries transient errors per a [`RetryPolicy`].
#[derive(Debug)]
pub struct RetryRead<R> {
    inner: R,
    policy: RetryPolicy,
    /// Total transient errors absorbed over the adapter's lifetime.
    retries: u64,
}

impl<R: Read> RetryRead<R> {
    /// Wraps `inner` with the default policy.
    pub fn new(inner: R) -> Self {
        Self::with_policy(inner, RetryPolicy::default())
    }

    /// Wraps `inner` with an explicit policy.
    pub fn with_policy(inner: R, policy: RetryPolicy) -> Self {
        RetryRead {
            inner,
            policy,
            retries: 0,
        }
    }

    /// Total transient errors absorbed so far.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Consumes the adapter, returning the wrapped reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for RetryRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut consecutive = 0u32;
        loop {
            match self.inner.read(buf) {
                Ok(n) => return Ok(n),
                Err(e) if is_transient(e.kind()) => {
                    consecutive += 1;
                    self.retries += 1;
                    if consecutive > self.policy.max_retries {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "transient I/O error persisted after {consecutive} retries: {e}"
                            ),
                        ));
                    }
                    if e.kind() == io::ErrorKind::WouldBlock {
                        std::thread::sleep(self.policy.backoff(consecutive));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that errors `plan[i]` times before each successful read.
    struct Flaky {
        data: Vec<u8>,
        pos: usize,
        pending_errors: u32,
        kind: io::ErrorKind,
    }

    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pending_errors > 0 {
                self.pending_errors -= 1;
                return Err(self.kind.into());
            }
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn transient_errors_are_absorbed() {
        let mut r = RetryRead::new(Flaky {
            data: b"hello".to_vec(),
            pos: 0,
            pending_errors: 3,
            kind: io::ErrorKind::WouldBlock,
        });
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"hello");
        assert_eq!(r.retries(), 3);
    }

    #[test]
    fn budget_exhaustion_is_a_hard_timed_out_error() {
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let mut r = RetryRead::with_policy(
            Flaky {
                data: b"x".to_vec(),
                pos: 0,
                pending_errors: 10,
                kind: io::ErrorKind::Interrupted,
            },
            policy,
        );
        let err = r.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("after 3 retries"));
    }

    #[test]
    fn hard_errors_pass_through_unretried() {
        struct Dead;
        impl Read for Dead {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::other("disk died"))
            }
        }
        let mut r = RetryRead::new(Dead);
        let err = r.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(r.retries(), 0);
    }

    #[test]
    fn backoff_curve_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(45),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(45));
        assert_eq!(p.backoff(60), Duration::from_millis(45));
    }
}
