//! A coverage-guided differential file-system tester built on IOCov.
//!
//! The IOCov paper's §6 closes with: *"We are currently developing a
//! differential-testing-based file system tester utilizing IOCov. Our
//! approach has found several new bugs."* This crate implements that
//! design:
//!
//! 1. generate random (but model-safe) syscall sequences and execute each
//!    operation on **two** implementations — the full in-memory VFS and
//!    the obviously-correct [`iocov_model::ModelFs`] specification;
//! 2. compare return values, read data, and final states — any mismatch
//!    is a bug in one of the implementations;
//! 3. after each round, run the IOCov analyzer on the trace and **steer
//!    generation toward untested input partitions** (unexercised write
//!    size buckets, unused open flags), which is exactly the feedback
//!    code-coverage-guided fuzzers cannot provide.
//!
//! # Examples
//!
//! ```
//! use iocov_difftest::DiffTester;
//!
//! let report = DiffTester::new(42).rounds(3).ops_per_round(200).run();
//! assert!(report.mismatches.is_empty(), "the clean VFS matches the model");
//! assert!(report.ops_executed > 0);
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use iocov::{ArgName, InputPartition, Iocov, NumericPartition};
use iocov_model::ModelFs;
use iocov_syscalls::Kernel;
use iocov_trace::Recorder;
use iocov_vfs::SharedHook;

/// What diverged between the two implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MismatchKind {
    /// Different return values (or one side succeeded and the other
    /// failed).
    ReturnValue,
    /// Same success, different bytes from `read`.
    Data,
    /// Different final namespaces or file contents after the run.
    FinalState,
}

/// One observed divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// The operation that diverged, rendered strace-style.
    pub op: String,
    /// The full implementation's result.
    pub vfs_ret: i64,
    /// The model's result.
    pub model_ret: i64,
    /// The divergence category.
    pub kind: MismatchKind,
}

/// The outcome of a differential-testing session.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Operations executed on both implementations.
    pub ops_executed: u64,
    /// All divergences found.
    pub mismatches: Vec<Mismatch>,
    /// Untested write-size partitions remaining after the final round
    /// (shows the guidance converging).
    pub untested_write_buckets: usize,
}

impl DiffReport {
    /// Whether any bug was found.
    #[must_use]
    pub fn found_bugs(&self) -> bool {
        !self.mismatches.is_empty()
    }
}

/// Model-safe open flags (the specification implements exactly these).
const SAFE_FLAG_BITS: [u32; 5] = [
    0o100,    // O_CREAT
    0o200,    // O_EXCL
    0o1000,   // O_TRUNC
    0o2000,   // O_APPEND
    0o200000, // O_DIRECTORY
];

/// The coverage-guided differential tester.
#[derive(Clone)]
pub struct DiffTester {
    seed: u64,
    rounds: usize,
    ops_per_round: usize,
    hook: Option<SharedHook>,
}

impl std::fmt::Debug for DiffTester {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiffTester")
            .field("seed", &self.seed)
            .field("rounds", &self.rounds)
            .field("ops_per_round", &self.ops_per_round)
            .field("hook", &self.hook.is_some())
            .finish()
    }
}

impl DiffTester {
    /// Creates a tester with defaults (5 rounds × 400 ops).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DiffTester {
            seed,
            rounds: 5,
            ops_per_round: 400,
            hook: None,
        }
    }

    /// Sets the number of guidance rounds.
    #[must_use]
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets operations per round.
    #[must_use]
    pub fn ops_per_round(mut self, ops: usize) -> Self {
        self.ops_per_round = ops;
        self
    }

    /// Installs a fault hook into the VFS side only (to inject bugs the
    /// tester should find).
    #[must_use]
    pub fn with_vfs_hook(mut self, hook: SharedHook) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Runs the session.
    #[must_use]
    pub fn run(&self) -> DiffReport {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let recorder = Arc::new(Recorder::new());
        let mut kernel = Kernel::new();
        if let Some(hook) = &self.hook {
            kernel.vfs_mut().set_fault_hook(Arc::clone(hook));
        }
        kernel.attach_recorder(Arc::clone(&recorder));
        let mut model = ModelFs::new();
        let mut report = DiffReport::default();
        // Open descriptor pairs (vfs fd, model fd, path).
        let mut slots: Vec<(i32, i32, String)> = Vec::new();
        // Guidance state: boundary sizes and flags to prioritize.
        let mut target_sizes: Vec<u64> = Vec::new();
        let mut target_flags: Vec<u32> = Vec::new();
        let iocov = Iocov::new();

        for _round in 0..self.rounds {
            for _ in 0..self.ops_per_round {
                self.one_op(
                    &mut rng,
                    &mut kernel,
                    &mut model,
                    &mut slots,
                    &target_sizes,
                    &target_flags,
                    &mut report,
                );
            }
            // Coverage feedback: analyze this round's trace and aim the
            // next round at untested partitions.
            let analysis = iocov.analyze(&recorder.take());
            let write_cov = analysis.input_coverage(ArgName::WriteCount);
            target_sizes = write_cov
                .untested(ArgName::WriteCount)
                .into_iter()
                .filter_map(|p| match p {
                    InputPartition::Numeric(NumericPartition::Zero) => Some(0),
                    InputPartition::Numeric(NumericPartition::Log2(k)) if k <= 20 => {
                        Some(1u64 << k)
                    }
                    _ => None,
                })
                .collect();
            report.untested_write_buckets = target_sizes.len();
            let flag_cov = analysis.input_coverage(ArgName::OpenFlags);
            target_flags = flag_cov
                .untested(ArgName::OpenFlags)
                .into_iter()
                .filter_map(|p| match p {
                    InputPartition::Flag(name) => flag_bits_if_safe(&name),
                    _ => None,
                })
                .collect();
        }

        // Final-state comparison: walk the model's namespace and compare
        // against the VFS.
        self.compare_final_state(&mut kernel, &model, &mut report);
        report
    }

    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn one_op(
        &self,
        rng: &mut StdRng,
        kernel: &mut Kernel,
        model: &mut ModelFs,
        slots: &mut Vec<(i32, i32, String)>,
        target_sizes: &[u64],
        target_flags: &[u32],
        report: &mut DiffReport,
    ) {
        report.ops_executed += 1;
        let path = random_path(rng);
        let pick_size = |rng: &mut StdRng| -> u64 {
            if !target_sizes.is_empty() && rng.random_bool(0.5) {
                target_sizes[rng.random_range(0..target_sizes.len())]
            } else {
                rng.random_range(0..8192u64)
            }
        };
        match rng.random_range(0..12u32) {
            0..=2 => {
                // open
                let accmode = rng.random_range(0..3u32);
                let mut flags = accmode;
                for bit in SAFE_FLAG_BITS {
                    if rng.random_bool(0.25) {
                        flags |= bit;
                    }
                }
                if !target_flags.is_empty() && rng.random_bool(0.5) {
                    flags |= target_flags[rng.random_range(0..target_flags.len())];
                }
                let v = kernel.open(&path, flags, 0o644);
                let m = model.open(&path, flags, 0o644);
                if (v >= 0) != (m >= 0) || (v < 0 && v != m) {
                    report.mismatches.push(Mismatch {
                        op: format!("open({path:?}, 0o{flags:o})"),
                        vfs_ret: v,
                        model_ret: m,
                        kind: MismatchKind::ReturnValue,
                    });
                    // Avoid desynchronized descriptor tables.
                    if v >= 0 {
                        kernel.close(v as i32);
                    }
                    if m >= 0 {
                        model.close(m as i32);
                    }
                } else if v >= 0 {
                    slots.push((v as i32, m as i32, path));
                }
            }
            3 => {
                // close
                if let Some(idx) = pick_slot(rng, slots) {
                    let (v_fd, m_fd, _) = slots.swap_remove(idx);
                    let v = kernel.close(v_fd);
                    let m = model.close(m_fd);
                    compare("close(fd)", v, m, report);
                }
            }
            4 | 5 => {
                // write
                if let Some(idx) = pick_slot(rng, slots) {
                    let (v_fd, m_fd, _) = slots[idx];
                    let len = pick_size(rng).min(1 << 16);
                    let buf: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                    let v = kernel.write(v_fd, &buf);
                    let m = model.write(m_fd, &buf);
                    compare(&format!("write(fd, {len})"), v, m, report);
                }
            }
            6 | 7 => {
                // read with data comparison
                if let Some(idx) = pick_slot(rng, slots) {
                    let (v_fd, m_fd, _) = slots[idx];
                    let len = pick_size(rng).min(1 << 16);
                    let mut buf = vec![0u8; len as usize];
                    let v = kernel.read(v_fd, &mut buf);
                    let (m, m_data) = model.read(m_fd, len);
                    if v != m {
                        report.mismatches.push(Mismatch {
                            op: format!("read(fd, {len})"),
                            vfs_ret: v,
                            model_ret: m,
                            kind: MismatchKind::ReturnValue,
                        });
                    } else if v >= 0 && buf[..v as usize] != m_data[..] {
                        report.mismatches.push(Mismatch {
                            op: format!("read(fd, {len})"),
                            vfs_ret: v,
                            model_ret: m,
                            kind: MismatchKind::Data,
                        });
                    }
                }
            }
            8 => {
                // lseek
                if let Some(idx) = pick_slot(rng, slots) {
                    let (v_fd, m_fd, _) = slots[idx];
                    let offset = rng.random_range(-64i64..1 << 16);
                    let whence = rng.random_range(0..3u32);
                    let v = kernel.lseek(v_fd, offset, whence);
                    let m = model.lseek(m_fd, offset, whence);
                    compare(&format!("lseek(fd, {offset}, {whence})"), v, m, report);
                }
            }
            9 => {
                // truncate / ftruncate
                if rng.random_bool(0.5) {
                    let len = rng.random_range(-8i64..1 << 14);
                    let v = kernel.truncate(&path, len);
                    let m = model.truncate(&path, len);
                    compare(&format!("truncate({path:?}, {len})"), v, m, report);
                } else if let Some(idx) = pick_slot(rng, slots) {
                    let (v_fd, m_fd, _) = slots[idx];
                    let len = rng.random_range(0i64..1 << 14);
                    let v = kernel.ftruncate(v_fd, len);
                    let m = model.ftruncate(m_fd, len);
                    compare(&format!("ftruncate(fd, {len})"), v, m, report);
                }
            }
            10 => {
                // namespace ops
                match rng.random_range(0..3u32) {
                    0 => {
                        let v = kernel.mkdir(&path, 0o755);
                        let m = model.mkdir(&path, 0o755);
                        compare(&format!("mkdir({path:?})"), v, m, report);
                    }
                    1 => {
                        let v = kernel.rmdir(&path);
                        let m = model.rmdir(&path);
                        compare(&format!("rmdir({path:?})"), v, m, report);
                    }
                    _ => {
                        let v = kernel.unlink(&path);
                        let m = model.unlink(&path);
                        compare(&format!("unlink({path:?})"), v, m, report);
                    }
                }
            }
            _ => {
                // xattrs
                let name = format!("user.k{}", rng.random_range(0..4u32));
                if rng.random_bool(0.5) {
                    let len = rng.random_range(0..256u64) as usize;
                    let value = vec![b'x'; len];
                    let v = kernel.setxattr(&path, &name, &value, 0);
                    let m = model.setxattr(&path, &name, &value);
                    compare(&format!("setxattr({path:?}, {name})"), v, m, report);
                } else {
                    let v = kernel.getxattr(&path, &name, 4096);
                    let m = model.getxattr(&path, &name);
                    compare(&format!("getxattr({path:?}, {name})"), v, m, report);
                }
            }
        }
    }

    fn compare_final_state(&self, kernel: &mut Kernel, model: &ModelFs, report: &mut DiffReport) {
        for path in model.paths() {
            let expected = model.file_contents(&path);
            let Some(expected) = expected else {
                // A directory: it must exist on the VFS too.
                if kernel.stat(&path) != 0 {
                    report.mismatches.push(Mismatch {
                        op: format!("final-state stat({path:?})"),
                        vfs_ret: kernel.stat(&path),
                        model_ret: 0,
                        kind: MismatchKind::FinalState,
                    });
                }
                continue;
            };
            let fd = kernel.open(&path, 0, 0);
            if fd < 0 {
                report.mismatches.push(Mismatch {
                    op: format!("final-state open({path:?})"),
                    vfs_ret: fd,
                    model_ret: 0,
                    kind: MismatchKind::FinalState,
                });
                continue;
            }
            let mut buf = vec![0u8; expected.len() + 16];
            let n = kernel.read(fd as i32, &mut buf);
            kernel.close(fd as i32);
            if n < 0 || buf[..n as usize] != expected[..] {
                report.mismatches.push(Mismatch {
                    op: format!("final-state contents({path:?})"),
                    vfs_ret: n,
                    model_ret: expected.len() as i64,
                    kind: MismatchKind::FinalState,
                });
            }
        }
    }
}

/// Records a mismatch when raw return values differ.
fn compare(op: &str, vfs_ret: i64, model_ret: i64, report: &mut DiffReport) {
    if vfs_ret != model_ret {
        report.mismatches.push(Mismatch {
            op: op.to_owned(),
            vfs_ret,
            model_ret,
            kind: MismatchKind::ReturnValue,
        });
    }
}

fn pick_slot(rng: &mut StdRng, slots: &[(i32, i32, String)]) -> Option<usize> {
    if slots.is_empty() {
        None
    } else {
        Some(rng.random_range(0..slots.len()))
    }
}

/// Small path pool: a couple of directories, a few file names, depth ≤ 2.
fn random_path(rng: &mut StdRng) -> String {
    let dirs = ["", "/d0", "/d1"];
    let names = ["f0", "f1", "f2", "d0", "d1"];
    let dir = dirs[rng.random_range(0..dirs.len())];
    let name = names[rng.random_range(0..names.len())];
    format!("{dir}/{name}")
}

/// Maps an untested flag name to its bits, if it is model-safe.
fn flag_bits_if_safe(name: &str) -> Option<u32> {
    let bits = iocov_syscalls::OpenFlags::NAMED_FLAGS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f.bits())?;
    SAFE_FLAG_BITS.contains(&bits).then_some(bits)
}

/// Summarizes mismatches per kind (for reporting).
#[must_use]
pub fn mismatch_summary(report: &DiffReport) -> BTreeMap<&'static str, usize> {
    let mut summary = BTreeMap::new();
    for m in &report.mismatches {
        let key = match m.kind {
            MismatchKind::ReturnValue => "return-value",
            MismatchKind::Data => "data",
            MismatchKind::FinalState => "final-state",
        };
        *summary.entry(key).or_insert(0) += 1;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use iocov_faults::{BugSet, BugTrigger, InjectedBug};
    use iocov_vfs::{Errno, FaultAction};

    #[test]
    fn clean_implementations_agree() {
        let report = DiffTester::new(1).rounds(4).ops_per_round(500).run();
        assert!(report.ops_executed >= 2000);
        assert!(
            report.mismatches.is_empty(),
            "first mismatches: {:?}",
            &report.mismatches[..report.mismatches.len().min(5)]
        );
    }

    #[test]
    fn guidance_reduces_untested_buckets() {
        let unguided = DiffTester::new(2).rounds(1).ops_per_round(300).run();
        let guided = DiffTester::new(2).rounds(5).ops_per_round(300).run();
        assert!(
            guided.untested_write_buckets <= unguided.untested_write_buckets,
            "guided {} vs unguided {}",
            guided.untested_write_buckets,
            unguided.untested_write_buckets
        );
    }

    #[test]
    fn finds_injected_wrong_return_bug() {
        // An output bug: large writes report one byte fewer than written.
        let bugs = BugSet::new(vec![InjectedBug::new(
            "short-write",
            "writes of 4 KiB or more return len - 1",
            BugTrigger::SizeAtLeast {
                op: "write",
                size: 4096,
            },
            FaultAction::OverrideReturn(4095),
        )]);
        let report = DiffTester::new(3)
            .rounds(6)
            .ops_per_round(600)
            .with_vfs_hook(bugs.into_hook())
            .run();
        assert!(
            report
                .mismatches
                .iter()
                .any(|m| m.kind == MismatchKind::ReturnValue && m.op.contains("write")),
            "differential testing must catch the wrong-return bug: {:?}",
            mismatch_summary(&report)
        );
    }

    #[test]
    fn finds_injected_wrong_errno_bug() {
        // An input-triggered errno corruption: truncations past a
        // boundary fail EIO instead of succeeding.
        let bugs = BugSet::new(vec![InjectedBug::new(
            "truncate-eio",
            "truncate to length >= 512 fails EIO",
            BugTrigger::SizeAtLeast {
                op: "truncate",
                size: 512,
            },
            FaultAction::FailWith(Errno::EIO),
        )]);
        let report = DiffTester::new(4)
            .rounds(8)
            .ops_per_round(800)
            .with_vfs_hook(bugs.into_hook())
            .run();
        assert!(
            report.found_bugs(),
            "boundary-input errno bug must be caught"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DiffTester::new(9).rounds(2).ops_per_round(100).run();
        let b = DiffTester::new(9).rounds(2).ops_per_round(100).run();
        assert_eq!(a.ops_executed, b.ops_executed);
        assert_eq!(a.mismatches, b.mismatches);
    }

    #[test]
    fn summary_counts_by_kind() {
        let mut report = DiffReport::default();
        report.mismatches.push(Mismatch {
            op: "x".into(),
            vfs_ret: 0,
            model_ret: 1,
            kind: MismatchKind::Data,
        });
        report.mismatches.push(Mismatch {
            op: "y".into(),
            vfs_ret: 0,
            model_ret: 1,
            kind: MismatchKind::Data,
        });
        let summary = mismatch_summary(&report);
        assert_eq!(summary.get("data"), Some(&2));
        assert!(report.found_bugs());
    }
}
