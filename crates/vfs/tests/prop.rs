//! Property-based tests: the VFS against a trivially-correct model.

use iocov_vfs::{Errno, ExtentStore, Mode, OpenFlags, Vfs, Whence};
use proptest::prelude::*;

/// A single-file I/O operation for the model-comparison property.
#[derive(Debug, Clone)]
enum FileOp {
    Write { offset: u64, data: Vec<u8> },
    Fill { offset: u64, byte: u8, len: u64 },
    Truncate { len: u64 },
    Read { offset: u64, len: u64 },
}

fn file_op() -> impl Strategy<Value = FileOp> {
    prop_oneof![
        (0u64..512, proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(offset, data)| FileOp::Write { offset, data }),
        (0u64..512, any::<u8>(), 0u64..128).prop_map(|(offset, byte, len)| FileOp::Fill {
            offset,
            byte,
            len
        }),
        (0u64..600).prop_map(|len| FileOp::Truncate { len }),
        (0u64..600, 0u64..128).prop_map(|(offset, len)| FileOp::Read { offset, len }),
    ]
}

/// Applies one op to the reference model (a plain byte vector).
fn apply_model(model: &mut Vec<u8>, op: &FileOp) {
    match op {
        FileOp::Write { offset, data } => {
            if data.is_empty() {
                return; // zero-length writes do not extend the file
            }
            let end = *offset as usize + data.len();
            if end > model.len() {
                model.resize(end, 0);
            }
            model[*offset as usize..end].copy_from_slice(data);
        }
        FileOp::Fill { offset, byte, len } => {
            let end = (*offset + *len) as usize;
            if *len > 0 {
                if end > model.len() {
                    model.resize(end, 0);
                }
                model[*offset as usize..end].fill(*byte);
            }
        }
        FileOp::Truncate { len } => {
            model.resize(*len as usize, 0);
        }
        FileOp::Read { .. } => {}
    }
}

proptest! {
    /// Arbitrary sequences of pwrite/fill/truncate/pread agree with a
    /// plain `Vec<u8>` model, byte for byte.
    #[test]
    fn vfs_file_io_matches_vec_model(ops in proptest::collection::vec(file_op(), 1..40)) {
        let mut fs = Vfs::new();
        let pid = fs.default_pid();
        let fd = fs
            .open(pid, "/f", OpenFlags::O_CREAT | OpenFlags::O_RDWR, Mode::from_bits(0o644))
            .unwrap();
        let mut model: Vec<u8> = Vec::new();
        for op in &ops {
            match op {
                FileOp::Write { offset, data } => {
                    if data.is_empty() {
                        continue;
                    }
                    let n = fs
                        .pwrite(pid, fd, iocov_vfs::WriteSource::Bytes(data), *offset as i64)
                        .unwrap();
                    prop_assert_eq!(n, data.len() as u64);
                }
                FileOp::Fill { offset, byte, len } => {
                    if *len == 0 {
                        continue;
                    }
                    let src = iocov_vfs::WriteSource::Fill { byte: *byte, len: *len };
                    let n = fs.pwrite(pid, fd, src, *offset as i64).unwrap();
                    prop_assert_eq!(n, *len);
                }
                FileOp::Truncate { len } => {
                    fs.ftruncate(pid, fd, *len as i64).unwrap();
                }
                FileOp::Read { offset, len } => {
                    let got = fs.pread(pid, fd, *len, *offset as i64).unwrap();
                    let start = (*offset as usize).min(model.len());
                    let end = ((*offset + *len) as usize).min(model.len());
                    prop_assert_eq!(&got, &model[start..end]);
                }
            }
            apply_model(&mut model, op);
            prop_assert_eq!(fs.fstat(pid, fd).unwrap().size, model.len() as u64);
        }
        // Final full read-back.
        let all = fs.pread(pid, fd, model.len() as u64 + 64, 0).unwrap();
        prop_assert_eq!(all, model);
    }

    /// The extent store itself agrees with a byte-vector model,
    /// including `charged_bytes` never exceeding the logical size.
    #[test]
    fn extent_store_matches_model(ops in proptest::collection::vec(file_op(), 1..60)) {
        let mut store = ExtentStore::new();
        let mut model: Vec<u8> = Vec::new();
        for op in &ops {
            match op {
                FileOp::Write { offset, data } => store.write(*offset, data),
                FileOp::Fill { offset, byte, len } => store.write_fill(*offset, *byte, *len),
                FileOp::Truncate { len } => store.truncate(*len),
                FileOp::Read { offset, len } => {
                    let got = store.read(*offset, *len);
                    let start = (*offset as usize).min(model.len());
                    let end = ((*offset + *len) as usize).min(model.len());
                    prop_assert_eq!(&got, &model[start..end]);
                }
            }
            apply_model(&mut model, op);
            prop_assert_eq!(store.len(), model.len() as u64);
            prop_assert!(store.charged_bytes() <= store.len());
        }
    }

    /// Everything written before the last `sync` survives a crash;
    /// `used_bytes` accounting is consistent after recovery.
    #[test]
    fn sync_point_data_survives_crash(
        files in proptest::collection::vec(
            ("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 1..64)),
            1..8,
        ),
        extra in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let mut fs = Vfs::new();
        let pid = fs.default_pid();
        let mut expected = std::collections::BTreeMap::new();
        for (name, data) in &files {
            let path = format!("/{name}");
            let fd = fs
                .open(pid, &path, OpenFlags::O_CREAT | OpenFlags::O_RDWR | OpenFlags::O_TRUNC,
                      Mode::from_bits(0o644))
                .unwrap();
            fs.write(pid, fd, data).unwrap();
            fs.close(pid, fd).unwrap();
            expected.insert(path, data.clone());
        }
        fs.sync();
        // Unsynced extra work that must NOT survive.
        let fd = fs
            .open(pid, "/volatile", OpenFlags::O_CREAT | OpenFlags::O_WRONLY, Mode::from_bits(0o644))
            .unwrap();
        fs.write(pid, fd, &extra).unwrap();
        fs.crash();

        prop_assert_eq!(fs.stat(pid, "/volatile"), Err(Errno::ENOENT));
        let mut total = 0u64;
        for (path, data) in &expected {
            let fd = fs.open(pid, path, OpenFlags::O_RDONLY, Mode::from_bits(0)).unwrap();
            let got = fs.read(pid, fd, data.len() as u64 + 8).unwrap();
            prop_assert_eq!(&got, data);
            fs.close(pid, fd).unwrap();
            total += data.len() as u64;
        }
        prop_assert_eq!(fs.stats().used_bytes, total);
    }

    /// lseek arithmetic agrees with a model offset under all whence
    /// modes that cannot fail.
    #[test]
    fn lseek_offset_arithmetic(seeks in proptest::collection::vec((0i64..1000, 0u32..3), 1..20)) {
        let mut fs = Vfs::new();
        let pid = fs.default_pid();
        let fd = fs
            .open(pid, "/f", OpenFlags::O_CREAT | OpenFlags::O_RDWR, Mode::from_bits(0o644))
            .unwrap();
        fs.write(pid, fd, &[7u8; 100]).unwrap();
        let size = 100i64;
        let mut model_pos = size; // offset after the write
        for (off, whence_no) in seeks {
            let whence = Whence::from_number(whence_no).unwrap();
            let target = match whence {
                Whence::Set => off,
                Whence::Cur => model_pos + off,
                Whence::End => size + off,
                _ => unreachable!("generator limits whence to 0..3"),
            };
            let got = fs.lseek(pid, fd, off, whence);
            if target < 0 {
                prop_assert_eq!(got, Err(Errno::EINVAL));
            } else {
                prop_assert_eq!(got, Ok(target as u64));
                model_pos = target;
            }
        }
    }

    /// Directory entries always list exactly what was created and not
    /// yet removed, regardless of operation interleaving.
    #[test]
    fn readdir_reflects_namespace(names in proptest::collection::btree_set("[a-z]{1,6}", 1..10)) {
        let mut fs = Vfs::new();
        let pid = fs.default_pid();
        let names: Vec<String> = names.into_iter().collect();
        for n in &names {
            fs.mkdir(pid, &format!("/{n}"), Mode::from_bits(0o755)).unwrap();
        }
        let listed = fs.readdir(pid, "/").unwrap();
        prop_assert_eq!(&listed, &names, "BTreeMap keeps sorted order");
        // Remove every other entry.
        for n in names.iter().step_by(2) {
            fs.rmdir(pid, &format!("/{n}")).unwrap();
        }
        let listed = fs.readdir(pid, "/").unwrap();
        let remaining: Vec<String> =
            names.iter().enumerate().filter(|(i, _)| i % 2 == 1).map(|(_, n)| n.clone()).collect();
        prop_assert_eq!(listed, remaining);
    }
}
