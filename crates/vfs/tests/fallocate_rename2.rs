//! Tests for the extended operations: `fallocate` and `renameat2`.

use iocov_vfs::{Errno, Mode, OpenFlags, Pid, Vfs, Whence};

const KEEP_SIZE: u32 = 0x1;
const PUNCH_HOLE: u32 = 0x2;
const ZERO_RANGE: u32 = 0x10;

fn fs_with_file(content: &[u8]) -> (Vfs, Pid, i32) {
    let mut fs = Vfs::new();
    let pid = fs.default_pid();
    let fd = fs
        .open(
            pid,
            "/f",
            OpenFlags::O_CREAT | OpenFlags::O_RDWR,
            Mode::from_bits(0o644),
        )
        .unwrap();
    if !content.is_empty() {
        fs.write(pid, fd, content).unwrap();
    }
    (fs, pid, fd)
}

#[test]
fn fallocate_mode0_allocates_and_extends() {
    let (mut fs, pid, fd) = fs_with_file(b"");
    fs.fallocate(pid, fd, 0, 0, 4096).unwrap();
    assert_eq!(fs.fstat(pid, fd).unwrap().size, 4096);
    // The range is allocated (SEEK_DATA at 0 finds data immediately).
    assert_eq!(fs.lseek(pid, fd, 0, Whence::Data).unwrap(), 0);
    // Reads as zeros.
    assert_eq!(fs.pread(pid, fd, 4, 0).unwrap(), [0, 0, 0, 0]);
}

#[test]
fn fallocate_keep_size_does_not_extend() {
    let (mut fs, pid, fd) = fs_with_file(b"abcd");
    fs.fallocate(pid, fd, KEEP_SIZE, 0, 4096).unwrap();
    assert_eq!(fs.fstat(pid, fd).unwrap().size, 4, "size unchanged");
    assert_eq!(fs.pread(pid, fd, 4, 0).unwrap(), b"abcd", "data intact");
}

#[test]
fn fallocate_preserves_existing_data() {
    let (mut fs, pid, fd) = fs_with_file(b"precious!");
    fs.fallocate(pid, fd, 0, 0, 1 << 16).unwrap();
    assert_eq!(fs.pread(pid, fd, 9, 0).unwrap(), b"precious!");
    assert_eq!(fs.fstat(pid, fd).unwrap().size, 1 << 16);
}

#[test]
fn punch_hole_zeroes_without_resizing() {
    let (mut fs, pid, fd) = fs_with_file(b"0123456789");
    fs.fallocate(pid, fd, PUNCH_HOLE | KEEP_SIZE, 2, 5).unwrap();
    assert_eq!(fs.fstat(pid, fd).unwrap().size, 10);
    assert_eq!(
        fs.pread(pid, fd, 10, 0).unwrap(),
        [b'0', b'1', 0, 0, 0, 0, 0, b'7', b'8', b'9']
    );
    // The hole is visible to SEEK_HOLE and releases space.
    assert_eq!(fs.lseek(pid, fd, 0, Whence::Hole).unwrap(), 2);
    assert_eq!(fs.stats().used_bytes, 5);
}

#[test]
fn punch_hole_requires_keep_size() {
    let (mut fs, pid, fd) = fs_with_file(b"abc");
    assert_eq!(fs.fallocate(pid, fd, PUNCH_HOLE, 0, 2), Err(Errno::EINVAL));
}

#[test]
fn zero_range_overwrites_data() {
    let (mut fs, pid, fd) = fs_with_file(b"0123456789");
    fs.fallocate(pid, fd, ZERO_RANGE, 3, 4).unwrap();
    assert_eq!(
        fs.pread(pid, fd, 10, 0).unwrap(),
        [b'0', b'1', b'2', 0, 0, 0, 0, b'7', b'8', b'9']
    );
}

#[test]
fn fallocate_argument_validation() {
    let (mut fs, pid, fd) = fs_with_file(b"x");
    assert_eq!(fs.fallocate(pid, fd, 0, -1, 10), Err(Errno::EINVAL));
    assert_eq!(fs.fallocate(pid, fd, 0, 0, 0), Err(Errno::EINVAL));
    assert_eq!(fs.fallocate(pid, fd, 0, 0, -5), Err(Errno::EINVAL));
    assert_eq!(fs.fallocate(pid, fd, 0x8000, 0, 10), Err(Errno::EOPNOTSUPP));
    assert_eq!(
        fs.fallocate(pid, fd, PUNCH_HOLE | ZERO_RANGE | KEEP_SIZE, 0, 10),
        Err(Errno::EOPNOTSUPP)
    );
    assert_eq!(fs.fallocate(pid, 99, 0, 0, 10), Err(Errno::EBADF));
    // Read-only descriptor.
    let rd = fs
        .open(pid, "/f", OpenFlags::O_RDONLY, Mode::from_bits(0))
        .unwrap();
    assert_eq!(fs.fallocate(pid, rd, 0, 0, 10), Err(Errno::EBADF));
}

#[test]
fn fallocate_special_files_and_limits() {
    let (mut fs, pid, _fd) = fs_with_file(b"");
    fs.mkfifo(pid, "/pipe", Mode::from_bits(0o644)).unwrap();
    let pfd = fs
        .open(
            pid,
            "/pipe",
            OpenFlags::O_RDWR | OpenFlags::O_NONBLOCK,
            Mode::from_bits(0),
        )
        .unwrap();
    assert_eq!(fs.fallocate(pid, pfd, 0, 0, 10), Err(Errno::ESPIPE));
    // EFBIG past the maximum file size.
    let fd = fs
        .open(pid, "/f", OpenFlags::O_WRONLY, Mode::from_bits(0))
        .unwrap();
    assert_eq!(
        fs.fallocate(pid, fd, 0, i64::MAX / 2, i64::MAX / 2),
        Err(Errno::EFBIG)
    );
    // But KEEP_SIZE reservations beyond max size are also rejected only
    // without KEEP_SIZE; with it the request is a pure reservation.
    fs.remount(false).unwrap();
}

#[test]
fn fallocate_charges_capacity() {
    use iocov_vfs::VfsConfig;
    let mut fs = Vfs::with_config(VfsConfig::builder().capacity_bytes(100).build());
    let pid = fs.default_pid();
    let fd = fs
        .open(
            pid,
            "/f",
            OpenFlags::O_CREAT | OpenFlags::O_RDWR,
            Mode::from_bits(0o644),
        )
        .unwrap();
    assert_eq!(fs.fallocate(pid, fd, 0, 0, 200), Err(Errno::ENOSPC));
    fs.fallocate(pid, fd, 0, 0, 80).unwrap();
    assert_eq!(fs.stats().used_bytes, 80);
    // Punching the hole releases the space again.
    fs.fallocate(pid, fd, PUNCH_HOLE | KEEP_SIZE, 0, 80)
        .unwrap();
    assert_eq!(fs.stats().used_bytes, 0);
}

#[test]
fn rename2_noreplace_refuses_existing_target() {
    let (mut fs, pid, fd) = fs_with_file(b"src");
    fs.close(pid, fd).unwrap();
    let g = fs
        .open(
            pid,
            "/g",
            OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
            Mode::from_bits(0o644),
        )
        .unwrap();
    fs.close(pid, g).unwrap();
    assert_eq!(fs.rename2(pid, "/f", "/g", 0x1), Err(Errno::EEXIST));
    // Plain rename2 without flags behaves like rename.
    fs.rename2(pid, "/f", "/h", 0).unwrap();
    assert!(fs.stat(pid, "/h").is_ok());
    // NOREPLACE to a fresh name succeeds.
    fs.rename2(pid, "/h", "/i", 0x1).unwrap();
    assert!(fs.stat(pid, "/i").is_ok());
}

#[test]
fn rename2_exchange_swaps_entries() {
    let mut fs = Vfs::new();
    let pid = fs.default_pid();
    for (path, data) in [("/a", b"AAA".as_slice()), ("/b", b"B".as_slice())] {
        let fd = fs
            .open(
                pid,
                path,
                OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
                Mode::from_bits(0o644),
            )
            .unwrap();
        fs.write(pid, fd, data).unwrap();
        fs.close(pid, fd).unwrap();
    }
    fs.rename2(pid, "/a", "/b", 0x2).unwrap();
    let fd = fs
        .open(pid, "/a", OpenFlags::O_RDONLY, Mode::from_bits(0))
        .unwrap();
    assert_eq!(fs.read(pid, fd, 8).unwrap(), b"B");
    let fd = fs
        .open(pid, "/b", OpenFlags::O_RDONLY, Mode::from_bits(0))
        .unwrap();
    assert_eq!(fs.read(pid, fd, 8).unwrap(), b"AAA");
}

#[test]
fn rename2_exchange_swaps_file_and_directory() {
    let mut fs = Vfs::new();
    let pid = fs.default_pid();
    fs.mkdir(pid, "/d", Mode::from_bits(0o755)).unwrap();
    fs.mkdir(pid, "/d/inner", Mode::from_bits(0o755)).unwrap();
    let fd = fs
        .open(
            pid,
            "/f",
            OpenFlags::O_CREAT | OpenFlags::O_WRONLY,
            Mode::from_bits(0o644),
        )
        .unwrap();
    fs.close(pid, fd).unwrap();
    fs.rename2(pid, "/d", "/f", 0x2).unwrap();
    // "/f" is now the directory (with its contents) and "/d" the file.
    assert!(fs.stat(pid, "/f/inner").is_ok());
    assert!(fs.stat(pid, "/d").unwrap().file_type == iocov_vfs::FileType::Regular);
}

#[test]
fn rename2_exchange_requires_both_ends() {
    let (mut fs, pid, _fd) = fs_with_file(b"x");
    assert_eq!(fs.rename2(pid, "/f", "/missing", 0x2), Err(Errno::ENOENT));
    assert_eq!(fs.rename2(pid, "/missing", "/f", 0x2), Err(Errno::ENOENT));
}

#[test]
fn rename2_flag_validation() {
    let (mut fs, pid, _fd) = fs_with_file(b"x");
    assert_eq!(fs.rename2(pid, "/f", "/g", 0x4), Err(Errno::EINVAL));
    assert_eq!(
        fs.rename2(pid, "/f", "/g", 0x3),
        Err(Errno::EINVAL),
        "NOREPLACE|EXCHANGE"
    );
}
